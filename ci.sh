#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 verify from ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

# The flight recorder (ISSUE 4) is feature-gated; build and test the
# root package with it on as well so both configurations stay green.
# No --workspace here: the feature only exists on the root package and
# the crates it forwards to (garnet-core, garnet-simkit, garnet-bench).
echo "==> trace-feature verify: cargo build --release --features trace && cargo test -q --features trace"
cargo clippy --all-targets --features trace -- -D warnings
cargo build --release --features trace
cargo test -q --features trace
cargo test -q -p garnet-bench --features trace

# Rerun the driver-sensitive suites with the facade hosted on the
# threaded graph (ISSUE 5): GarnetConfig::default() honours the
# GARNET_TEST_DRIVER toggle, so the same tests exercise both engines.
echo "==> threaded-driver verify: GARNET_TEST_DRIVER=threaded determinism + tracing"
GARNET_TEST_DRIVER=threaded cargo test -q --test determinism --test tracing
GARNET_TEST_DRIVER=threaded cargo test -q --test determinism --test tracing --features trace

# Rerun the same suites on the per-frame admission path (ISSUE 6):
# GarnetConfig::default() honours GARNET_TEST_BATCH, so the batched and
# per-frame pumps both stay bit-identical in both feature configs.
echo "==> per-frame admission verify: GARNET_TEST_BATCH=perframe determinism + tracing"
GARNET_TEST_BATCH=perframe cargo test -q --test determinism --test tracing
GARNET_TEST_BATCH=perframe cargo test -q --test determinism --test tracing --features trace

# The durable archive (ISSUE 7): the garnet-store suite in both feature
# configs, and the replay bit-identity suite re-hosted on the threaded
# graph — a boundary log written under either engine must rebuild
# dispatch state identically whatever engine replays it.
echo "==> archive verify: garnet-store suite + replay bit-identity under the threaded driver"
cargo test -q -p garnet-store
cargo test -q -p garnet-store --features garnet-simkit/trace
GARNET_TEST_DRIVER=threaded cargo test -q --test archive_replay
GARNET_TEST_BATCH=perframe cargo test -q --test archive_replay

# The dispatch match cache (ISSUE 8): GarnetConfig::default() honours
# GARNET_TEST_MATCH_CACHE, so the same bit-identity suites rerun with
# every shard's cache disabled in both feature configs — the cache must
# be a performance artefact, never a semantic one.
echo "==> match-cache verify: GARNET_TEST_MATCH_CACHE=off determinism + tracing"
GARNET_TEST_MATCH_CACHE=off cargo test -q --test determinism --test tracing
GARNET_TEST_MATCH_CACHE=off cargo test -q --test determinism --test tracing --features trace

# The telemetry plane (ISSUE 9): the facade suite in both feature
# configs and re-hosted on the threaded graph, then an operator-tooling
# smoke test — the telemetry_node example writes a JSONL sink and
# garnetctl must read it back (dump renders, health exits 0).
echo "==> telemetry verify: facade suite + threaded rerun + garnetctl smoke"
cargo test -q --test telemetry
cargo test -q --test telemetry --features trace
GARNET_TEST_DRIVER=threaded cargo test -q --test telemetry
telemetry_sink="$(mktemp -d)"
trap 'rm -rf "$telemetry_sink"' EXIT
cargo run -q --example telemetry_node -- "$telemetry_sink" > /dev/null
cargo run -q -p garnet-ctl --bin garnetctl -- dump "$telemetry_sink" > /dev/null
cargo run -q -p garnet-ctl --bin garnetctl -- health "$telemetry_sink"

# Per-consumer QoS (ISSUE 10): the qos suite plus the determinism
# bit-identity arms rerun with the scheduler forced off —
# GarnetConfig::default() honours GARNET_TEST_QOS, so Legacy mode must
# reproduce the pre-QoS world in both feature configs. Then the
# starvation path: garnetctl health must exit non-zero on a sink whose
# window shows a class with offers and no deliveries.
echo "==> qos verify: GARNET_TEST_QOS=legacy determinism + qos, starved-class health gate"
cargo test -q --test qos
GARNET_TEST_QOS=legacy cargo test -q --test determinism --test qos
GARNET_TEST_QOS=legacy cargo test -q --test determinism --test qos --features trace
starved_sink="$(mktemp -d)"
trap 'rm -rf "$telemetry_sink" "$starved_sink"' EXIT
printf '%s\n' \
  '{"seq":1,"window_start_us":0,"window_end_us":1000000,"health":"healthy","reasons":[],"match_cache_hit_ppm":0,"counters":{"qos.data.offered":9},"deltas":{"qos.data.offered":9,"qos.data.delivered":0},"histograms":{},"gauges":{}}' \
  > "$starved_sink/telemetry-000000.jsonl"
if cargo run -q -p garnet-ctl --bin garnetctl -- health "$starved_sink"; then
  echo "garnetctl health failed to flag a starved class" >&2
  exit 1
fi

echo "==> CI green"
