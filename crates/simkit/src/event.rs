//! Deterministic event queue and simulation driver.
//!
//! Events scheduled for the same instant are delivered in the order they
//! were scheduled (FIFO tie-break via a monotonically increasing sequence
//! number), which makes every run of a seeded simulation bit-for-bit
//! reproducible regardless of `HashMap` iteration order or other
//! environmental noise elsewhere in the program.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// An entry in the queue: ordered by time, then by insertion sequence.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of events with stable FIFO tie-breaking.
///
/// This is the primitive used by [`Simulation`]; it is exposed separately
/// for callers that want to interleave several queues or drive the loop
/// themselves.
///
/// # Example
///
/// ```
/// use garnet_simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_micros(10), 'b');
/// q.schedule(SimTime::from_micros(10), 'c'); // same instant: FIFO
/// q.schedule(SimTime::from_micros(5), 'a');
/// assert_eq!(q.pop(), Some((SimTime::from_micros(5), 'a')));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(10), 'b')));
/// assert_eq!(q.pop(), Some((SimTime::from_micros(10), 'c')));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// The instant of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

/// A simulation driver: an [`EventQueue`] plus the current clock.
///
/// The driver enforces that time never runs backwards: popping an event
/// advances the clock to that event's timestamp, and scheduling an event
/// in the past is rejected (clamped to "now" — the event still fires, at
/// the current instant, preserving causality).
///
/// # Example
///
/// ```
/// use garnet_simkit::{Simulation, SimDuration};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Ping, Pong }
///
/// let mut sim = Simulation::new();
/// sim.schedule_in(SimDuration::from_millis(1), Ev::Ping);
/// while let Some((now, ev)) = sim.next_event() {
///     if ev == Ev::Ping && now.as_millis() < 5 {
///         sim.schedule_in(SimDuration::from_millis(1), Ev::Pong);
///     }
/// }
/// assert_eq!(sim.now().as_millis(), 2);
/// ```
pub struct Simulation<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates a simulation whose clock starts at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Simulation { queue: EventQueue::new(), now: SimTime::ZERO, processed: 0 }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an event at an absolute instant. Instants earlier than
    /// the current clock are clamped to "now" so causality is preserved.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        self.queue.schedule(at, event);
    }

    /// Schedules an event `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.schedule(self.now.saturating_add(delay), event);
    }

    /// The timestamp of the next pending event without popping it —
    /// lets external drivers stop at a deadline while keeping later
    /// events queued.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let (at, ev) = self.queue.pop()?;
        debug_assert!(at >= self.now, "event queue yielded an event from the past");
        self.now = at;
        self.processed += 1;
        Some((at, ev))
    }

    /// Runs the handler over every event until the queue drains or the
    /// clock passes `deadline`. Events scheduled by the handler are
    /// processed too. Returns the number of events delivered.
    ///
    /// Events timestamped exactly at `deadline` are delivered; later ones
    /// remain queued.
    pub fn run_until(
        &mut self,
        deadline: SimTime,
        mut handler: impl FnMut(&mut Self, SimTime, E),
    ) -> u64 {
        let start = self.processed;
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            let (at, ev) = self.queue.pop().expect("peeked event vanished");
            self.now = at;
            self.processed += 1;
            handler(self, at, ev);
        }
        // Advance the clock to the deadline even if the queue drained early,
        // so subsequent relative scheduling is anchored where callers expect.
        if self.now < deadline {
            self.now = deadline;
        }
        self.processed - start
    }

    /// Runs until the queue is completely drained.
    pub fn run_to_completion(&mut self, mut handler: impl FnMut(&mut Self, SimTime, E)) -> u64 {
        let start = self.processed;
        while let Some((at, ev)) = self.next_event() {
            handler(self, at, ev);
        }
        self.processed - start
    }
}

impl<E> std::fmt::Debug for Simulation<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn queue_len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn clock_advances_with_events() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_micros(42), "x");
        let (t, _) = sim.next_event().unwrap();
        assert_eq!(t, SimTime::from_micros(42));
        assert_eq!(sim.now(), SimTime::from_micros(42));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_micros(100), "late");
        sim.next_event();
        sim.schedule_at(SimTime::from_micros(10), "early-but-clamped");
        let (t, ev) = sim.next_event().unwrap();
        assert_eq!(ev, "early-but-clamped");
        assert_eq!(t, SimTime::from_micros(100));
    }

    #[test]
    fn run_until_respects_deadline_inclusively() {
        let mut sim = Simulation::new();
        for i in 1..=10u64 {
            sim.schedule_at(SimTime::from_micros(i * 10), i);
        }
        let mut seen = Vec::new();
        let n = sim.run_until(SimTime::from_micros(50), |_, _, ev| seen.push(ev));
        assert_eq!(n, 5);
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(sim.pending(), 5);
        assert_eq!(sim.now(), SimTime::from_micros(50));
    }

    #[test]
    fn run_until_advances_clock_when_queue_drains() {
        let mut sim: Simulation<()> = Simulation::new();
        sim.run_until(SimTime::from_secs(3), |_, _, _| {});
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn handler_can_reschedule() {
        let mut sim = Simulation::new();
        sim.schedule_in(SimDuration::from_micros(1), 0u32);
        let mut count = 0;
        sim.run_to_completion(|sim, _, n| {
            count += 1;
            if n < 9 {
                sim.schedule_in(SimDuration::from_micros(1), n + 1);
            }
        });
        assert_eq!(count, 10);
        assert_eq!(sim.now(), SimTime::from_micros(10));
        assert_eq!(sim.events_processed(), 10);
    }

    #[test]
    fn determinism_across_runs() {
        let trace = |_: u8| {
            let mut sim = Simulation::new();
            for i in 0..50u64 {
                sim.schedule_at(SimTime::from_micros(i % 7), i);
            }
            let mut out = Vec::new();
            sim.run_to_completion(|_, t, ev| out.push((t.as_micros(), ev)));
            out
        };
        assert_eq!(trace(0), trace(1));
    }
}
