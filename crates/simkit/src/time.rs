//! Simulated time: a monotonically non-decreasing clock with microsecond
//! resolution.
//!
//! Wireless sensor networks are "real time" systems in the paper's
//! context-dependent sense (§1 of the paper): latencies of interest range
//! from sub-millisecond dispatch costs to multi-minute flood propagation.
//! A `u64` count of microseconds covers ~584,000 years of simulation,
//! which is sufficient for every experiment.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated clock, in microseconds since simulation
/// start.
///
/// `SimTime` is ordered, hashable and cheap to copy. Subtracting two
/// instants yields a [`SimDuration`]; adding a duration to an instant
/// yields a later instant.
///
/// # Example
///
/// ```
/// use garnet_simkit::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(3);
/// assert_eq!(t1 - t0, SimDuration::from_micros(3_000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The greatest representable instant (used as an "infinitely far"
    /// sentinel for timers that are disabled).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a raw microsecond count.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from a millisecond count.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant from a second count.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`] instead of
    /// overflowing.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds (truncating below 1µs).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be finite and non-negative");
        SimDuration((secs * 1e6) as u64)
    }

    /// The duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in seconds, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked duration multiplication.
    pub fn checked_mul(self, rhs: u64) -> Option<SimDuration> {
        self.0.checked_mul(rhs).map(SimDuration)
    }

    /// Saturating duration addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}µs", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors_round_trip() {
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(3).as_millis(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_millis(5).as_millis(), 5);
    }

    #[test]
    fn arithmetic_behaves_like_integers() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_micros(), 15);
        assert_eq!((t - SimTime::from_micros(10)).as_micros(), 5);
        assert_eq!((SimDuration::from_micros(4) * 3).as_micros(), 12);
        assert_eq!((SimDuration::from_micros(9) / 2).as_micros(), 4);
    }

    #[test]
    fn saturating_since_clamps_negative_spans() {
        let early = SimTime::from_micros(5);
        let late = SimTime::from_micros(9);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_micros(), 4);
    }

    #[test]
    fn saturating_add_does_not_overflow() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
        assert_eq!(SimDuration::MAX.saturating_add(SimDuration::from_secs(1)), SimDuration::MAX);
    }

    #[test]
    fn from_secs_f64_truncates_below_a_microsecond() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 1);
        assert_eq!(SimDuration::from_secs_f64(2.5).as_micros(), 2_500_000);
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_a_readable_unit() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7µs");
        assert_eq!(SimDuration::from_micros(7_500).to_string(), "7.500ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000000s");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![SimTime::from_micros(3), SimTime::ZERO, SimTime::from_micros(1)];
        v.sort();
        assert_eq!(v, vec![SimTime::ZERO, SimTime::from_micros(1), SimTime::from_micros(3)]);
    }
}
