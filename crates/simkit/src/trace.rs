//! Flight-recorder event tracing for the service graph.
//!
//! The paper's Fig. 1 is a dataflow diagram — arrows between Filtering,
//! Dispatching, Orphanage, Location and Actuation — and this module
//! records those arrows actually firing: one compact [`TraceRecord`] per
//! `ServiceEvent` hop, held in a fixed-capacity ring buffer
//! ([`Tracer`]), plus per-stage occupancy and latency fed into the
//! log-bucketed [`Histogram`]. A driver (the single-threaded `Router`
//! or the `ThreadedRouter` in `garnet-core`) appends records in the
//! canonical event order, so traces from either driver are comparable
//! line-for-line (modulo shard ids).
//!
//! The recorder is **feature-gated**: with the `trace` cargo feature
//! off, [`Tracer`] is a zero-sized type whose methods are inlined
//! no-ops and whose `record` closure is never invoked, so the hot path
//! pays nothing (E19 in `garnet-bench` guards this). The *passive*
//! types — [`TraceRecord`], [`TraceSnapshot`], the enums — are always
//! compiled so reports can carry an (empty) snapshot unconditionally.

use std::fmt;

use crate::metrics::Histogram;

/// The Fig. 1 stage a trace record is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceStage {
    /// Duplicate elimination / stream reconstruction (ingest hot path).
    Filtering,
    /// Subscription matching and consumer delivery.
    Dispatch,
    /// The control graph: location, resource, replication, coordination.
    Control,
    /// Unclaimed-data retention.
    Orphanage,
    /// Command stamping, retransmit and ack tracking.
    Actuation,
    /// Durable frame/control-event archive (the `garnet-store` tap).
    Archive,
}

impl TraceStage {
    /// Every stage, in display order.
    pub const ALL: [TraceStage; 6] = [
        TraceStage::Filtering,
        TraceStage::Dispatch,
        TraceStage::Control,
        TraceStage::Orphanage,
        TraceStage::Actuation,
        TraceStage::Archive,
    ];

    /// Stable lowercase name used in JSONL dumps and metric keys.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceStage::Filtering => "filtering",
            TraceStage::Dispatch => "dispatch",
            TraceStage::Control => "control",
            TraceStage::Orphanage => "orphanage",
            TraceStage::Actuation => "actuation",
            TraceStage::Archive => "archive",
        }
    }

    /// Dense index into per-stage arrays (`0..6`).
    pub fn index(self) -> usize {
        match self {
            TraceStage::Filtering => 0,
            TraceStage::Dispatch => 1,
            TraceStage::Control => 2,
            TraceStage::Orphanage => 3,
            TraceStage::Actuation => 4,
            TraceStage::Archive => 5,
        }
    }
}

impl fmt::Display for TraceStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which `ServiceEvent` variant (or supervision action) a record is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A raw radio frame entering the filtering service.
    Frame,
    /// A reorder-buffer flush sweeping stalled streams.
    FlushReorder,
    /// A filtered delivery entering the dispatch stage.
    Filtered,
    /// An unclaimed delivery entering the orphanage.
    Orphaned,
    /// A location-relevant sighting.
    Observed,
    /// An out-of-band position hint.
    Hint,
    /// A sensor acknowledgement reaching the actuation service.
    AckReceived,
    /// A consumer actuation request entering resource mediation.
    ActuationRequested,
    /// An approved command submitted for stamping.
    Submit,
    /// A stamped command handed to the replicator for targeting.
    Replicate,
    /// The periodic actuation retransmit/expiry sweep.
    ActuationTick,
    /// A consumer state report reaching the coordinator.
    StateReported,
    /// A supervised worker shard restart (carries the backoff delay).
    ShardRestart,
    /// A record appended to the durable archive.
    ArchiveAppend,
    /// An archive flush (sync of pending appends to the backend).
    ArchiveFlush,
    /// A dispatch match-cache rebuild (cold or invalidated entry) for
    /// the stream of the preceding `Filtered` hop.
    CacheRebuild,
}

impl TraceEventKind {
    /// Stable lowercase name used in JSONL dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceEventKind::Frame => "frame",
            TraceEventKind::FlushReorder => "flush_reorder",
            TraceEventKind::Filtered => "filtered",
            TraceEventKind::Orphaned => "orphaned",
            TraceEventKind::Observed => "observed",
            TraceEventKind::Hint => "hint",
            TraceEventKind::AckReceived => "ack_received",
            TraceEventKind::ActuationRequested => "actuation_requested",
            TraceEventKind::Submit => "submit",
            TraceEventKind::Replicate => "replicate",
            TraceEventKind::ActuationTick => "actuation_tick",
            TraceEventKind::StateReported => "state_reported",
            TraceEventKind::ShardRestart => "shard_restart",
            TraceEventKind::ArchiveAppend => "archive_append",
            TraceEventKind::ArchiveFlush => "archive_flush",
            TraceEventKind::CacheRebuild => "cache_rebuild",
        }
    }
}

/// What happened to the event at this hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Routed to its stage and processed.
    Delivered,
    /// Dropped by overload admission control.
    Shed,
    /// Replaced (or absorbed) by a newer frame of the same stream.
    Coalesced,
    /// Lost to a worker failure.
    Failed,
}

impl TraceOutcome {
    /// Stable lowercase name used in JSONL dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceOutcome::Delivered => "delivered",
            TraceOutcome::Shed => "shed",
            TraceOutcome::Coalesced => "coalesced",
            TraceOutcome::Failed => "failed",
        }
    }
}

/// One event hop, compactly encoded.
///
/// `stream` / `sensor` / `root` / `shard` / `backoff_us` are optional
/// because not every hop has them (a `FlushReorder` has no stream; a
/// single-threaded hop has no shard). JSONL encoding omits absent
/// fields entirely, and `shard` is ordered last-but-one so shard-blind
/// comparisons can simply drop the field.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceRecord {
    /// Simulated time of the hop, in microseconds.
    pub at_us: u64,
    /// Stage the event was routed to.
    pub stage: TraceStage,
    /// Event kind.
    pub kind: TraceEventKind,
    /// Stream id (raw), when the event carries one.
    pub stream: Option<u32>,
    /// Sensor id (raw), when the event carries one.
    pub sensor: Option<u32>,
    /// Root sequence number of the boundary event this hop descends
    /// from (threaded driver) or the admission order (single-threaded).
    pub root: Option<u64>,
    /// What happened at this hop.
    pub outcome: TraceOutcome,
    /// Age of the underlying data at this hop (µs since its first copy
    /// reached any receiver); 0 when not applicable.
    pub age_us: u64,
    /// Worker shard that processed the hop (threaded driver only).
    pub shard: Option<u32>,
    /// Supervision backoff delay, for `ShardRestart` records.
    pub backoff_us: Option<u64>,
}

impl TraceRecord {
    /// A record with the required fields set and every optional field
    /// absent; fill in the rest by struct update.
    pub fn new(at_us: u64, stage: TraceStage, kind: TraceEventKind, outcome: TraceOutcome) -> Self {
        TraceRecord {
            at_us,
            stage,
            kind,
            stream: None,
            sensor: None,
            root: None,
            outcome,
            age_us: 0,
            shard: None,
            backoff_us: None,
        }
    }

    fn write_jsonl(&self, out: &mut String, with_shard: bool) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"at_us\":{},\"stage\":\"{}\",\"kind\":\"{}\"",
            self.at_us,
            self.stage.as_str(),
            self.kind.as_str()
        );
        if let Some(s) = self.stream {
            let _ = write!(out, ",\"stream\":{s}");
        }
        if let Some(s) = self.sensor {
            let _ = write!(out, ",\"sensor\":{s}");
        }
        if let Some(r) = self.root {
            let _ = write!(out, ",\"root\":{r}");
        }
        let _ =
            write!(out, ",\"outcome\":\"{}\",\"age_us\":{}", self.outcome.as_str(), self.age_us);
        if with_shard {
            if let Some(s) = self.shard {
                let _ = write!(out, ",\"shard\":{s}");
            }
        }
        if let Some(b) = self.backoff_us {
            let _ = write!(out, ",\"backoff_us\":{b}");
        }
        out.push('}');
    }

    /// One JSONL line (no trailing newline), fixed key order.
    pub fn jsonl_line(&self) -> String {
        let mut s = String::with_capacity(96);
        self.write_jsonl(&mut s, true);
        s
    }
}

/// Per-stage roll-up carried by a [`TraceSnapshot`].
#[derive(Clone, Debug)]
pub struct StageStats {
    /// The stage.
    pub stage: TraceStage,
    /// Hops recorded for the stage (independent of ring capacity).
    pub hops: u64,
    /// Driver queue depth observed at each hop for this stage.
    pub occupancy: Histogram,
    /// Data age at each hop (µs; see [`TraceRecord::age_us`]).
    pub latency: Histogram,
}

/// A point-in-time copy of the recorder: the surviving ring contents in
/// chronological order, the exact count of records that fell off the
/// ring, and per-stage statistics.
///
/// Always compiled; with the `trace` feature off every snapshot is
/// empty ([`TraceSnapshot::default`]).
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Surviving records, oldest first.
    pub records: Vec<TraceRecord>,
    /// Records evicted by ring wrap-around (exact).
    pub dropped: u64,
    /// Per-stage occupancy/latency roll-ups (empty when tracing is off
    /// or nothing was recorded).
    pub stages: Vec<StageStats>,
}

impl TraceSnapshot {
    /// The full dump: one JSONL line per surviving record.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 96);
        for r in &self.records {
            r.write_jsonl(&mut out, true);
            out.push('\n');
        }
        out
    }

    /// The dump with every `shard` field omitted — the canonical form
    /// for comparing a threaded trace against a single-threaded one.
    pub fn to_jsonl_modulo_shards(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 96);
        for r in &self.records {
            r.write_jsonl(&mut out, false);
            out.push('\n');
        }
        out
    }
}

/// Recorder capacity; see [`Tracer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring capacity in records. Oldest records are evicted (and
    /// counted in `dropped_records`) once the ring is full. A capacity
    /// of 0 records nothing (every hop counts as dropped).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { capacity: 65_536 }
    }
}

/// The flight recorder: a fixed-capacity ring of [`TraceRecord`]s plus
/// per-stage occupancy/latency histograms.
///
/// With the `trace` feature **off** this is a zero-sized type whose
/// methods compile to nothing — in particular [`Tracer::record`] takes
/// the record as a closure so even *constructing* the record is skipped.
#[cfg(feature = "trace")]
pub struct Tracer {
    capacity: usize,
    ring: Vec<TraceRecord>,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    dropped: u64,
    hops: [u64; 6],
    occupancy: [Histogram; 6],
    latency: [Histogram; 6],
}

#[cfg(feature = "trace")]
impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(TraceConfig::default())
    }
}

#[cfg(feature = "trace")]
impl Tracer {
    /// Creates a recorder with the given ring capacity.
    pub fn new(config: TraceConfig) -> Self {
        Tracer {
            capacity: config.capacity,
            ring: Vec::new(),
            head: 0,
            dropped: 0,
            hops: [0; 6],
            occupancy: Default::default(),
            latency: Default::default(),
        }
    }

    /// Whether records are actually captured (always true here; the
    /// no-op twin returns false so callers can skip expensive setup).
    pub fn is_enabled(&self) -> bool {
        true
    }

    /// Records one hop. The closure builds the record only when tracing
    /// is compiled in.
    pub fn record(&mut self, make: impl FnOnce() -> TraceRecord) {
        let rec = make();
        let idx = rec.stage.index();
        self.hops[idx] += 1;
        self.latency[idx].record(rec.age_us);
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() < self.capacity {
            self.ring.push(rec);
        } else {
            self.ring[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Feeds the driver's queue depth into a stage's occupancy
    /// histogram. Separate from [`Tracer::record`] because occupancy is
    /// a property of the driver, not of the event (the threaded driver
    /// reports in-flight roots here, which is timing-dependent and
    /// excluded from the determinism contract).
    pub fn note_occupancy(&mut self, stage: TraceStage, depth: u64) {
        self.occupancy[stage.index()].record(depth);
    }

    /// Records already evicted by ring wrap-around (exact).
    pub fn dropped_records(&self) -> u64 {
        self.dropped
    }

    /// Surviving records in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded (or everything was evicted
    /// by a zero-capacity ring).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Copies the recorder state out; see [`TraceSnapshot`].
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut records = Vec::with_capacity(self.ring.len());
        records.extend_from_slice(&self.ring[self.head..]);
        records.extend_from_slice(&self.ring[..self.head]);
        let stages = TraceStage::ALL
            .iter()
            .filter(|s| self.hops[s.index()] > 0)
            .map(|&stage| StageStats {
                stage,
                hops: self.hops[stage.index()],
                occupancy: self.occupancy[stage.index()].clone(),
                latency: self.latency[stage.index()].clone(),
            })
            .collect();
        TraceSnapshot { records, dropped: self.dropped, stages }
    }

    /// Clears the ring, the drop counter and the per-stage histograms.
    pub fn reset(&mut self) {
        self.ring.clear();
        self.head = 0;
        self.dropped = 0;
        self.hops = [0; 6];
        self.occupancy.iter_mut().for_each(Histogram::reset);
        self.latency.iter_mut().for_each(Histogram::reset);
    }

    /// Streams the ring's surviving records to `w` as JSONL (oldest
    /// first, one [`TraceRecord::jsonl_line`] per line), then clears the
    /// ring and the drop counter so subsequent hops fill a fresh window.
    /// Draining periodically turns the bounded ring into an unbounded
    /// sink: a long run is no longer limited to the last
    /// [`TraceConfig::capacity`] hops. Per-stage hop/occupancy/latency
    /// statistics are cumulative and survive the drain.
    ///
    /// Returns the number of records written. Records evicted *before*
    /// this drain (the current [`Tracer::dropped_records`]) are gone —
    /// the caller's ledger of what the file is missing.
    pub fn drain_to(&mut self, w: &mut impl std::io::Write) -> std::io::Result<usize> {
        let (newer, older) = (&self.ring[self.head..], &self.ring[..self.head]);
        let mut written = 0;
        for rec in newer.iter().chain(older) {
            writeln!(w, "{}", rec.jsonl_line())?;
            written += 1;
        }
        self.ring.clear();
        self.head = 0;
        self.dropped = 0;
        Ok(written)
    }
}

/// No-op twin of the recorder (the `trace` feature is off).
#[cfg(not(feature = "trace"))]
#[derive(Default)]
pub struct Tracer;

#[cfg(not(feature = "trace"))]
impl Tracer {
    /// No-op constructor.
    #[inline(always)]
    pub fn new(_config: TraceConfig) -> Self {
        Tracer
    }

    /// Always false: nothing is captured.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        false
    }

    /// No-op; the closure is never invoked.
    #[inline(always)]
    pub fn record(&mut self, _make: impl FnOnce() -> TraceRecord) {}

    /// No-op.
    #[inline(always)]
    pub fn note_occupancy(&mut self, _stage: TraceStage, _depth: u64) {}

    /// Always 0.
    #[inline(always)]
    pub fn dropped_records(&self) -> u64 {
        0
    }

    /// Always 0.
    #[inline(always)]
    pub fn len(&self) -> usize {
        0
    }

    /// Always true.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        true
    }

    /// Always empty.
    #[inline(always)]
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot::default()
    }

    /// No-op.
    #[inline(always)]
    pub fn reset(&mut self) {}

    /// Writes nothing (tracing is compiled out).
    #[inline(always)]
    pub fn drain_to(&mut self, _w: &mut impl std::io::Write) -> std::io::Result<usize> {
        Ok(0)
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("len", &self.len())
            .field("dropped", &self.dropped_records())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: u64) -> TraceRecord {
        TraceRecord {
            stream: Some(7),
            root: Some(at),
            ..TraceRecord::new(
                at,
                TraceStage::Filtering,
                TraceEventKind::Frame,
                TraceOutcome::Delivered,
            )
        }
    }

    #[test]
    fn jsonl_omits_absent_fields_and_keeps_key_order() {
        let r = rec(42);
        assert_eq!(
            r.jsonl_line(),
            "{\"at_us\":42,\"stage\":\"filtering\",\"kind\":\"frame\",\"stream\":7,\
             \"root\":42,\"outcome\":\"delivered\",\"age_us\":0}"
        );
        let full = TraceRecord {
            sensor: Some(3),
            shard: Some(1),
            backoff_us: Some(10_000),
            age_us: 5,
            ..rec(1)
        };
        let line = full.jsonl_line();
        assert!(line.contains("\"sensor\":3"));
        assert!(line.contains("\"shard\":1"));
        assert!(line.contains("\"backoff_us\":10000"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn modulo_shards_drops_only_the_shard_field() {
        let full = TraceRecord { shard: Some(2), ..rec(9) };
        let snap = TraceSnapshot { records: vec![full], dropped: 0, stages: Vec::new() };
        let blind = snap.to_jsonl_modulo_shards();
        assert!(!blind.contains("shard"));
        assert_eq!(blind, TraceSnapshot { records: vec![rec(9)], ..snap }.to_jsonl());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn ring_wraps_with_exact_drop_accounting() {
        let mut t = Tracer::new(TraceConfig { capacity: 4 });
        for at in 0..10u64 {
            t.record(|| rec(at));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped_records(), 6);
        let snap = t.snapshot();
        let ats: Vec<u64> = snap.records.iter().map(|r| r.at_us).collect();
        assert_eq!(ats, vec![6, 7, 8, 9], "oldest evicted first, survivors in order");
        assert_eq!(snap.dropped, 6);
        // Stage stats count every hop, not just survivors.
        assert_eq!(snap.stages.len(), 1);
        assert_eq!(snap.stages[0].hops, 10);
        assert_eq!(snap.stages[0].latency.count(), 10);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn drain_to_streams_survivors_after_ring_wrap_and_resets_the_window() {
        let mut t = Tracer::new(TraceConfig { capacity: 4 });
        for at in 0..10u64 {
            t.record(|| rec(at));
        }
        let mut sink = Vec::new();
        assert_eq!(t.drain_to(&mut sink).unwrap(), 4);
        let text = String::from_utf8(sink).unwrap();
        let ats: Vec<&str> = text
            .lines()
            .map(|l| l.split("\"at_us\":").nth(1).unwrap().split(',').next().unwrap())
            .collect();
        assert_eq!(ats, vec!["6", "7", "8", "9"], "drained oldest-first past the wrap point");
        // The window restarts: ring and drop counter are cleared, but
        // cumulative per-stage stats survive for the final snapshot.
        assert!(t.is_empty());
        assert_eq!(t.dropped_records(), 0);
        t.record(|| rec(20));
        let mut sink = Vec::new();
        assert_eq!(t.drain_to(&mut sink).unwrap(), 1);
        assert!(String::from_utf8(sink).unwrap().contains("\"at_us\":20"));
        assert_eq!(t.snapshot().stages[0].hops, 11);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn zero_capacity_records_nothing_but_counts_everything() {
        let mut t = Tracer::new(TraceConfig { capacity: 0 });
        t.record(|| rec(1));
        assert_eq!(t.len(), 0);
        assert_eq!(t.dropped_records(), 1);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn reset_clears_ring_drops_and_histograms() {
        let mut t = Tracer::new(TraceConfig { capacity: 2 });
        for at in 0..5u64 {
            t.record(|| rec(at));
        }
        t.note_occupancy(TraceStage::Filtering, 3);
        t.reset();
        assert!(t.is_empty());
        assert_eq!(t.dropped_records(), 0);
        assert!(t.snapshot().stages.is_empty());
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_tracer_is_zero_sized_and_never_builds_records() {
        assert_eq!(std::mem::size_of::<Tracer>(), 0);
        let mut t = Tracer::new(TraceConfig::default());
        t.record(|| unreachable!("record closure must not run when tracing is off"));
        assert!(t.is_empty());
        assert!(t.snapshot().records.is_empty());
    }
}
