//! Lightweight metrics: counters and log-bucketed histograms.
//!
//! Every experiment reports throughput (counters over a window) and
//! latency percentiles (histograms). The histogram uses HDR-style
//! log-linear bucketing: values are grouped by their binary magnitude with
//! 16 linear sub-buckets per octave, giving a worst-case relative
//! quantile error of ~6% across the full `u64` range with a fixed 1KiB-ish
//! footprint — adequate for simulation reporting and cheap enough to keep
//! always-on.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimDuration;

/// Builds a metric name under the `stage.metric` convention: a
/// lowercase stage (the emitting service or subsystem — `filtering`,
/// `dispatching`, `orphanage`, `location`, `resource`, `actuation`,
/// `replicator`, `coordinator`, `consumers`, `streams`, `overload`) and
/// a snake_case metric within it. Every Garnet metric name is emitted
/// through this one helper so the convention can't drift per call site.
///
/// # Example
///
/// ```
/// use garnet_simkit::metrics::stage_key;
///
/// assert_eq!(stage_key("filtering", "delivered"), "filtering.delivered");
/// ```
pub fn stage_key(stage: &str, metric: &str) -> String {
    debug_assert!(
        !stage.is_empty() && !metric.is_empty() && !stage.contains('.'),
        "stage/metric must be non-empty and the stage un-dotted: {stage:?}.{metric:?}"
    );
    format!("{stage}.{metric}")
}

/// Interned metric names for per-frame call sites.
///
/// [`stage_key`] allocates a fresh `String` per call, which is fine for
/// cold paths (snapshot assembly, `Garnet::metrics()`) but not for names
/// that would be rebuilt on every routed frame. The telemetry plane's
/// hot-path names live here as `&'static str` constants so per-frame
/// recording never formats; `stage_key` remains the constructor for
/// everything assembled once per snapshot.
pub mod keys {
    /// Sim-time from first boundary admission to filtering emission.
    pub const FILTERING_LATENCY_US: &str = "filtering.latency_us";
    /// Sim-time from filtering emission to dispatch fan-out.
    pub const DISPATCHING_LATENCY_US: &str = "dispatching.latency_us";
    /// Sim-time from first boundary admission to dispatch fan-out.
    pub const PIPELINE_E2E_LATENCY_US: &str = "pipeline.e2e_latency_us";
    /// Frames admitted since the router last went quiescent, all shards.
    pub const QUEUE_DEPTH: &str = "overload.queue_depth";
    /// Jobs stranded by worker shard failures (cumulative).
    pub const SHARD_FAILURES: &str = "overload.shard_failures";

    /// Per-shard queue-depth gauge name (cold path: snapshot assembly).
    pub fn shard_queue_depth(shard: usize) -> String {
        format!("{QUEUE_DEPTH}.shard{shard}")
    }
}

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use garnet_simkit::Counter;
///
/// let mut delivered = Counter::new();
/// delivered.incr();
/// delivered.add(4);
/// assert_eq!(delivered.get(), 5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

const SUB_BUCKET_BITS: u32 = 4; // 16 linear sub-buckets per octave
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
const OCTAVES: usize = 64;

/// A log-linear histogram over `u64` values.
///
/// Recording is O(1); quantile queries walk the (bounded) bucket array.
/// Relative error of reported quantiles is at most `1/16` (one linear
/// sub-bucket within an octave).
///
/// # Example
///
/// ```
/// use garnet_simkit::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.quantile(0.5);
/// assert!((450..=560).contains(&p50), "p50={p50}");
/// ```
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u64>, // OCTAVES * SUB_BUCKETS, lazily sized
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; OCTAVES * SUB_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros(); // >= SUB_BUCKET_BITS
        let shift = octave - SUB_BUCKET_BITS;
        let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
        ((octave - SUB_BUCKET_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    /// Representative (lower-bound) value of a bucket.
    fn bucket_floor(index: usize) -> u64 {
        let octave = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if octave == 0 {
            return sub;
        }
        let shift = (octave - 1) as u32;
        ((SUB_BUCKETS as u64) << shift) | (sub << shift)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a simulated duration in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Inclusive upper bound of a bucket: one below the next bucket's
    /// floor. The final bucket is unbounded above.
    fn bucket_ceil(index: usize) -> u64 {
        if index + 1 >= OCTAVES * SUB_BUCKETS {
            u64::MAX
        } else {
            Self::bucket_floor(index + 1) - 1
        }
    }

    /// The value at quantile `q` in `[0, 1]` (approximate; see type docs).
    /// Returns 0 when empty.
    ///
    /// The reported value is the midpoint of the sub-bucket holding the
    /// requested rank (clamped to the observed min/max), halving the
    /// bucket-floor bias that under-reported small-count histograms.
    /// Octave-zero buckets are unit-width, so small values stay exact.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let floor = Self::bucket_floor(i);
                let mid = floor + (Self::bucket_ceil(i) - floor) / 2;
                return mid.max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Convenience accessor for the median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Convenience accessor for the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Clears all recorded observations.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

/// A sampled level with min/max watermarks: the instantaneous reading a
/// counter can't express (queue depth, outstanding jobs, buffer
/// residency).
///
/// Recording overwrites `last` and folds the watermarks; nothing else is
/// retained, so the footprint is four words and recording is branch-free
/// enough for per-frame call sites.
///
/// Merging is defined for folding per-shard gauges into a node-level
/// view: `last` values **sum** (the merged gauge reads as the total
/// instantaneous level across shards), watermarks take the min-of-mins /
/// max-of-maxes, and sample counts add. This makes merge commutative and
/// associative, which the registry's [`MetricsRegistry::merge`] relies
/// on.
///
/// # Example
///
/// ```
/// use garnet_simkit::Gauge;
///
/// let mut depth = Gauge::new();
/// depth.record(3);
/// depth.record(7);
/// depth.record(2);
/// assert_eq!((depth.last(), depth.min(), depth.max(), depth.samples()), (2, 2, 7, 3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Gauge {
    last: u64,
    min: u64,
    max: u64,
    samples: u64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// Creates an empty gauge.
    pub fn new() -> Self {
        Gauge { last: 0, min: u64::MAX, max: 0, samples: 0 }
    }

    /// Records the current level.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.last = value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.samples += 1;
    }

    /// Most recently recorded level, or 0 when empty.
    pub fn last(&self) -> u64 {
        if self.samples == 0 {
            0
        } else {
            self.last
        }
    }

    /// Lowest level ever recorded, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.samples == 0 {
            0
        } else {
            self.min
        }
    }

    /// Highest level ever recorded, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Number of recordings.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Folds another gauge into this one (see type docs for semantics).
    pub fn merge(&mut self, other: &Gauge) {
        if other.samples == 0 {
            return;
        }
        if self.samples == 0 {
            *self = *other;
            return;
        }
        self.last += other.last;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.samples += other.samples;
    }

    /// Clears the gauge back to empty.
    pub fn reset(&mut self) {
        *self = Gauge::new();
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gauge")
            .field("last", &self.last())
            .field("min", &self.min())
            .field("max", &self.max())
            .field("samples", &self.samples())
            .finish()
    }
}

/// A named registry of counters and histograms, used by services to
/// expose operational statistics without threading dozens of references.
///
/// # Example
///
/// ```
/// use garnet_simkit::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.counter("filtering.duplicates").add(3);
/// m.histogram("dispatch.latency_us").record(120);
/// assert_eq!(m.counter("filtering.duplicates").get(), 3);
/// let report = m.report();
/// assert!(report.contains("dispatch.latency_us"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
    gauges: BTreeMap<String, Gauge>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it at zero on first use.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_owned()).or_default()
    }

    /// Reads a counter without creating it.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.get())
    }

    /// Returns the histogram named `name`, creating it empty on first use.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_owned()).or_default()
    }

    /// Reads a histogram without creating it.
    pub fn histogram_ref(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Returns the gauge named `name`, creating it empty on first use.
    pub fn gauge(&mut self, name: &str) -> &mut Gauge {
        self.gauges.entry(name.to_owned()).or_default()
    }

    /// Reads a gauge without creating it.
    pub fn gauge_ref(&self, name: &str) -> Option<&Gauge> {
        self.gauges.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &Gauge)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds another registry into this one: counters add, histograms
    /// merge bucket-wise, gauges merge per [`Gauge::merge`]. Merging is
    /// commutative, so per-shard registries fold deterministically in
    /// any order.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, c) in &other.counters {
            self.counter(name).add(c.get());
        }
        for (name, h) in &other.histograms {
            self.histogram(name).merge(h);
        }
        for (name, g) in &other.gauges {
            self.gauge(name).merge(g);
        }
    }

    /// Renders a deterministic plain-text report (name order).
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, c) in &self.counters {
            let _ = writeln!(out, "{name} = {}", c.get());
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name}: n={} mean={:.1} p50={} p99={} max={}",
                h.count(),
                h.mean(),
                h.p50(),
                h.p99(),
                h.max()
            );
        }
        for (name, g) in &self.gauges {
            let _ = writeln!(
                out,
                "{name}: last={} min={} max={} samples={}",
                g.last(),
                g.min(),
                g.max(),
                g.samples()
            );
        }
        out
    }

    /// Clears every metric.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.histograms.clear();
        self.gauges.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(2);
        assert_eq!(c.get(), 3);
        assert_eq!(c.to_string(), "3");
    }

    #[test]
    fn histogram_empty_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn histogram_single_value() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
        assert_eq!(h.quantile(0.0), 42);
        assert_eq!(h.quantile(1.0), 42);
        assert!((h.mean() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_small_values_exact() {
        // Values below SUB_BUCKETS land in exact unit buckets.
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 3, 3, 10] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.max(), 10);
    }

    #[test]
    fn histogram_quantile_relative_error_bounded() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &(q, exact) in &[(0.5, 50_000u64), (0.9, 90_000), (0.99, 99_000)] {
            let est = h.quantile(q);
            let rel = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(rel < 0.08, "q={q} est={est} exact={exact} rel={rel}");
        }
    }

    #[test]
    fn histogram_handles_extreme_values() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 7);
            } else {
                b.record(v * 7);
            }
            combined.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), combined.quantile(q));
        }
    }

    #[test]
    fn histogram_reset_clears_everything() {
        let mut h = Histogram::new();
        h.record(5);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_out_of_range() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn bucket_floor_is_monotone_and_inverts_index() {
        let mut prev = 0;
        for v in (0..20_000u64).chain([1 << 40, u64::MAX / 2, u64::MAX]) {
            let idx = Histogram::bucket_index(v);
            let floor = Histogram::bucket_floor(idx);
            assert!(floor <= v, "floor {floor} > value {v}");
            // floor must be within one sub-bucket of the value
            if v >= SUB_BUCKETS as u64 {
                assert!(v - floor <= v / SUB_BUCKETS as u64 + 1, "v={v} floor={floor}");
            } else {
                assert_eq!(floor, v);
            }
            let _ = prev;
            prev = idx;
        }
    }

    #[test]
    fn registry_report_is_deterministic() {
        let mut m = MetricsRegistry::new();
        m.counter("b").incr();
        m.counter("a").add(2);
        m.histogram("lat").record(10);
        let r1 = m.report();
        let r2 = m.report();
        assert_eq!(r1, r2);
        assert!(r1.starts_with("a = 2\n"));
    }

    #[test]
    fn registry_read_without_create() {
        let m = MetricsRegistry::new();
        assert_eq!(m.counter_value("missing"), 0);
        assert!(m.histogram_ref("missing").is_none());
        assert!(m.gauge_ref("missing").is_none());
    }

    #[test]
    fn quantile_midpoint_stays_inside_the_bucket() {
        // 1000 copies of a value deep inside an octave: the estimate must
        // clamp to the observed value, not report the bucket midpoint.
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(1_000_000);
        }
        assert_eq!(h.quantile(0.5), 1_000_000);
        // Mixed values: the midpoint lands within half a sub-bucket.
        let mut h = Histogram::new();
        for v in [900_000u64, 1_000_000, 1_100_000] {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let rel = (p50 as f64 - 1_000_000.0).abs() / 1_000_000.0;
        assert!(rel < 1.0 / 16.0, "p50={p50} rel={rel}");
    }

    #[test]
    fn gauge_basics_and_empty() {
        let g = Gauge::new();
        assert_eq!((g.last(), g.min(), g.max(), g.samples()), (0, 0, 0, 0));
        let mut g = Gauge::new();
        g.record(5);
        g.record(9);
        g.record(1);
        assert_eq!((g.last(), g.min(), g.max(), g.samples()), (1, 1, 9, 3));
        g.reset();
        assert_eq!(g.samples(), 0);
    }

    #[test]
    fn gauge_merge_sums_levels_and_folds_watermarks() {
        let mut a = Gauge::new();
        a.record(4);
        a.record(2);
        let mut b = Gauge::new();
        b.record(10);
        let mut empty = Gauge::new();
        // Empty is the identity on both sides.
        let mut via_empty = a;
        via_empty.merge(&empty);
        assert_eq!(via_empty, a);
        empty.merge(&a);
        assert_eq!(empty, a);
        a.merge(&b);
        assert_eq!((a.last(), a.min(), a.max(), a.samples()), (12, 2, 10, 3));
    }

    #[test]
    fn registry_merge_equals_combined_recording() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        let mut combined = MetricsRegistry::new();
        a.counter("offered").add(3);
        b.counter("offered").add(5);
        combined.counter("offered").add(8);
        b.counter("only_b").incr();
        combined.counter("only_b").incr();
        for v in [10u64, 20, 30] {
            a.histogram("lat").record(v);
            combined.histogram("lat").record(v);
        }
        for v in [40u64, 50] {
            b.histogram("lat").record(v);
            combined.histogram("lat").record(v);
        }
        a.merge(&b);
        assert_eq!(a.report(), combined.report());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn quantiles_are_monotone_in_q(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = Histogram::new();
            for v in &values {
                h.record(*v);
            }
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            let mut prev = 0;
            for &q in &qs {
                let v = h.quantile(q);
                prop_assert!(v >= prev, "quantile({q}) = {v} < {prev}");
                prev = v;
            }
            // Extremes are exact.
            prop_assert_eq!(h.quantile(1.0), *values.iter().max().unwrap());
            prop_assert!(h.quantile(0.0) >= *values.iter().min().unwrap());
        }

        #[test]
        fn merge_is_commutative(
            a in proptest::collection::vec(0u64..1_000_000, 0..100),
            b in proptest::collection::vec(0u64..1_000_000, 0..100),
        ) {
            let build = |vals: &[u64]| {
                let mut h = Histogram::new();
                for v in vals {
                    h.record(*v);
                }
                h
            };
            let mut ab = build(&a);
            ab.merge(&build(&b));
            let mut ba = build(&b);
            ba.merge(&build(&a));
            prop_assert_eq!(ab.count(), ba.count());
            prop_assert_eq!(ab.min(), ba.min());
            prop_assert_eq!(ab.max(), ba.max());
            for q in [0.25, 0.5, 0.9] {
                prop_assert_eq!(ab.quantile(q), ba.quantile(q));
            }
        }

        #[test]
        fn quantile_within_relative_error(values in proptest::collection::vec(1u64..1_000_000, 1..300), q in 0.01f64..0.99) {
            let mut h = Histogram::new();
            for v in &values {
                h.record(*v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = h.quantile(q);
            // Log-linear bucketing with midpoint interpolation: half a
            // sub-bucket of relative error.
            let tolerance = (exact / 16).max(1);
            prop_assert!(
                est <= exact && exact - est <= tolerance || est > exact && est - exact <= tolerance,
                "q={q} est={est} exact={exact}"
            );
        }

        #[test]
        fn registry_merge_is_commutative_and_equals_combined(
            a in proptest::collection::vec((0usize..3, 0u64..10_000), 0..60),
            b in proptest::collection::vec((0usize..3, 0u64..10_000), 0..60),
        ) {
            // Each sample records into one of three names, exercising
            // counters, histograms and gauges under partial key overlap.
            let build = |samples: &[(usize, u64)]| {
                let mut m = MetricsRegistry::new();
                for &(slot, v) in samples {
                    let name = ["alpha", "beta", "gamma"][slot];
                    m.counter(name).add(v);
                    m.histogram(name).record(v);
                    m.gauge(name).record(v);
                }
                m
            };
            let mut ab = build(&a);
            ab.merge(&build(&b));
            let mut ba = build(&b);
            ba.merge(&build(&a));
            // Commutative on everything except gauge `last` order
            // sensitivity — which the sum semantics removes entirely.
            prop_assert_eq!(ab.report(), ba.report());
            // Counter and histogram folds match combined recording.
            let mut all = a.clone();
            all.extend(b.iter().copied());
            let combined = build(&all);
            for (name, v) in combined.counters() {
                prop_assert_eq!(ab.counter_value(name), v);
            }
            for (name, h) in combined.histograms() {
                let folded = ab.histogram_ref(name).unwrap();
                prop_assert_eq!(folded.count(), h.count());
                prop_assert_eq!(folded.min(), h.min());
                prop_assert_eq!(folded.max(), h.max());
                prop_assert_eq!(folded.p50(), h.p50());
                prop_assert_eq!(folded.p99(), h.p99());
            }
            // Gauge watermarks and sample counts match combined
            // recording; `last` is the sum of the per-registry lasts.
            for (name, g) in combined.gauges() {
                let folded = ab.gauge_ref(name).unwrap();
                prop_assert_eq!(folded.min(), g.min());
                prop_assert_eq!(folded.max(), g.max());
                prop_assert_eq!(folded.samples(), g.samples());
            }
        }
    }
}
