//! Lightweight metrics: counters and log-bucketed histograms.
//!
//! Every experiment reports throughput (counters over a window) and
//! latency percentiles (histograms). The histogram uses HDR-style
//! log-linear bucketing: values are grouped by their binary magnitude with
//! 16 linear sub-buckets per octave, giving a worst-case relative
//! quantile error of ~6% across the full `u64` range with a fixed 1KiB-ish
//! footprint — adequate for simulation reporting and cheap enough to keep
//! always-on.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimDuration;

/// Builds a metric name under the `stage.metric` convention: a
/// lowercase stage (the emitting service or subsystem — `filtering`,
/// `dispatching`, `orphanage`, `location`, `resource`, `actuation`,
/// `replicator`, `coordinator`, `consumers`, `streams`, `overload`) and
/// a snake_case metric within it. Every Garnet metric name is emitted
/// through this one helper so the convention can't drift per call site.
///
/// # Example
///
/// ```
/// use garnet_simkit::metrics::stage_key;
///
/// assert_eq!(stage_key("filtering", "delivered"), "filtering.delivered");
/// ```
pub fn stage_key(stage: &str, metric: &str) -> String {
    debug_assert!(
        !stage.is_empty() && !metric.is_empty() && !stage.contains('.'),
        "stage/metric must be non-empty and the stage un-dotted: {stage:?}.{metric:?}"
    );
    format!("{stage}.{metric}")
}

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use garnet_simkit::Counter;
///
/// let mut delivered = Counter::new();
/// delivered.incr();
/// delivered.add(4);
/// assert_eq!(delivered.get(), 5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

const SUB_BUCKET_BITS: u32 = 4; // 16 linear sub-buckets per octave
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
const OCTAVES: usize = 64;

/// A log-linear histogram over `u64` values.
///
/// Recording is O(1); quantile queries walk the (bounded) bucket array.
/// Relative error of reported quantiles is at most `1/16` (one linear
/// sub-bucket within an octave).
///
/// # Example
///
/// ```
/// use garnet_simkit::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.quantile(0.5);
/// assert!((450..=560).contains(&p50), "p50={p50}");
/// ```
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u64>, // OCTAVES * SUB_BUCKETS, lazily sized
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; OCTAVES * SUB_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros(); // >= SUB_BUCKET_BITS
        let shift = octave - SUB_BUCKET_BITS;
        let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
        ((octave - SUB_BUCKET_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    /// Representative (lower-bound) value of a bucket.
    fn bucket_floor(index: usize) -> u64 {
        let octave = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if octave == 0 {
            return sub;
        }
        let shift = (octave - 1) as u32;
        ((SUB_BUCKETS as u64) << shift) | (sub << shift)
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a simulated duration in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]` (approximate; see type docs).
    /// Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Convenience accessor for the median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Convenience accessor for the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Clears all recorded observations.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

/// A named registry of counters and histograms, used by services to
/// expose operational statistics without threading dozens of references.
///
/// # Example
///
/// ```
/// use garnet_simkit::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.counter("filtering.duplicates").add(3);
/// m.histogram("dispatch.latency_us").record(120);
/// assert_eq!(m.counter("filtering.duplicates").get(), 3);
/// let report = m.report();
/// assert!(report.contains("dispatch.latency_us"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it at zero on first use.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_owned()).or_default()
    }

    /// Reads a counter without creating it.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.get())
    }

    /// Returns the histogram named `name`, creating it empty on first use.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_owned()).or_default()
    }

    /// Reads a histogram without creating it.
    pub fn histogram_ref(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// Renders a deterministic plain-text report (name order).
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, c) in &self.counters {
            let _ = writeln!(out, "{name} = {}", c.get());
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name}: n={} mean={:.1} p50={} p99={} max={}",
                h.count(),
                h.mean(),
                h.p50(),
                h.p99(),
                h.max()
            );
        }
        out
    }

    /// Clears every metric.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(2);
        assert_eq!(c.get(), 3);
        assert_eq!(c.to_string(), "3");
    }

    #[test]
    fn histogram_empty_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn histogram_single_value() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
        assert_eq!(h.quantile(0.0), 42);
        assert_eq!(h.quantile(1.0), 42);
        assert!((h.mean() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_small_values_exact() {
        // Values below SUB_BUCKETS land in exact unit buckets.
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 3, 3, 10] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.max(), 10);
    }

    #[test]
    fn histogram_quantile_relative_error_bounded() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &(q, exact) in &[(0.5, 50_000u64), (0.9, 90_000), (0.99, 99_000)] {
            let est = h.quantile(q);
            let rel = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(rel < 0.08, "q={q} est={est} exact={exact} rel={rel}");
        }
    }

    #[test]
    fn histogram_handles_extreme_values() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 7);
            } else {
                b.record(v * 7);
            }
            combined.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), combined.quantile(q));
        }
    }

    #[test]
    fn histogram_reset_clears_everything() {
        let mut h = Histogram::new();
        h.record(5);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_out_of_range() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn bucket_floor_is_monotone_and_inverts_index() {
        let mut prev = 0;
        for v in (0..20_000u64).chain([1 << 40, u64::MAX / 2, u64::MAX]) {
            let idx = Histogram::bucket_index(v);
            let floor = Histogram::bucket_floor(idx);
            assert!(floor <= v, "floor {floor} > value {v}");
            // floor must be within one sub-bucket of the value
            if v >= SUB_BUCKETS as u64 {
                assert!(v - floor <= v / SUB_BUCKETS as u64 + 1, "v={v} floor={floor}");
            } else {
                assert_eq!(floor, v);
            }
            let _ = prev;
            prev = idx;
        }
    }

    #[test]
    fn registry_report_is_deterministic() {
        let mut m = MetricsRegistry::new();
        m.counter("b").incr();
        m.counter("a").add(2);
        m.histogram("lat").record(10);
        let r1 = m.report();
        let r2 = m.report();
        assert_eq!(r1, r2);
        assert!(r1.starts_with("a = 2\n"));
    }

    #[test]
    fn registry_read_without_create() {
        let m = MetricsRegistry::new();
        assert_eq!(m.counter_value("missing"), 0);
        assert!(m.histogram_ref("missing").is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn quantiles_are_monotone_in_q(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = Histogram::new();
            for v in &values {
                h.record(*v);
            }
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            let mut prev = 0;
            for &q in &qs {
                let v = h.quantile(q);
                prop_assert!(v >= prev, "quantile({q}) = {v} < {prev}");
                prev = v;
            }
            // Extremes are exact.
            prop_assert_eq!(h.quantile(1.0), *values.iter().max().unwrap());
            prop_assert!(h.quantile(0.0) >= *values.iter().min().unwrap());
        }

        #[test]
        fn merge_is_commutative(
            a in proptest::collection::vec(0u64..1_000_000, 0..100),
            b in proptest::collection::vec(0u64..1_000_000, 0..100),
        ) {
            let build = |vals: &[u64]| {
                let mut h = Histogram::new();
                for v in vals {
                    h.record(*v);
                }
                h
            };
            let mut ab = build(&a);
            ab.merge(&build(&b));
            let mut ba = build(&b);
            ba.merge(&build(&a));
            prop_assert_eq!(ab.count(), ba.count());
            prop_assert_eq!(ab.min(), ba.min());
            prop_assert_eq!(ab.max(), ba.max());
            for q in [0.25, 0.5, 0.9] {
                prop_assert_eq!(ab.quantile(q), ba.quantile(q));
            }
        }

        #[test]
        fn quantile_within_relative_error(values in proptest::collection::vec(1u64..1_000_000, 1..300), q in 0.01f64..0.99) {
            let mut h = Histogram::new();
            for v in &values {
                h.record(*v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = h.quantile(q);
            // Log-linear bucketing: one sub-bucket of relative error.
            let tolerance = (exact / 8).max(1);
            prop_assert!(
                est <= exact && exact - est <= tolerance || est > exact && est - exact <= tolerance,
                "q={q} est={est} exact={exact}"
            );
        }
    }
}
