//! Deterministic discrete-event simulation kernel for the Garnet reproduction.
//!
//! Every experiment in this repository runs on this kernel so results are
//! exactly reproducible from a seed. The kernel provides:
//!
//! * [`time`] — a microsecond-resolution simulated clock ([`SimTime`],
//!   [`SimDuration`]).
//! * [`event`] — a deterministic, stable-ordered event queue
//!   ([`EventQueue`]) and a ready-to-use driver loop ([`Simulation`]).
//! * [`rng`] — seedable, dependency-light pseudo-random generators
//!   ([`SimRng`]) with a stable stream-splitting discipline so adding a new
//!   random consumer does not perturb existing draws.
//! * [`metrics`] — counters and log-bucketed histograms used by all
//!   experiments to report latency and throughput percentiles.
//! * [`trace`] — a feature-gated flight recorder ([`Tracer`]) capturing
//!   one compact record per service-event hop; compiles to no-ops
//!   unless the `trace` cargo feature is enabled.
//!
//! # Example
//!
//! ```
//! use garnet_simkit::{Simulation, SimDuration};
//!
//! let mut sim: Simulation<&'static str> = Simulation::new();
//! sim.schedule_in(SimDuration::from_millis(5), "later");
//! sim.schedule_in(SimDuration::from_millis(1), "sooner");
//! let mut order = Vec::new();
//! while let Some((t, ev)) = sim.next_event() {
//!     order.push((t.as_micros(), ev));
//! }
//! assert_eq!(order, vec![(1_000, "sooner"), (5_000, "later")]);
//! ```

pub mod event;
pub mod metrics;
pub mod rng;
pub mod time;
pub mod trace;

pub use event::{EventQueue, Simulation};
pub use metrics::{stage_key, Counter, Gauge, Histogram, MetricsRegistry};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{
    StageStats, TraceConfig, TraceEventKind, TraceOutcome, TraceRecord, TraceSnapshot, TraceStage,
    Tracer,
};
