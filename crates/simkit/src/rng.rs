//! Seedable pseudo-random generators with stable stream splitting.
//!
//! The kernel ships its own small generator (SplitMix64 seeding a
//! xoshiro256** state) rather than relying on `rand`'s default engines so
//! that the exact bit streams used by experiments are pinned by this
//! repository, not by a dependency's minor version. [`SimRng`] still
//! implements [`rand::RngCore`] so the whole `rand` combinator ecosystem
//! (distributions, `shuffle`, …) works on top of it.
//!
//! # Stream splitting
//!
//! Experiments use many independent random consumers (per-sensor mobility,
//! per-link loss, workload arrivals). Deriving each consumer's generator
//! with [`SimRng::fork`] from a named label keeps streams independent *and*
//! stable: adding a new consumer does not shift the draws seen by existing
//! ones, which keeps regression baselines meaningful.

use rand::RngCore;

/// Advances a SplitMix64 state and returns the next output.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string; used to hash fork labels into seed space.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A deterministic xoshiro256** generator.
///
/// # Example
///
/// ```
/// use garnet_simkit::SimRng;
/// use rand::{Rng, RngCore};
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Forked streams are independent of the parent's subsequent draws.
/// let mut mobility = a.fork("mobility");
/// let _: f64 = mobility.gen_range(0.0..1.0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed. Any seed (including 0) is
    /// valid; SplitMix64 expansion guarantees a non-degenerate state.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Derives an independent generator for the consumer named `label`.
    ///
    /// The child stream depends only on the parent's *seed lineage* and
    /// the label, not on how many values the parent has produced, so the
    /// set of forks is order-insensitive.
    pub fn fork(&self, label: &str) -> SimRng {
        let mix = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ fnv1a(label.as_bytes());
        SimRng::seed(mix)
    }

    /// Derives an independent generator for the consumer with numeric
    /// index `index` (e.g. one stream per sensor).
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        let mix = fnv1a(label.as_bytes()) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let base = self.s[0] ^ self.s[2].rotate_left(23);
        SimRng::seed(base ^ mix)
    }

    /// The next value in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Uniform integer in `[0, bound)` using Lemire's rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire's nearly-divisionless method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Exponentially distributed value with the given mean (inverse rate).
    /// Used for Poisson arrival processes in workload generators.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // Inverse-CDF; guard the log argument away from zero.
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Standard normal draw (Box–Muller, one value per call).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // xoshiro256** core step.
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SimRng::seed(0);
        let vals: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
        assert!(vals.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn fork_is_order_insensitive() {
        let parent = SimRng::seed(99);
        let mut child1 = parent.fork("loss");
        let parent2 = SimRng::seed(99);
        let _ = parent2.fork("mobility"); // extra fork must not matter
        let mut child2 = parent2.fork("loss");
        assert_eq!(child1.next_u64(), child2.next_u64());
    }

    #[test]
    fn fork_labels_give_distinct_streams() {
        let parent = SimRng::seed(5);
        let mut a = parent.fork("a");
        let mut b = parent.fork("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_indexed_distinct_per_index() {
        let parent = SimRng::seed(5);
        let mut s: Vec<u64> =
            (0..32).map(|i| parent.fork_indexed("sensor", i).next_u64()).collect();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 32);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut r = SimRng::seed(11);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_is_uniformish_and_in_range() {
        let mut r = SimRng::seed(13);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10k; allow generous tolerance.
            assert!((8_000..12_000).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        SimRng::seed(1).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(17);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut r = SimRng::seed(19);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = SimRng::seed(23);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!((3.8..4.2).contains(&mean), "mean={mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = SimRng::seed(29);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((0.95..1.05).contains(&var), "var={var}");
    }

    #[test]
    fn rand_ecosystem_interop() {
        let mut r = SimRng::seed(31);
        let v: f64 = r.gen_range(10.0..20.0);
        assert!((10.0..20.0).contains(&v));
        let mut bytes = [0u8; 13];
        r.fill_bytes(&mut bytes);
        assert!(bytes.iter().any(|&b| b != 0));
    }
}
