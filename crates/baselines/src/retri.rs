//! Random Ephemeral TRansaction Identifiers (Elson & Estrin, ICDCS-21),
//! reimplemented as a baseline identifier scheme.
//!
//! RETRI replaces pre-assigned node/stream identifiers with a random
//! `k`-bit identifier drawn per *transaction* (a short burst of related
//! packets). The win: `k` can be much smaller than a global id space
//! because it only needs to be unique among *concurrently active*
//! transactions in one collision domain; identifier bits are energy, so
//! small `k` means cheaper packets. The loss: with probability growing
//! in the number of concurrent transactions (the birthday bound), two
//! transactions collide and their packets are mixed or discarded.
//!
//! The paper (§7): "their approach scales with the increasing transaction
//! density and not the sheer size of the network … because Garnet
//! depends on unique consistent stream IDs, the ephemeral nature of the
//! RETRI identifier renders their technique inappropriate." Experiment
//! E6 reproduces both curves: bits saved vs collision cost.

use garnet_radio::EnergyModel;
use garnet_simkit::SimRng;

/// Garnet's identifier overhead per data message: 32-bit StreamID +
/// 16-bit sequence (Fig. 2).
pub const GARNET_ID_BITS: u32 = 48;

/// An identifier scheme under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetriScheme {
    /// Random ephemeral ids of `id_bits` bits (plus a small sequence
    /// within the transaction, charged at 8 bits as in the original
    /// paper's framing).
    Ephemeral {
        /// Identifier width in bits (4–32 sensible).
        id_bits: u32,
    },
    /// Garnet's stable 24+8-bit StreamID + 16-bit sequence.
    GarnetStable,
}

impl RetriScheme {
    /// Identifier bits carried by every packet under this scheme.
    pub fn id_bits_per_packet(self) -> u32 {
        match self {
            RetriScheme::Ephemeral { id_bits } => id_bits + 8,
            RetriScheme::GarnetStable => GARNET_ID_BITS,
        }
    }
}

/// Analytic probability that at least one collision occurs among
/// `concurrent` transactions drawing uniform `id_bits`-bit identifiers
/// (the birthday bound, computed exactly in log space).
pub fn analytic_collision_probability(id_bits: u32, concurrent: u64) -> f64 {
    let space = 2f64.powi(id_bits.min(63) as i32);
    if concurrent as f64 >= space {
        return 1.0;
    }
    let mut log_no_collision = 0f64;
    for i in 0..concurrent {
        log_no_collision += (1.0 - i as f64 / space).ln();
    }
    1.0 - log_no_collision.exp()
}

/// Monte-Carlo fraction of *transactions* that land on a colliding
/// identifier (packets of such transactions are ambiguous and must be
/// discarded).
pub fn simulate_collision_rate(
    id_bits: u32,
    concurrent: usize,
    trials: u32,
    rng: &mut SimRng,
) -> f64 {
    assert!((1..=32).contains(&id_bits), "id_bits must be 1..=32");
    let mask = if id_bits == 32 { u32::MAX } else { (1u32 << id_bits) - 1 };
    let mut collided_total = 0u64;
    let mut ids: Vec<u32> = Vec::with_capacity(concurrent);
    for _ in 0..trials {
        ids.clear();
        for _ in 0..concurrent {
            ids.push((rng.next_u64() as u32) & mask);
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        // Count members of any identifier that appears more than once.
        let mut i = 0;
        while i < sorted.len() {
            let mut j = i + 1;
            while j < sorted.len() && sorted[j] == sorted[i] {
                j += 1;
            }
            if j - i > 1 {
                collided_total += (j - i) as u64;
            }
            i = j;
        }
    }
    collided_total as f64 / (concurrent as u64 * u64::from(trials)) as f64
}

use rand::RngCore as _;

/// Cost report for one scheme at one operating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchemeCost {
    /// Identifier bits per packet.
    pub id_bits_per_packet: u32,
    /// Fraction of transactions lost to identifier collisions.
    pub collision_rate: f64,
    /// Mean radio energy per *successfully delivered* reading (nJ):
    /// collided transactions spend their energy and deliver nothing.
    pub energy_per_delivered_nj: f64,
}

/// Computes the energy-per-delivered-reading trade-off for a scheme.
///
/// Model: each transaction is one packet of `payload_bits` payload plus
/// identifier bits plus `framing_bits` of PHY/CRC framing; a collided
/// transaction's energy is wasted.
pub fn scheme_cost(
    scheme: RetriScheme,
    concurrent: usize,
    payload_bits: u32,
    energy: &EnergyModel,
    rng: &mut SimRng,
) -> SchemeCost {
    let id_bits = scheme.id_bits_per_packet();
    let framing_bits = 10 * 8; // preamble + CRC + header byte
    let packet_bits = u64::from(id_bits + payload_bits + framing_bits);
    let packet_bytes = packet_bits.div_ceil(8) as usize;
    let collision_rate = match scheme {
        RetriScheme::Ephemeral { id_bits } => {
            simulate_collision_rate(id_bits, concurrent, 400, rng)
        }
        RetriScheme::GarnetStable => 0.0,
    };
    let tx_nj = energy.tx_cost_nj(packet_bytes) as f64;
    let delivered_fraction = (1.0 - collision_rate).max(1e-9);
    SchemeCost {
        id_bits_per_packet: id_bits,
        collision_rate,
        energy_per_delivered_nj: tx_nj / delivered_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_bits_per_packet() {
        assert_eq!(RetriScheme::GarnetStable.id_bits_per_packet(), 48);
        assert_eq!(RetriScheme::Ephemeral { id_bits: 8 }.id_bits_per_packet(), 16);
        assert!(
            RetriScheme::Ephemeral { id_bits: 8 }.id_bits_per_packet()
                < RetriScheme::GarnetStable.id_bits_per_packet(),
            "RETRI's whole point: fewer identifier bits"
        );
    }

    #[test]
    fn analytic_collision_edge_cases() {
        assert_eq!(analytic_collision_probability(16, 0), 0.0);
        assert_eq!(analytic_collision_probability(16, 1), 0.0);
        // With as many transactions as identifiers, collision is certain.
        assert_eq!(analytic_collision_probability(4, 16), 1.0);
        // Birthday: 23 people, 365 days ≈ 50.7%. Use 2^9=512 ids, 27 txs
        // ≈ 50% ballpark.
        let p = analytic_collision_probability(9, 27);
        assert!((0.4..0.6).contains(&p), "p={p}");
    }

    #[test]
    fn analytic_probability_is_monotone_in_density() {
        let mut prev = 0.0;
        for n in [1u64, 4, 16, 64, 256] {
            let p = analytic_collision_probability(12, n);
            assert!(p >= prev, "p({n})={p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn simulated_rate_matches_analytic_direction() {
        let mut rng = SimRng::seed(1);
        // 8-bit ids: with 4 concurrent transactions the per-transaction
        // collision rate is ~1.2%; with 100 it is ~32%.
        let sparse = simulate_collision_rate(8, 4, 300, &mut rng);
        let dense = simulate_collision_rate(8, 100, 300, &mut rng);
        assert!(sparse < dense, "sparse={sparse} dense={dense}");
        assert!(sparse < 0.05, "sparse={sparse}");
        assert!(dense > 0.2, "dense={dense}");
    }

    #[test]
    fn simulated_single_transaction_never_collides() {
        let mut rng = SimRng::seed(2);
        assert_eq!(simulate_collision_rate(8, 1, 100, &mut rng), 0.0);
    }

    #[test]
    fn garnet_scheme_never_collides() {
        let mut rng = SimRng::seed(3);
        let cost = scheme_cost(
            RetriScheme::GarnetStable,
            10_000,
            16 * 8,
            &EnergyModel::microsensor(),
            &mut rng,
        );
        assert_eq!(cost.collision_rate, 0.0);
    }

    #[test]
    fn retri_wins_at_low_density_loses_at_high() {
        // The E6 crossover in miniature.
        let energy = EnergyModel::microsensor();
        let mut rng = SimRng::seed(4);
        let retri = RetriScheme::Ephemeral { id_bits: 8 };

        let sparse_retri = scheme_cost(retri, 2, 16 * 8, &energy, &mut rng);
        let sparse_garnet = scheme_cost(RetriScheme::GarnetStable, 2, 16 * 8, &energy, &mut rng);
        assert!(
            sparse_retri.energy_per_delivered_nj < sparse_garnet.energy_per_delivered_nj,
            "at low density RETRI's smaller header wins: {} vs {}",
            sparse_retri.energy_per_delivered_nj,
            sparse_garnet.energy_per_delivered_nj
        );

        let dense_retri = scheme_cost(retri, 300, 16 * 8, &energy, &mut rng);
        let dense_garnet = scheme_cost(RetriScheme::GarnetStable, 300, 16 * 8, &energy, &mut rng);
        assert!(
            dense_retri.energy_per_delivered_nj > dense_garnet.energy_per_delivered_nj,
            "at high density collisions eat RETRI's saving: {} vs {}",
            dense_retri.energy_per_delivered_nj,
            dense_garnet.energy_per_delivered_nj
        );
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let a = simulate_collision_rate(10, 50, 100, &mut SimRng::seed(9));
        let b = simulate_collision_rate(10, 50, 100, &mut SimRng::seed(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn zero_bit_ids_rejected() {
        simulate_collision_rate(0, 10, 10, &mut SimRng::seed(1));
    }
}
