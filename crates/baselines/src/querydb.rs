//! A miniature Fjords-style continuous-query engine (Madden & Franklin,
//! ICDE'02) over sensor streams.
//!
//! Fjords interpose a *sensor proxy* between a physical sensor and the
//! queries over its data: the sensor transmits once at the fastest rate
//! any query needs, and the proxy fans samples out, downsampling per
//! query. The alternative — each query acquiring its own feed — costs
//! the sensor one transmission per query per sample.
//!
//! The paper (§7) notes both systems "share the notion of separating the
//! consumer of the data from its source", and that Fjords' proxies
//! parallel Garnet's resource manager "adjusting sensor output based on
//! user demand". Experiment E7 reproduces the sharing win and shows
//! Garnet's MergeMax mediation produces the same sensor-side behaviour.

use std::collections::BTreeMap;

use garnet_simkit::{SimDuration, SimTime};

/// The aggregate a continuous query computes over each reporting window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregate {
    /// Latest value in the window.
    Last,
    /// Arithmetic mean.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// A continuous query: "every `interval`, report `aggregate` of the
/// samples since the last report".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Query {
    /// Reporting interval.
    pub interval: SimDuration,
    /// Aggregate computed per window.
    pub aggregate: Aggregate,
}

impl Query {
    /// A `Last`-value query at the given interval.
    pub fn latest_every(interval: SimDuration) -> Query {
        Query { interval, aggregate: Aggregate::Last }
    }
}

/// One query's produced results.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryOutput {
    /// `(report time, value)` pairs.
    pub results: Vec<(SimTime, f64)>,
}

#[derive(Clone, Debug)]
struct QueryState {
    query: Query,
    window: Vec<f64>,
    next_report: SimTime,
    output: QueryOutput,
}

impl QueryState {
    fn new(query: Query) -> Self {
        QueryState {
            query,
            window: Vec::new(),
            next_report: SimTime::ZERO + query.interval,
            output: QueryOutput::default(),
        }
    }

    fn ingest(&mut self, at: SimTime, value: f64) {
        // Close any windows that ended before this sample.
        while at >= self.next_report {
            self.emit();
        }
        self.window.push(value);
    }

    fn emit(&mut self) {
        let value = match self.query.aggregate {
            Aggregate::Last => self.window.last().copied(),
            Aggregate::Avg => (!self.window.is_empty())
                .then(|| self.window.iter().sum::<f64>() / self.window.len() as f64),
            Aggregate::Min => self.window.iter().copied().reduce(f64::min),
            Aggregate::Max => self.window.iter().copied().reduce(f64::max),
        };
        if let Some(v) = value {
            self.output.results.push((self.next_report, v));
        }
        self.window.clear();
        self.next_report += self.query.interval;
    }

    fn finish(&mut self, horizon: SimTime) {
        while self.next_report <= horizon {
            self.emit();
        }
    }
}

/// The query engine over one sensor stream.
#[derive(Debug, Default)]
pub struct QueryEngine {
    queries: BTreeMap<usize, QueryState>,
    next_id: usize,
    samples_ingested: u64,
}

impl QueryEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a query, returning its id.
    pub fn register(&mut self, query: Query) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        self.queries.insert(id, QueryState::new(query));
        id
    }

    /// Feeds one sample to every registered query.
    pub fn ingest(&mut self, at: SimTime, value: f64) {
        self.samples_ingested += 1;
        for q in self.queries.values_mut() {
            q.ingest(at, value);
        }
    }

    /// Closes all windows up to `horizon` and returns each query's
    /// output.
    pub fn finish(mut self, horizon: SimTime) -> BTreeMap<usize, QueryOutput> {
        for q in self.queries.values_mut() {
            q.finish(horizon);
        }
        self.queries.into_iter().map(|(id, q)| (id, q.output)).collect()
    }

    /// Drains every result produced so far, as `(query id, report time,
    /// value)` triples in query-id order — the incremental interface a
    /// live proxy uses to forward results as windows close.
    pub fn drain_results(&mut self) -> Vec<(usize, SimTime, f64)> {
        let mut out = Vec::new();
        for (&id, q) in self.queries.iter_mut() {
            for (at, v) in q.output.results.drain(..) {
                out.push((id, at, v));
            }
        }
        out
    }

    /// Samples ingested so far.
    pub fn samples_ingested(&self) -> u64 {
        self.samples_ingested
    }

    /// The fastest interval any registered query needs — the rate a
    /// shared sensor proxy asks the sensor for (and exactly what
    /// Garnet's MergeMax resource mediation computes).
    pub fn shared_acquisition_interval(&self) -> Option<SimDuration> {
        self.queries.values().map(|q| q.query.interval).min()
    }
}

/// Message/transmission counts for the shared-proxy vs per-query
/// comparison (experiment E7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharingComparison {
    /// Number of simultaneous queries.
    pub queries: usize,
    /// Sensor radio transmissions with a shared proxy.
    pub sensor_tx_shared: u64,
    /// Sensor radio transmissions with per-query acquisition.
    pub sensor_tx_per_query: u64,
    /// Fixed-network messages with a shared proxy (proxy input +
    /// per-query deliveries).
    pub fixednet_msgs_shared: u64,
    /// Fixed-network messages with per-query acquisition.
    pub fixednet_msgs_per_query: u64,
}

/// Computes transmission counts for `queries` running over `horizon`
/// against a sensor sampled by demand.
///
/// * **Shared proxy**: the sensor transmits at the fastest requested
///   interval; the proxy delivers each query its own (downsampled)
///   report stream.
/// * **Per-query**: each query independently drives the sensor at its
///   own interval.
pub fn compare_sharing(queries: &[Query], horizon: SimTime) -> SharingComparison {
    let h = horizon.as_micros();
    let reports = |interval: SimDuration| -> u64 {
        if interval.is_zero() {
            0
        } else {
            h / interval.as_micros().max(1)
        }
    };
    let per_query_tx: u64 = queries.iter().map(|q| reports(q.interval)).sum();
    let min_interval = queries.iter().map(|q| q.interval).min();
    let shared_tx = min_interval.map_or(0, reports);
    SharingComparison {
        queries: queries.len(),
        sensor_tx_shared: shared_tx,
        sensor_tx_per_query: per_query_tx,
        fixednet_msgs_shared: shared_tx + per_query_tx, // proxy in + fan-out
        fixednet_msgs_per_query: 2 * per_query_tx,      // acquisition + delivery
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn last_query_reports_latest_per_window() {
        let mut e = QueryEngine::new();
        let q = e.register(Query::latest_every(secs(2)));
        for t in 0..6u64 {
            e.ingest(SimTime::from_secs(t), t as f64);
        }
        let out = e.finish(SimTime::from_secs(6));
        let results = &out[&q].results;
        // Windows (0,2], (2,4], (4,6]: last samples are 1, 3, 5.
        assert_eq!(results.iter().map(|&(_, v)| v).collect::<Vec<_>>(), vec![1.0, 3.0, 5.0]);
        assert_eq!(results[0].0, SimTime::from_secs(2));
    }

    #[test]
    fn aggregates_compute_correctly() {
        for (agg, expected) in [
            (Aggregate::Avg, 2.0),
            (Aggregate::Min, 1.0),
            (Aggregate::Max, 3.0),
            (Aggregate::Last, 3.0),
        ] {
            let mut e = QueryEngine::new();
            let q = e.register(Query { interval: secs(10), aggregate: agg });
            for (t, v) in [(1u64, 1.0f64), (2, 2.0), (3, 3.0)] {
                e.ingest(SimTime::from_secs(t), v);
            }
            let out = e.finish(SimTime::from_secs(10));
            assert_eq!(out[&q].results, vec![(SimTime::from_secs(10), expected)], "{agg:?}");
        }
    }

    #[test]
    fn empty_window_emits_nothing() {
        let mut e = QueryEngine::new();
        let q = e.register(Query::latest_every(secs(1)));
        e.ingest(SimTime::from_secs(0), 5.0);
        // No samples in windows 2..5.
        let out = e.finish(SimTime::from_secs(5));
        assert_eq!(out[&q].results.len(), 1);
    }

    #[test]
    fn queries_subsample_a_shared_stream_independently() {
        let mut e = QueryEngine::new();
        let fast = e.register(Query::latest_every(secs(1)));
        let slow = e.register(Query::latest_every(secs(5)));
        assert_eq!(e.shared_acquisition_interval(), Some(secs(1)));
        for t in 0..10u64 {
            e.ingest(SimTime::from_secs(t), t as f64);
        }
        let out = e.finish(SimTime::from_secs(10));
        assert_eq!(out[&fast].results.len(), 10);
        assert_eq!(out[&slow].results.len(), 2);
    }

    #[test]
    fn sharing_saves_sensor_transmissions() {
        // 8 identical 1 Hz queries for an hour.
        let queries = vec![Query::latest_every(secs(1)); 8];
        let cmp = compare_sharing(&queries, SimTime::from_secs(3600));
        assert_eq!(cmp.sensor_tx_shared, 3600);
        assert_eq!(cmp.sensor_tx_per_query, 8 * 3600);
        assert!(cmp.sensor_tx_per_query / cmp.sensor_tx_shared == 8);
    }

    #[test]
    fn sharing_win_grows_with_query_count() {
        let mut prev_ratio = 0.0;
        for n in [1usize, 2, 8, 64] {
            let queries = vec![Query::latest_every(secs(2)); n];
            let cmp = compare_sharing(&queries, SimTime::from_secs(600));
            let ratio = cmp.sensor_tx_per_query as f64 / cmp.sensor_tx_shared.max(1) as f64;
            assert!(ratio >= prev_ratio, "n={n}");
            prev_ratio = ratio;
        }
        assert!(prev_ratio >= 60.0);
    }

    #[test]
    fn heterogeneous_intervals_share_at_the_fastest() {
        let queries = vec![
            Query::latest_every(secs(1)),
            Query::latest_every(secs(10)),
            Query::latest_every(secs(60)),
        ];
        let cmp = compare_sharing(&queries, SimTime::from_secs(600));
        assert_eq!(cmp.sensor_tx_shared, 600, "driven by the 1s query");
        assert_eq!(cmp.sensor_tx_per_query, 600 + 60 + 10);
    }

    #[test]
    fn no_queries_no_traffic() {
        let cmp = compare_sharing(&[], SimTime::from_secs(600));
        assert_eq!(cmp.sensor_tx_shared, 0);
        assert_eq!(cmp.sensor_tx_per_query, 0);
    }

    #[test]
    fn samples_counted() {
        let mut e = QueryEngine::new();
        e.register(Query::latest_every(secs(1)));
        e.ingest(SimTime::ZERO, 0.0);
        e.ingest(SimTime::from_secs(1), 1.0);
        assert_eq!(e.samples_ingested(), 2);
    }
}
