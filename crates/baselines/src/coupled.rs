//! CORIE-style tightly-coupled consumer delivery (Steere et al.,
//! MobiCom'00) as a baseline deployment model.
//!
//! CORIE's environmental observation system assumes "at most a few
//! competing applications will run concurrently", which the paper reads
//! as "a close coupling between the output data and the applications, a
//! shortcoming that Garnet is designed to address" (§7).
//!
//! The coupled model: every consumer arranges its own feed from the
//! sensor — the sensor (or its gateway, charged to the sensor-side
//! budget) transmits once per consumer per sample, and adding a consumer
//! means touching the sensor-side configuration. The decoupled (Garnet)
//! model: the sensor transmits once per sample; the middleware fans out
//! on the fixed network, and adding a consumer is a subscription no one
//! else notices.

use garnet_simkit::{SimDuration, SimTime};

/// Cost report for serving `consumers` over `horizon` at one sample
/// interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CouplingReport {
    /// Number of consumer applications.
    pub consumers: usize,
    /// Sensor-side radio transmissions.
    pub sensor_tx: u64,
    /// Fixed-network deliveries.
    pub fixednet_msgs: u64,
    /// Sensor-side reconfigurations needed to get here (each one a
    /// maintenance visit or firmware touch in the coupled model).
    pub sensor_reconfigurations: u64,
}

fn samples(interval: SimDuration, horizon: SimTime) -> u64 {
    if interval.is_zero() {
        0
    } else {
        horizon.as_micros() / interval.as_micros().max(1)
    }
}

/// The tightly-coupled model: per-consumer feeds from the sensor side.
pub fn coupled_cost(consumers: usize, interval: SimDuration, horizon: SimTime) -> CouplingReport {
    let per_feed = samples(interval, horizon);
    CouplingReport {
        consumers,
        sensor_tx: per_feed * consumers as u64,
        fixednet_msgs: per_feed * consumers as u64,
        sensor_reconfigurations: consumers as u64,
    }
}

/// The decoupled (Garnet) model: one uplink, middleware fan-out.
pub fn decoupled_cost(consumers: usize, interval: SimDuration, horizon: SimTime) -> CouplingReport {
    let uplink = samples(interval, horizon);
    CouplingReport {
        consumers,
        sensor_tx: uplink,
        fixednet_msgs: uplink * consumers as u64,
        sensor_reconfigurations: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: SimTime = SimTime::from_secs(3600);
    const SEC: SimDuration = SimDuration::from_secs(1);

    #[test]
    fn coupled_sensor_cost_scales_with_consumers() {
        let few = coupled_cost(2, SEC, HOUR);
        let many = coupled_cost(50, SEC, HOUR);
        assert_eq!(few.sensor_tx, 2 * 3600);
        assert_eq!(many.sensor_tx, 50 * 3600);
        assert_eq!(many.sensor_reconfigurations, 50);
    }

    #[test]
    fn decoupled_sensor_cost_is_flat() {
        let few = decoupled_cost(2, SEC, HOUR);
        let many = decoupled_cost(50, SEC, HOUR);
        assert_eq!(few.sensor_tx, 3600);
        assert_eq!(many.sensor_tx, 3600);
        assert_eq!(many.sensor_reconfigurations, 0);
    }

    #[test]
    fn fixed_network_fanout_is_identical() {
        // Both models deliver every consumer its data; the difference is
        // *where* the multiplication happens.
        let c = coupled_cost(10, SEC, HOUR);
        let d = decoupled_cost(10, SEC, HOUR);
        assert_eq!(c.fixednet_msgs, d.fixednet_msgs);
    }

    #[test]
    fn models_agree_for_a_single_consumer() {
        // CORIE's operating point: with one (or "a few") applications the
        // coupling costs nothing extra.
        let c = coupled_cost(1, SEC, HOUR);
        let d = decoupled_cost(1, SEC, HOUR);
        assert_eq!(c.sensor_tx, d.sensor_tx);
    }

    #[test]
    fn zero_interval_degenerates_gracefully() {
        let c = coupled_cost(5, SimDuration::ZERO, HOUR);
        assert_eq!(c.sensor_tx, 0);
    }
}
