//! Baseline comparators from the paper's related-work section (§7).
//!
//! The paper positions Garnet against three systems; each module here
//! implements the relevant mechanism so the benchmark suite can
//! regenerate the comparison:
//!
//! * [`retri`] — Elson & Estrin's Random Ephemeral TRansaction
//!   Identifiers: fewer identifier bits per message at the cost of
//!   collisions that grow with transaction density. The paper argues the
//!   ephemeral ids are "inappropriate" for Garnet's stable StreamIDs;
//!   experiment E6 quantifies both sides.
//! * [`querydb`] — a miniature Fjords-style (Madden & Franklin)
//!   continuous-query engine with and without a shared sensor proxy;
//!   experiment E7 reproduces "the sharing resulted in significant
//!   improvements to their ability to handle simultaneous queries".
//! * [`coupled`] — CORIE-style (Steere et al.) tightly-coupled delivery,
//!   where "at most a few competing applications" connect directly to
//!   the sensor output; experiment E8 shows where the coupling breaks
//!   down as consumers multiply.

pub mod coupled;
pub mod querydb;
pub mod retri;

pub use coupled::{coupled_cost, decoupled_cost, CouplingReport};
pub use querydb::{Aggregate, Query, QueryEngine, SharingComparison};
pub use retri::{analytic_collision_probability, RetriScheme, SchemeCost};
