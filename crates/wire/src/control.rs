//! Control-plane messages: stream update requests and acknowledgements.
//!
//! "Consumer processes send messages along a return actuation path made
//! available for control messages to be routed to the target sensor in
//! the wireless network" (§4.1). The Actuation Service stamps requests
//! with timestamps and checksums (§4.2) before the Message Replicator
//! broadcasts them through the transmitters covering the target's
//! expected location area.
//!
//! Control messages are rarer than data messages but change sensor
//! behaviour, so they carry a CRC-32 trailer (vs CRC-16 on data).

use core::fmt;
use serde::{Deserialize, Serialize};

use crate::crc::crc32;
use crate::error::WireError;
use crate::ids::{RequestId, SensorId, StreamId, StreamIndex};

/// A circular geographic target area, in the fixed network's shared
/// coordinate frame (metres).
///
/// Used when the Location Service can only bound a sensor's position:
/// the Message Replicator broadcasts through every transmitter covering
/// the disk.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TargetArea {
    /// Centre x-coordinate (m).
    pub x: f32,
    /// Centre y-coordinate (m).
    pub y: f32,
    /// Radius (m).
    pub radius: f32,
}

impl TargetArea {
    /// Creates an area; the radius is clamped to be non-negative.
    pub fn new(x: f32, y: f32, radius: f32) -> Self {
        TargetArea { x, y, radius: radius.max(0.0) }
    }
}

/// Where a stream-update request should be delivered.
///
/// Addressing is *location-neutral* for the consumer (§4.2): consumers
/// name sensors or streams; the middleware resolves position.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ActuationTarget {
    /// One sensor node (all its streams).
    Sensor(SensorId),
    /// One specific stream of one sensor.
    Stream(StreamId),
    /// Every receive-capable sensor inside an area — used when identity
    /// is unknown or for field-wide reconfiguration.
    Area(TargetArea),
}

/// Commands a consumer may ask a sensor to apply.
///
/// The set mirrors the behaviours the paper's middleware mediates:
/// reporting rate, stream enable/disable, duty cycling and end-to-end
/// payload encryption. Unknown commands received by a simple sensor are
/// acknowledged with [`AckStatus::Unsupported`] — "simple and
/// sophisticated sensors coexist" (§5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SensorCommand {
    /// Set the reporting interval of one internal stream, in
    /// milliseconds.
    SetReportInterval {
        /// Which internal stream.
        stream: StreamIndex,
        /// New interval between reports (ms); must be non-zero.
        interval_ms: u32,
    },
    /// Begin publishing an internal stream.
    EnableStream {
        /// Which internal stream.
        stream: StreamIndex,
    },
    /// Stop publishing an internal stream.
    DisableStream {
        /// Which internal stream.
        stream: StreamIndex,
    },
    /// Set the radio duty cycle in permille (0–1000).
    SetDutyCycle {
        /// Active fraction, permille.
        permille: u16,
    },
    /// Sleep (radio and sensing off) for a period, then resume.
    Sleep {
        /// Sleep length (ms).
        duration_ms: u32,
    },
    /// No-op that solicits an acknowledgement (liveness probe).
    Ping,
    /// Enable or disable end-to-end payload encryption on a stream.
    SetEncryption {
        /// Which internal stream.
        stream: StreamIndex,
        /// Whether payloads should be encrypted.
        enabled: bool,
    },
}

impl SensorCommand {
    const TAG_SET_REPORT_INTERVAL: u8 = 0;
    const TAG_ENABLE: u8 = 1;
    const TAG_DISABLE: u8 = 2;
    const TAG_DUTY_CYCLE: u8 = 3;
    const TAG_SLEEP: u8 = 4;
    const TAG_PING: u8 = 5;
    const TAG_ENCRYPTION: u8 = 6;

    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            SensorCommand::SetReportInterval { stream, interval_ms } => {
                out.push(Self::TAG_SET_REPORT_INTERVAL);
                out.push(stream.as_u8());
                out.extend_from_slice(&interval_ms.to_be_bytes());
            }
            SensorCommand::EnableStream { stream } => {
                out.push(Self::TAG_ENABLE);
                out.push(stream.as_u8());
            }
            SensorCommand::DisableStream { stream } => {
                out.push(Self::TAG_DISABLE);
                out.push(stream.as_u8());
            }
            SensorCommand::SetDutyCycle { permille } => {
                out.push(Self::TAG_DUTY_CYCLE);
                out.extend_from_slice(&permille.to_be_bytes());
            }
            SensorCommand::Sleep { duration_ms } => {
                out.push(Self::TAG_SLEEP);
                out.extend_from_slice(&duration_ms.to_be_bytes());
            }
            SensorCommand::Ping => out.push(Self::TAG_PING),
            SensorCommand::SetEncryption { stream, enabled } => {
                out.push(Self::TAG_ENCRYPTION);
                out.push(stream.as_u8());
                out.push(u8::from(enabled));
            }
        }
    }

    fn decode(input: &[u8]) -> Result<(SensorCommand, usize), WireError> {
        let need = |n: usize| -> Result<(), WireError> {
            if input.len() < n {
                Err(WireError::Truncated { needed: n, have: input.len() })
            } else {
                Ok(())
            }
        };
        need(1)?;
        match input[0] {
            Self::TAG_SET_REPORT_INTERVAL => {
                need(6)?;
                Ok((
                    SensorCommand::SetReportInterval {
                        stream: StreamIndex::new(input[1]),
                        interval_ms: u32::from_be_bytes([input[2], input[3], input[4], input[5]]),
                    },
                    6,
                ))
            }
            Self::TAG_ENABLE => {
                need(2)?;
                Ok((SensorCommand::EnableStream { stream: StreamIndex::new(input[1]) }, 2))
            }
            Self::TAG_DISABLE => {
                need(2)?;
                Ok((SensorCommand::DisableStream { stream: StreamIndex::new(input[1]) }, 2))
            }
            Self::TAG_DUTY_CYCLE => {
                need(3)?;
                Ok((
                    SensorCommand::SetDutyCycle {
                        permille: u16::from_be_bytes([input[1], input[2]]),
                    },
                    3,
                ))
            }
            Self::TAG_SLEEP => {
                need(5)?;
                Ok((
                    SensorCommand::Sleep {
                        duration_ms: u32::from_be_bytes([input[1], input[2], input[3], input[4]]),
                    },
                    5,
                ))
            }
            Self::TAG_PING => Ok((SensorCommand::Ping, 1)),
            Self::TAG_ENCRYPTION => {
                need(3)?;
                Ok((
                    SensorCommand::SetEncryption {
                        stream: StreamIndex::new(input[1]),
                        enabled: input[2] != 0,
                    },
                    3,
                ))
            }
            other => Err(WireError::UnknownCommand(other)),
        }
    }
}

impl fmt::Display for SensorCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensorCommand::SetReportInterval { stream, interval_ms } => {
                write!(f, "set-interval(stream {stream}, {interval_ms}ms)")
            }
            SensorCommand::EnableStream { stream } => write!(f, "enable(stream {stream})"),
            SensorCommand::DisableStream { stream } => write!(f, "disable(stream {stream})"),
            SensorCommand::SetDutyCycle { permille } => write!(f, "duty-cycle({permille}‰)"),
            SensorCommand::Sleep { duration_ms } => write!(f, "sleep({duration_ms}ms)"),
            SensorCommand::Ping => write!(f, "ping"),
            SensorCommand::SetEncryption { stream, enabled } => {
                write!(f, "encryption(stream {stream}, {enabled})")
            }
        }
    }
}

/// A stream update request: the unit of actuation flowing from consumers
/// through Resource Manager → Actuation Service → Message Replicator →
/// Transmitters → sensor.
///
/// # Example
///
/// ```
/// use garnet_wire::{ActuationTarget, SensorCommand, SensorId, StreamIndex,
///                   StreamUpdateRequest, RequestId};
///
/// # fn main() -> Result<(), garnet_wire::WireError> {
/// let req = StreamUpdateRequest {
///     request_id: RequestId::new(9),
///     target: ActuationTarget::Sensor(SensorId::new(4)?),
///     command: SensorCommand::SetReportInterval {
///         stream: StreamIndex::new(0),
///         interval_ms: 500,
///     },
///     issued_at_us: 1_000_000,
///     priority: 3,
/// };
/// let bytes = req.encode_to_vec();
/// let (back, _) = StreamUpdateRequest::decode(&bytes)?;
/// assert_eq!(back, req);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamUpdateRequest {
    /// Identifier used to correlate sensor acknowledgements; "loosely
    /// comparable to a RETRI" (§7).
    pub request_id: RequestId,
    /// Where the command should land.
    pub target: ActuationTarget,
    /// What the sensor should do.
    pub command: SensorCommand,
    /// Timestamp applied by the Actuation Service (µs of middleware
    /// time); sensors ignore stale requests superseded by newer ones.
    pub issued_at_us: u64,
    /// Consumer priority as granted by the Resource Manager (0 = lowest).
    pub priority: u8,
}

const REQUEST_TYPE: u8 = 0x01;
const ACK_TYPE: u8 = 0x02;

const TARGET_SENSOR: u8 = 0;
const TARGET_STREAM: u8 = 1;
const TARGET_AREA: u8 = 2;

impl StreamUpdateRequest {
    /// Encodes into a fresh byte vector with a CRC-32 trailer.
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.push(REQUEST_TYPE);
        out.extend_from_slice(&self.request_id.as_u32().to_be_bytes());
        out.extend_from_slice(&self.issued_at_us.to_be_bytes());
        out.push(self.priority);
        match self.target {
            ActuationTarget::Sensor(id) => {
                out.push(TARGET_SENSOR);
                out.extend_from_slice(&id.as_u32().to_be_bytes());
            }
            ActuationTarget::Stream(id) => {
                out.push(TARGET_STREAM);
                out.extend_from_slice(&id.to_raw().to_be_bytes());
            }
            ActuationTarget::Area(a) => {
                out.push(TARGET_AREA);
                out.extend_from_slice(&a.x.to_be_bytes());
                out.extend_from_slice(&a.y.to_be_bytes());
                out.extend_from_slice(&a.radius.to_be_bytes());
            }
        }
        self.command.encode(&mut out);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    /// Decodes a request, returning it and the bytes consumed.
    ///
    /// # Errors
    ///
    /// Truncation, unknown discriminants, or a CRC-32 mismatch.
    pub fn decode(input: &[u8]) -> Result<(StreamUpdateRequest, usize), WireError> {
        let need = |n: usize| -> Result<(), WireError> {
            if input.len() < n {
                Err(WireError::Truncated { needed: n, have: input.len() })
            } else {
                Ok(())
            }
        };
        need(15)?;
        if input[0] != REQUEST_TYPE {
            return Err(WireError::UnknownCommand(input[0]));
        }
        let request_id =
            RequestId::new(u32::from_be_bytes([input[1], input[2], input[3], input[4]]));
        let issued_at_us = u64::from_be_bytes([
            input[5], input[6], input[7], input[8], input[9], input[10], input[11], input[12],
        ]);
        let priority = input[13];
        let mut off = 14;
        let target = match input[off] {
            TARGET_SENSOR => {
                need(off + 5)?;
                let raw = u32::from_be_bytes([
                    input[off + 1],
                    input[off + 2],
                    input[off + 3],
                    input[off + 4],
                ]);
                off += 5;
                ActuationTarget::Sensor(SensorId::new(raw)?)
            }
            TARGET_STREAM => {
                need(off + 5)?;
                let raw = u32::from_be_bytes([
                    input[off + 1],
                    input[off + 2],
                    input[off + 3],
                    input[off + 4],
                ]);
                off += 5;
                ActuationTarget::Stream(StreamId::from_raw(raw))
            }
            TARGET_AREA => {
                need(off + 13)?;
                let f = |i: usize| {
                    f32::from_be_bytes([input[i], input[i + 1], input[i + 2], input[i + 3]])
                };
                let area = TargetArea { x: f(off + 1), y: f(off + 5), radius: f(off + 9) };
                off += 13;
                ActuationTarget::Area(area)
            }
            other => return Err(WireError::UnknownTarget(other)),
        };
        let (command, used) = SensorCommand::decode(&input[off..])?;
        off += used;
        need(off + 4)?;
        let expected =
            u32::from_be_bytes([input[off], input[off + 1], input[off + 2], input[off + 3]]);
        let actual = crc32(&input[..off]);
        if expected != actual {
            return Err(WireError::BadChecksum { expected, actual });
        }
        Ok((StreamUpdateRequest { request_id, target, command, issued_at_us, priority }, off + 4))
    }

    /// Total encoded size in bytes (radio cost of the actuation path).
    pub fn encoded_len(&self) -> usize {
        self.encode_to_vec().len()
    }
}

/// Outcome reported by a sensor for a stream update request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AckStatus {
    /// The command was applied.
    Applied,
    /// The sensor does not implement this command (simple device).
    Unsupported,
    /// The command violated a device-local constraint.
    ConstraintViolation,
    /// The command was accepted but will take effect later (e.g. after a
    /// sleep period ends).
    Deferred,
}

impl AckStatus {
    fn to_byte(self) -> u8 {
        match self {
            AckStatus::Applied => 0,
            AckStatus::Unsupported => 1,
            AckStatus::ConstraintViolation => 2,
            AckStatus::Deferred => 3,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(AckStatus::Applied),
            1 => Ok(AckStatus::Unsupported),
            2 => Ok(AckStatus::ConstraintViolation),
            3 => Ok(AckStatus::Deferred),
            other => Err(WireError::UnknownAckStatus(other)),
        }
    }
}

/// A standalone acknowledgement message for a stream update request.
///
/// Receive-capable sensors usually piggy-back acks on their next data
/// message (the `UPDATE_ACK` header field); this standalone form exists
/// for sensors whose streams are disabled or sleeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamUpdateAck {
    /// The request being acknowledged.
    pub request_id: RequestId,
    /// The sensor acknowledging.
    pub sensor: SensorId,
    /// What happened.
    pub status: AckStatus,
}

impl StreamUpdateAck {
    /// Encodes into a fresh byte vector with a CRC-32 trailer.
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(14);
        out.push(ACK_TYPE);
        out.extend_from_slice(&self.request_id.as_u32().to_be_bytes());
        out.extend_from_slice(&self.sensor.as_u32().to_be_bytes());
        out.push(self.status.to_byte());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    /// Decodes an acknowledgement, returning it and the bytes consumed.
    ///
    /// # Errors
    ///
    /// Truncation, unknown discriminants, or a CRC-32 mismatch.
    pub fn decode(input: &[u8]) -> Result<(StreamUpdateAck, usize), WireError> {
        const LEN: usize = 14;
        if input.len() < LEN {
            return Err(WireError::Truncated { needed: LEN, have: input.len() });
        }
        if input[0] != ACK_TYPE {
            return Err(WireError::UnknownCommand(input[0]));
        }
        let request_id =
            RequestId::new(u32::from_be_bytes([input[1], input[2], input[3], input[4]]));
        let sensor = SensorId::new(u32::from_be_bytes([input[5], input[6], input[7], input[8]]))?;
        let status = AckStatus::from_byte(input[9])?;
        let expected = u32::from_be_bytes([input[10], input[11], input[12], input[13]]);
        let actual = crc32(&input[..10]);
        if expected != actual {
            return Err(WireError::BadChecksum { expected, actual });
        }
        Ok((StreamUpdateAck { request_id, sensor, status }, LEN))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request(target: ActuationTarget, command: SensorCommand) -> StreamUpdateRequest {
        StreamUpdateRequest {
            request_id: RequestId::new(0xDEAD_0001),
            target,
            command,
            issued_at_us: 123_456_789,
            priority: 7,
        }
    }

    #[test]
    fn request_round_trip_all_targets() {
        let targets = [
            ActuationTarget::Sensor(SensorId::new(42).unwrap()),
            ActuationTarget::Stream(StreamId::from_raw(0x0102_0304)),
            ActuationTarget::Area(TargetArea::new(10.5, -3.25, 100.0)),
        ];
        for t in targets {
            let req = sample_request(t, SensorCommand::Ping);
            let bytes = req.encode_to_vec();
            let (back, used) = StreamUpdateRequest::decode(&bytes).unwrap();
            assert_eq!(back, req);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn request_round_trip_all_commands() {
        let commands = [
            SensorCommand::SetReportInterval { stream: StreamIndex::new(3), interval_ms: 250 },
            SensorCommand::EnableStream { stream: StreamIndex::new(0) },
            SensorCommand::DisableStream { stream: StreamIndex::new(255) },
            SensorCommand::SetDutyCycle { permille: 125 },
            SensorCommand::Sleep { duration_ms: 60_000 },
            SensorCommand::Ping,
            SensorCommand::SetEncryption { stream: StreamIndex::new(9), enabled: true },
            SensorCommand::SetEncryption { stream: StreamIndex::new(9), enabled: false },
        ];
        for c in commands {
            let req = sample_request(ActuationTarget::Sensor(SensorId::new(1).unwrap()), c);
            let bytes = req.encode_to_vec();
            let (back, _) = StreamUpdateRequest::decode(&bytes).unwrap();
            assert_eq!(back.command, c);
        }
    }

    #[test]
    fn request_corruption_detected() {
        let req = sample_request(
            ActuationTarget::Stream(StreamId::from_raw(55)),
            SensorCommand::SetDutyCycle { permille: 500 },
        );
        let clean = req.encode_to_vec();
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x01;
            match StreamUpdateRequest::decode(&bad) {
                Err(_) => {}
                Ok((r, _)) => assert_eq!(r, req, "byte {i} flip produced different request"),
            }
        }
    }

    #[test]
    fn request_truncation_detected() {
        let req =
            sample_request(ActuationTarget::Sensor(SensorId::new(1).unwrap()), SensorCommand::Ping);
        let bytes = req.encode_to_vec();
        for cut in 0..bytes.len() {
            assert!(StreamUpdateRequest::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn ack_round_trip() {
        for status in [
            AckStatus::Applied,
            AckStatus::Unsupported,
            AckStatus::ConstraintViolation,
            AckStatus::Deferred,
        ] {
            let ack = StreamUpdateAck {
                request_id: RequestId::new(88),
                sensor: SensorId::new(0x00FF_FFFF).unwrap(),
                status,
            };
            let bytes = ack.encode_to_vec();
            let (back, used) = StreamUpdateAck::decode(&bytes).unwrap();
            assert_eq!(back, ack);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn ack_rejects_bad_status_and_type() {
        let ack = StreamUpdateAck {
            request_id: RequestId::new(1),
            sensor: SensorId::new(1).unwrap(),
            status: AckStatus::Applied,
        };
        let mut bytes = ack.encode_to_vec();
        bytes[0] = 0x7F;
        assert!(matches!(StreamUpdateAck::decode(&bytes), Err(WireError::UnknownCommand(0x7F))));
    }

    #[test]
    fn negative_radius_clamped() {
        assert_eq!(TargetArea::new(0.0, 0.0, -5.0).radius, 0.0);
    }

    #[test]
    fn command_display_is_informative() {
        let s = SensorCommand::SetReportInterval { stream: StreamIndex::new(2), interval_ms: 100 }
            .to_string();
        assert!(s.contains("100ms"));
        assert_eq!(SensorCommand::Ping.to_string(), "ping");
    }

    #[test]
    fn unknown_command_tag_rejected() {
        let req =
            sample_request(ActuationTarget::Sensor(SensorId::new(1).unwrap()), SensorCommand::Ping);
        let mut bytes = req.encode_to_vec();
        // Command tag sits after type(1)+reqid(4)+ts(8)+prio(1)+target(1+4).
        bytes[19] = 200;
        assert!(matches!(
            StreamUpdateRequest::decode(&bytes),
            Err(WireError::UnknownCommand(200)) | Err(WireError::BadChecksum { .. })
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_target() -> impl Strategy<Value = ActuationTarget> {
        prop_oneof![
            (0u32..=0x00FF_FFFF).prop_map(|s| ActuationTarget::Sensor(SensorId::new(s).unwrap())),
            any::<u32>().prop_map(|r| ActuationTarget::Stream(StreamId::from_raw(r))),
            (-1e4f32..1e4, -1e4f32..1e4, 0f32..1e4)
                .prop_map(|(x, y, r)| ActuationTarget::Area(TargetArea::new(x, y, r))),
        ]
    }

    fn arb_command() -> impl Strategy<Value = SensorCommand> {
        prop_oneof![
            (any::<u8>(), 1u32..1_000_000).prop_map(|(s, i)| SensorCommand::SetReportInterval {
                stream: StreamIndex::new(s),
                interval_ms: i
            }),
            any::<u8>().prop_map(|s| SensorCommand::EnableStream { stream: StreamIndex::new(s) }),
            any::<u8>().prop_map(|s| SensorCommand::DisableStream { stream: StreamIndex::new(s) }),
            (0u16..=1000).prop_map(|p| SensorCommand::SetDutyCycle { permille: p }),
            any::<u32>().prop_map(|d| SensorCommand::Sleep { duration_ms: d }),
            Just(SensorCommand::Ping),
            (any::<u8>(), any::<bool>()).prop_map(|(s, e)| SensorCommand::SetEncryption {
                stream: StreamIndex::new(s),
                enabled: e
            }),
        ]
    }

    proptest! {
        #[test]
        fn request_round_trip(
            id in any::<u32>(),
            target in arb_target(),
            command in arb_command(),
            ts in any::<u64>(),
            prio in any::<u8>(),
        ) {
            let req = StreamUpdateRequest {
                request_id: RequestId::new(id),
                target,
                command,
                issued_at_us: ts,
                priority: prio,
            };
            let bytes = req.encode_to_vec();
            let (back, used) = StreamUpdateRequest::decode(&bytes).unwrap();
            prop_assert_eq!(back, req);
            prop_assert_eq!(used, bytes.len());
        }

        #[test]
        fn request_bit_flip_never_misdecodes(
            target in arb_target(),
            command in arb_command(),
            byte in any::<prop::sample::Index>(),
            bit in 0u8..8,
        ) {
            let req = StreamUpdateRequest {
                request_id: RequestId::new(1),
                target,
                command,
                issued_at_us: 42,
                priority: 0,
            };
            let clean = req.encode_to_vec();
            let mut bad = clean.clone();
            let i = byte.index(bad.len());
            bad[i] ^= 1 << bit;
            if let Ok((r, _)) = StreamUpdateRequest::decode(&bad) {
                prop_assert_eq!(r, req);
            }
        }
    }
}
