//! End-to-end payload encryption.
//!
//! "The payload field is not interpreted and is opaque to the Garnet
//! infrastructure. This provides a basic level of security and
//! contributes to our security model" (§4.3); the conclusion lists "a
//! high-level abstraction of data streams supporting end-to-end
//! encryption" among Garnet's novel features.
//!
//! Because the sanctioned dependency set contains no cryptography crates,
//! this module implements XTEA (Needham & Wheeler's 64-bit block cipher,
//! 128-bit key, 64 Feistel rounds) from the published reference code, in
//! CTR mode with a per-message nonce derived from `(StreamId, SequenceNumber)`,
//! plus a CBC-MAC truncated to 8 bytes for integrity. XTEA is a
//! deliberate fit for the paper's setting — it was designed for exactly
//! the memory-starved embedded devices WSN nodes are — though a modern
//! deployment would swap in an AEAD; the sealed interface
//! ([`PayloadKey::seal`]/[`PayloadKey::open`]) makes that a local change.
//!
//! The CTR keystream and the MAC use independent subkeys derived from the
//! master key so the encrypt-then-MAC composition is sound.

use core::fmt;

use crate::error::WireError;
use crate::ids::{SequenceNumber, StreamId};

const ROUNDS: u32 = 64;
const DELTA: u32 = 0x9E37_79B9;

/// Length of the appended authentication tag.
pub const TAG_LEN: usize = 8;

/// Encrypts one 64-bit block with XTEA.
fn xtea_encrypt_block(key: &[u32; 4], block: u64) -> u64 {
    let mut v0 = (block >> 32) as u32;
    let mut v1 = block as u32;
    let mut sum: u32 = 0;
    for _ in 0..ROUNDS / 2 {
        v0 = v0.wrapping_add(
            (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                ^ (sum.wrapping_add(key[(sum & 3) as usize])),
        );
        sum = sum.wrapping_add(DELTA);
        v1 = v1.wrapping_add(
            (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                ^ (sum.wrapping_add(key[((sum >> 11) & 3) as usize])),
        );
    }
    (u64::from(v0) << 32) | u64::from(v1)
}

/// Decrypts one 64-bit block with XTEA. CTR mode never decrypts blocks,
/// so this is exercised only by the cipher's own round-trip tests.
#[cfg(test)]
fn xtea_decrypt_block(key: &[u32; 4], block: u64) -> u64 {
    let mut v0 = (block >> 32) as u32;
    let mut v1 = block as u32;
    let mut sum: u32 = DELTA.wrapping_mul(ROUNDS / 2);
    for _ in 0..ROUNDS / 2 {
        v1 = v1.wrapping_sub(
            (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                ^ (sum.wrapping_add(key[((sum >> 11) & 3) as usize])),
        );
        sum = sum.wrapping_sub(DELTA);
        v0 = v0.wrapping_sub(
            (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                ^ (sum.wrapping_add(key[(sum & 3) as usize])),
        );
    }
    (u64::from(v0) << 32) | u64::from(v1)
}

/// A 128-bit symmetric key shared between a sensor (or its provisioner)
/// and the consumers entitled to read a stream.
///
/// # Example
///
/// ```
/// use garnet_wire::crypto::PayloadKey;
/// use garnet_wire::{SequenceNumber, StreamId};
///
/// let key = PayloadKey::from_bytes([7u8; 16]);
/// let stream = StreamId::from_raw(0x0000_0501);
/// let seq = SequenceNumber::new(9);
/// let sealed = key.seal(stream, seq, b"secret reading");
/// assert_ne!(&sealed[..14], b"secret reading"); // ciphertext differs
/// let opened = key.open(stream, seq, &sealed)?;
/// assert_eq!(opened, b"secret reading");
/// # Ok::<(), garnet_wire::WireError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct PayloadKey {
    enc: [u32; 4],
    mac: [u32; 4],
}

impl PayloadKey {
    /// Derives the working key pair from 16 key bytes.
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        let w = |i: usize| u32::from_be_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
        let master = [w(0), w(4), w(8), w(12)];
        // Derive independent subkeys by encrypting distinct constants.
        let derive = |label: u64| {
            let a = xtea_encrypt_block(&master, label);
            let b = xtea_encrypt_block(&master, label ^ 0xA5A5_A5A5_A5A5_A5A5);
            [(a >> 32) as u32, a as u32, (b >> 32) as u32, b as u32]
        };
        PayloadKey { enc: derive(1), mac: derive(2) }
    }

    /// The CTR nonce for a message: the stream id in the upper half and
    /// the sequence number below. Within one 64K sequence window a
    /// `(stream, seq)` pair is unique, matching the filtering service's
    /// duplicate-elimination window.
    fn nonce(stream: StreamId, seq: SequenceNumber) -> u64 {
        (u64::from(stream.to_raw()) << 32) | u64::from(seq.as_u16())
    }

    /// XORs the CTR keystream for `nonce` into `data` (encrypts or
    /// decrypts — CTR is an involution).
    fn ctr_xor(&self, nonce: u64, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(8).enumerate() {
            let ks = xtea_encrypt_block(&self.enc, nonce ^ ((i as u64) << 48)).to_be_bytes();
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }

    /// CBC-MAC over `nonce || data`, zero-padded to a block boundary,
    /// with the length mixed into the final block (fixes CBC-MAC's
    /// variable-length weakness for our framing).
    fn tag(&self, nonce: u64, data: &[u8]) -> [u8; TAG_LEN] {
        let mut state = xtea_encrypt_block(&self.mac, nonce);
        for chunk in data.chunks(8) {
            let mut block = [0u8; 8];
            block[..chunk.len()].copy_from_slice(chunk);
            state = xtea_encrypt_block(&self.mac, state ^ u64::from_be_bytes(block));
        }
        state = xtea_encrypt_block(&self.mac, state ^ (data.len() as u64));
        state.to_be_bytes()
    }

    /// Encrypts and authenticates `plaintext` for `(stream, seq)`,
    /// returning `ciphertext || tag` (`plaintext.len() + 8` bytes).
    pub fn seal(&self, stream: StreamId, seq: SequenceNumber, plaintext: &[u8]) -> Vec<u8> {
        let nonce = Self::nonce(stream, seq);
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        self.ctr_xor(nonce, &mut out);
        let tag = self.tag(nonce, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies and decrypts a sealed payload.
    ///
    /// # Errors
    ///
    /// [`WireError::AuthFailure`] if the payload is shorter than a tag or
    /// the tag does not verify (any tampering, or wrong key/stream/seq).
    pub fn open(
        &self,
        stream: StreamId,
        seq: SequenceNumber,
        sealed: &[u8],
    ) -> Result<Vec<u8>, WireError> {
        if sealed.len() < TAG_LEN {
            return Err(WireError::AuthFailure);
        }
        let nonce = Self::nonce(stream, seq);
        let (body, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expected = self.tag(nonce, body);
        // Constant-time-ish comparison (not strictly needed in simulation).
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(WireError::AuthFailure);
        }
        let mut out = body.to_vec();
        self.ctr_xor(nonce, &mut out);
        Ok(out)
    }
}

impl fmt::Debug for PayloadKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "PayloadKey(…)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> PayloadKey {
        PayloadKey::from_bytes(*b"0123456789abcdef")
    }

    fn stream() -> StreamId {
        StreamId::from_raw(0x00AA_BB01)
    }

    #[test]
    fn xtea_block_round_trips() {
        let k = [0x0123_4567, 0x89AB_CDEF, 0xFEDC_BA98, 0x7654_3210];
        for block in [0u64, 1, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
            let c = xtea_encrypt_block(&k, block);
            assert_ne!(c, block);
            assert_eq!(xtea_decrypt_block(&k, c), block);
        }
    }

    #[test]
    fn xtea_is_key_dependent() {
        let k1 = [1, 2, 3, 4];
        let k2 = [1, 2, 3, 5];
        assert_ne!(xtea_encrypt_block(&k1, 42), xtea_encrypt_block(&k2, 42));
    }

    #[test]
    fn seal_open_round_trip_various_lengths() {
        let key = key();
        for len in [0usize, 1, 7, 8, 9, 16, 63, 64, 65, 1000] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let sealed = key.seal(stream(), SequenceNumber::new(5), &plaintext);
            assert_eq!(sealed.len(), len + TAG_LEN);
            let opened = key.open(stream(), SequenceNumber::new(5), &sealed).unwrap();
            assert_eq!(opened, plaintext, "len={len}");
        }
    }

    #[test]
    fn tampering_is_rejected() {
        let key = key();
        let sealed = key.seal(stream(), SequenceNumber::new(1), b"water level 3.2m");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert_eq!(
                key.open(stream(), SequenceNumber::new(1), &bad),
                Err(WireError::AuthFailure),
                "tamper at byte {i} accepted"
            );
        }
    }

    #[test]
    fn wrong_context_is_rejected() {
        let key = key();
        let sealed = key.seal(stream(), SequenceNumber::new(1), b"data");
        // Wrong sequence number (replay into a different slot).
        assert!(key.open(stream(), SequenceNumber::new(2), &sealed).is_err());
        // Wrong stream (cross-stream replay).
        assert!(key
            .open(StreamId::from_raw(0x00AA_BB02), SequenceNumber::new(1), &sealed)
            .is_err());
        // Wrong key.
        let other = PayloadKey::from_bytes(*b"fedcba9876543210");
        assert!(other.open(stream(), SequenceNumber::new(1), &sealed).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let key = key();
        assert_eq!(key.open(stream(), SequenceNumber::ZERO, b"short"), Err(WireError::AuthFailure));
        assert_eq!(key.open(stream(), SequenceNumber::ZERO, b""), Err(WireError::AuthFailure));
    }

    #[test]
    fn ciphertexts_differ_across_messages() {
        let key = key();
        let a = key.seal(stream(), SequenceNumber::new(1), b"same plaintext");
        let b = key.seal(stream(), SequenceNumber::new(2), b"same plaintext");
        assert_ne!(a, b, "CTR nonce must vary with sequence number");
    }

    #[test]
    fn length_extension_of_zero_padding_rejected() {
        // Appending zero bytes to the plaintext must change the tag
        // (the length is mixed into the MAC).
        let key = key();
        let a = key.seal(stream(), SequenceNumber::new(3), b"abc");
        let b = key.seal(stream(), SequenceNumber::new(3), b"abc\0");
        assert_ne!(a[a.len() - TAG_LEN..], b[b.len() - TAG_LEN..]);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let s = format!("{:?}", key());
        assert!(!s.contains("0123"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn round_trip(
            keyb in any::<[u8; 16]>(),
            raw in any::<u32>(),
            seq in any::<u16>(),
            data in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let key = PayloadKey::from_bytes(keyb);
            let stream = StreamId::from_raw(raw);
            let sealed = key.seal(stream, SequenceNumber::new(seq), &data);
            prop_assert_eq!(key.open(stream, SequenceNumber::new(seq), &sealed).unwrap(), data);
        }

        #[test]
        fn single_bit_tamper_rejected(
            keyb in any::<[u8; 16]>(),
            data in proptest::collection::vec(any::<u8>(), 0..128),
            byte in any::<prop::sample::Index>(),
            bit in 0u8..8,
        ) {
            let key = PayloadKey::from_bytes(keyb);
            let stream = StreamId::from_raw(1);
            let mut sealed = key.seal(stream, SequenceNumber::ZERO, &data);
            let i = byte.index(sealed.len());
            sealed[i] ^= 1 << bit;
            prop_assert!(key.open(stream, SequenceNumber::ZERO, &sealed).is_err());
        }
    }
}
