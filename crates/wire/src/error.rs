//! Error types for encoding and decoding Garnet wire messages.

use core::fmt;

/// An error raised while constructing, encoding or decoding wire messages.
///
/// Every variant is actionable by the caller: truncation means "wait for
/// more bytes" when streaming, checksum and version errors mean "discard
/// the frame", and the construction errors indicate programmer mistakes
/// caught at the API boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The input ended before a complete message could be decoded.
    Truncated {
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The trailer checksum did not match the message contents.
    BadChecksum {
        /// Checksum carried by the message.
        expected: u32,
        /// Checksum recomputed over the received bytes.
        actual: u32,
    },
    /// The header carried a protocol version this implementation does not
    /// speak.
    UnsupportedVersion(u8),
    /// A payload larger than the 16-bit size field can describe.
    PayloadTooLarge(usize),
    /// A sensor identifier outside the 24-bit space.
    InvalidSensorId(u32),
    /// A control message carried an unknown command discriminant.
    UnknownCommand(u8),
    /// A control message carried an unknown target discriminant.
    UnknownTarget(u8),
    /// An acknowledgement status byte was not a known value.
    UnknownAckStatus(u8),
    /// Header flags and message body disagree (e.g. the update-ack flag is
    /// set but no acknowledgement field is present).
    FlagBodyMismatch(&'static str),
    /// An encrypted payload failed authentication (tampered, replayed
    /// into the wrong context, or wrong key).
    AuthFailure,
    /// A frame length prefix exceeded the decoder's configured maximum.
    FrameTooLong {
        /// Declared frame length.
        declared: usize,
        /// Maximum the decoder accepts.
        max: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated message: need {needed} bytes, have {have}")
            }
            WireError::BadChecksum { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: message carries {expected:#06x}, computed {actual:#06x}"
                )
            }
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::PayloadTooLarge(n) => {
                write!(f, "payload of {n} bytes exceeds the 64KiB wire limit")
            }
            WireError::InvalidSensorId(id) => {
                write!(f, "sensor id {id:#x} exceeds the 24-bit identifier space")
            }
            WireError::UnknownCommand(d) => write!(f, "unknown sensor command discriminant {d}"),
            WireError::UnknownTarget(d) => write!(f, "unknown actuation target discriminant {d}"),
            WireError::UnknownAckStatus(d) => write!(f, "unknown ack status byte {d}"),
            WireError::FlagBodyMismatch(what) => {
                write!(f, "header flags disagree with message body: {what}")
            }
            WireError::AuthFailure => write!(f, "payload authentication failed"),
            WireError::FrameTooLong { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds decoder maximum {max}")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<WireError> = vec![
            WireError::Truncated { needed: 9, have: 3 },
            WireError::BadChecksum { expected: 0xABCD, actual: 0x1234 },
            WireError::UnsupportedVersion(3),
            WireError::PayloadTooLarge(70_000),
            WireError::InvalidSensorId(0x0100_0000),
            WireError::UnknownCommand(250),
            WireError::UnknownTarget(9),
            WireError::UnknownAckStatus(7),
            WireError::FlagBodyMismatch("update-ack flag without ack field"),
            WireError::AuthFailure,
            WireError::FrameTooLong { declared: 1 << 20, max: 1 << 16 },
        ];
        for e in cases {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "message not lowercase: {s}");
            assert!(!s.ends_with('.'), "message has trailing punctuation: {s}");
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_error(WireError::UnsupportedVersion(2));
    }
}
