//! Cyclic redundancy checks used by the wire format.
//!
//! The paper omits checksums from Figure 2 "for simplicity" while noting
//! they are "the usual checksums associated with the data messages". We
//! use two standard polynomials, implemented from scratch (no external
//! crypto/CRC crates are in the sanctioned dependency set):
//!
//! * **CRC-16/CCITT-FALSE** (poly `0x1021`, init `0xFFFF`) on data
//!   messages — 2 bytes of trailer on a hot path handling every sensor
//!   reading.
//! * **CRC-32/ISO-HDLC** (reflected poly `0xEDB88320`) on control
//!   messages — actuation requests are rare but change sensor behaviour,
//!   justifying the stronger check (§4.2: the Actuation Service "processes
//!   the request with timestamps, and checksums").
//!
//! Both are table-driven; tables are built in `const` context so there is
//! no runtime initialisation.

/// Lookup table for CRC-16/CCITT-FALSE (polynomial 0x1021, MSB-first).
const CRC16_TABLE: [u16; 256] = {
    let mut table = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u16) << 8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x8000 != 0 { (crc << 1) ^ 0x1021 } else { crc << 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Lookup table for CRC-32/ISO-HDLC (reflected polynomial 0xEDB88320).
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Computes CRC-16/CCITT-FALSE over `data`.
///
/// # Example
///
/// ```
/// // The standard check value for "123456789".
/// assert_eq!(garnet_wire::crc::crc16(b"123456789"), 0x29B1);
/// ```
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in data {
        let idx = ((crc >> 8) ^ u16::from(b)) & 0xFF;
        crc = (crc << 8) ^ CRC16_TABLE[idx as usize];
    }
    crc
}

/// Computes CRC-32/ISO-HDLC (the ubiquitous "crc32") over `data`.
///
/// # Example
///
/// ```
/// // The standard check value for "123456789".
/// assert_eq!(garnet_wire::crc::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        let idx = (crc ^ u32::from(b)) & 0xFF;
        crc = (crc >> 8) ^ CRC32_TABLE[idx as usize];
    }
    !crc
}

/// An incremental CRC-16 for callers that produce bytes in pieces.
///
/// # Example
///
/// ```
/// use garnet_wire::crc::{crc16, Crc16};
///
/// let mut inc = Crc16::new();
/// inc.update(b"1234");
/// inc.update(b"56789");
/// assert_eq!(inc.finish(), crc16(b"123456789"));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Crc16 {
    state: u16,
}

impl Default for Crc16 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc16 {
    /// Starts a fresh computation.
    pub fn new() -> Self {
        Crc16 { state: 0xFFFF }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            let idx = ((self.state >> 8) ^ u16::from(b)) & 0xFF;
            self.state = (self.state << 8) ^ CRC16_TABLE[idx as usize];
        }
    }

    /// Returns the checksum of everything fed so far.
    pub fn finish(self) -> u16 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_known_vectors() {
        // CRC-16/CCITT-FALSE reference values.
        assert_eq!(crc16(b""), 0xFFFF);
        assert_eq!(crc16(b"123456789"), 0x29B1);
        assert_eq!(crc16(b"A"), 0xB915);
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc16_detects_single_bit_flips() {
        let data = b"garnet sensor payload".to_vec();
        let base = crc16(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc16(&corrupted), base, "undetected flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"stream update request body".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "undetected flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0u16..1000).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 7, 500, 999, 1000] {
            let mut inc = Crc16::new();
            inc.update(&data[..split]);
            inc.update(&data[split..]);
            assert_eq!(inc.finish(), crc16(&data), "split at {split}");
        }
    }

    #[test]
    fn crc16_is_order_sensitive() {
        assert_ne!(crc16(b"ab"), crc16(b"ba"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in any::<prop::sample::Index>()) {
            let k = if data.is_empty() { 0 } else { split.index(data.len()) };
            let mut inc = Crc16::new();
            inc.update(&data[..k]);
            inc.update(&data[k..]);
            prop_assert_eq!(inc.finish(), crc16(&data));
        }

        #[test]
        fn single_bit_flip_always_detected_crc16(data in proptest::collection::vec(any::<u8>(), 1..256), byte in any::<prop::sample::Index>(), bit in 0u8..8) {
            let mut corrupted = data.clone();
            let i = byte.index(data.len());
            corrupted[i] ^= 1 << bit;
            prop_assert_ne!(crc16(&corrupted), crc16(&data));
        }
    }
}
