//! Identifier newtypes for sensors, streams, sequence numbers and
//! actuation requests.
//!
//! The composite `StreamID` field of Figure 2 "implicitly identifies the
//! source of the message, while the end destinations are inferred" (§5,
//! *delayed delivery decision-making*). The 32-bit field splits as a
//! 24-bit [`SensorId`] and an 8-bit [`StreamIndex`], yielding the paper's
//! capacity claims of 16.7M sensors and 256 internal streams per sensor.
//!
//! Sequence numbers are 16-bit and therefore *wrap*: long-lived streams
//! exceed 64K messages quickly, so comparisons use RFC 1982 serial-number
//! arithmetic ([`SequenceNumber::serial_cmp`]), exactly as DNS and TCP do.

use core::fmt;
use serde::{Deserialize, Serialize};

use crate::error::WireError;

/// A 24-bit sensor (node) identifier: `0 ..= 16_777_215`.
///
/// The paper: "Our Java-based proof-of-concept implementation supports up
/// to 16.7M sensors".
///
/// # Example
///
/// ```
/// use garnet_wire::SensorId;
///
/// let id = SensorId::new(1_000_000)?;
/// assert_eq!(id.as_u32(), 1_000_000);
/// assert!(SensorId::new(0x0100_0000).is_err()); // 25 bits: rejected
/// # Ok::<(), garnet_wire::WireError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SensorId(u32);

impl SensorId {
    /// The largest valid sensor id (`2^24 - 1` = 16,777,215 — the paper's
    /// "16.7M sensors").
    pub const MAX: SensorId = SensorId(0x00FF_FFFF);

    /// Creates a sensor id, rejecting values that do not fit in 24 bits.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidSensorId`] if `raw > SensorId::MAX`.
    pub const fn new(raw: u32) -> Result<Self, WireError> {
        if raw > Self::MAX.0 {
            Err(WireError::InvalidSensorId(raw))
        } else {
            Ok(SensorId(raw))
        }
    }

    /// The identifier as a `u32` (always `<= 0x00FF_FFFF`).
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for SensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SensorId({:#08x})", self.0)
    }
}

impl fmt::Display for SensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{:06x}", self.0)
    }
}

impl TryFrom<u32> for SensorId {
    type Error = WireError;
    fn try_from(raw: u32) -> Result<Self, WireError> {
        SensorId::new(raw)
    }
}

impl From<SensorId> for u32 {
    fn from(id: SensorId) -> u32 {
        id.0
    }
}

/// An 8-bit internal stream index within one sensor: `0 ..= 255`.
///
/// The paper: "256 internal-streams/sensor". A multi-instrument node
/// (temperature, humidity, battery telemetry, …) publishes each reading
/// series under its own index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct StreamIndex(u8);

impl StreamIndex {
    /// The largest stream index (255; every `u8` is valid).
    pub const MAX: StreamIndex = StreamIndex(255);

    /// Creates a stream index; all 256 values are valid.
    pub const fn new(raw: u8) -> Self {
        StreamIndex(raw)
    }

    /// The index as a `u8`.
    pub const fn as_u8(self) -> u8 {
        self.0
    }
}

impl fmt::Debug for StreamIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StreamIndex({})", self.0)
    }
}

impl fmt::Display for StreamIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u8> for StreamIndex {
    fn from(raw: u8) -> Self {
        StreamIndex(raw)
    }
}

impl From<StreamIndex> for u8 {
    fn from(i: StreamIndex) -> u8 {
        i.0
    }
}

/// The composite 32-bit StreamID of Figure 2: a [`SensorId`] in the upper
/// 24 bits and a [`StreamIndex`] in the lower 8.
///
/// A `StreamId` names one logical data stream for its whole lifetime —
/// the property that makes RETRI-style ephemeral identifiers unsuitable
/// for Garnet (§7).
///
/// # Example
///
/// ```
/// use garnet_wire::{SensorId, StreamId, StreamIndex};
///
/// let s = StreamId::new(SensorId::new(7)?, StreamIndex::new(2));
/// assert_eq!(s.to_raw(), (7 << 8) | 2);
/// assert_eq!(StreamId::from_raw(s.to_raw()), s);
/// # Ok::<(), garnet_wire::WireError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StreamId {
    sensor: SensorId,
    index: StreamIndex,
}

impl StreamId {
    /// Combines a sensor id and a stream index.
    pub const fn new(sensor: SensorId, index: StreamIndex) -> Self {
        StreamId { sensor, index }
    }

    /// Reconstructs a stream id from its packed 32-bit wire form. Every
    /// `u32` is a valid packed stream id, so this is total.
    pub const fn from_raw(raw: u32) -> Self {
        StreamId { sensor: SensorId(raw >> 8), index: StreamIndex((raw & 0xFF) as u8) }
    }

    /// Packs into the 32-bit wire representation.
    pub const fn to_raw(self) -> u32 {
        (self.sensor.0 << 8) | self.index.0 as u32
    }

    /// The originating sensor.
    pub const fn sensor(self) -> SensorId {
        self.sensor
    }

    /// The internal stream index within the sensor.
    pub const fn index(self) -> StreamIndex {
        self.index
    }
}

impl fmt::Debug for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StreamId({}/{})", self.sensor, self.index)
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.sensor, self.index)
    }
}

/// A 16-bit wrapping sequence number with RFC 1982 serial arithmetic.
///
/// "Sequence or timing information is conveyed to allow messages to be
/// correctly ordered and duplicates removed" (§4.3). With only 64K values
/// the counter wraps within minutes at realistic rates, so ordering uses
/// serial-number comparison: `a` precedes `b` iff the signed 16-bit
/// distance from `a` to `b` is positive. Values exactly `2^15` apart are
/// incomparable ([`SequenceNumber::serial_cmp`] returns `None`).
///
/// # Example
///
/// ```
/// use garnet_wire::SequenceNumber;
///
/// let near_wrap = SequenceNumber::new(65_535);
/// let wrapped = near_wrap.next();
/// assert_eq!(wrapped, SequenceNumber::new(0));
/// assert!(wrapped.is_after(near_wrap)); // wraparound-aware ordering
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SequenceNumber(u16);

impl SequenceNumber {
    /// The zero sequence number (start of a stream).
    pub const ZERO: SequenceNumber = SequenceNumber(0);

    /// Creates a sequence number; every `u16` is valid.
    pub const fn new(raw: u16) -> Self {
        SequenceNumber(raw)
    }

    /// The raw 16-bit value.
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// The successor, wrapping `65535 -> 0`.
    pub const fn next(self) -> SequenceNumber {
        SequenceNumber(self.0.wrapping_add(1))
    }

    /// Advances by `n`, wrapping.
    pub const fn advance(self, n: u16) -> SequenceNumber {
        SequenceNumber(self.0.wrapping_add(n))
    }

    /// The signed serial distance from `self` to `other`, i.e. how far
    /// forward `other` is. Positive means `other` is newer. The value
    /// `i16::MIN` (distance exactly 2^15) is the ambiguous antipode.
    pub const fn distance_to(self, other: SequenceNumber) -> i16 {
        other.0.wrapping_sub(self.0) as i16
    }

    /// RFC 1982 comparison. `None` when the two values are exactly 2^15
    /// apart and therefore unordered.
    pub fn serial_cmp(self, other: SequenceNumber) -> Option<core::cmp::Ordering> {
        use core::cmp::Ordering;
        let d = self.distance_to(other);
        if d == 0 {
            Some(Ordering::Equal)
        } else if d == i16::MIN {
            None
        } else if d > 0 {
            Some(Ordering::Less)
        } else {
            Some(Ordering::Greater)
        }
    }

    /// True if `self` is strictly newer than `other` in serial order.
    /// The ambiguous antipode compares as *not* newer (conservative: a
    /// filtering service treats it as stale/duplicate rather than
    /// delivering potentially reordered data).
    pub fn is_after(self, other: SequenceNumber) -> bool {
        matches!(other.serial_cmp(self), Some(core::cmp::Ordering::Less))
    }
}

impl fmt::Debug for SequenceNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Seq({})", self.0)
    }
}

impl fmt::Display for SequenceNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u16> for SequenceNumber {
    fn from(raw: u16) -> Self {
        SequenceNumber(raw)
    }
}

impl From<SequenceNumber> for u16 {
    fn from(s: SequenceNumber) -> u16 {
        s.0
    }
}

/// Identifier of a stream-update (actuation) request, "issued to consumer
/// processes and used in sensor-level acknowledgements" (§7 — the field
/// the paper calls "loosely comparable to a RETRI").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RequestId(u32);

impl RequestId {
    /// Creates a request id from a raw value.
    pub const fn new(raw: u32) -> Self {
        RequestId(raw)
    }

    /// The raw 32-bit value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The next request id, wrapping (allocation is middleware-local).
    pub const fn next(self) -> RequestId {
        RequestId(self.0.wrapping_add(1))
    }
}

impl fmt::Debug for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RequestId({})", self.0)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::cmp::Ordering;

    #[test]
    fn sensor_id_accepts_full_24_bit_space() {
        assert!(SensorId::new(0).is_ok());
        assert!(SensorId::new(0x00FF_FFFF).is_ok());
        assert_eq!(SensorId::MAX.as_u32(), 16_777_215); // the paper's 16.7M
    }

    #[test]
    fn sensor_id_rejects_25_bits() {
        assert_eq!(SensorId::new(0x0100_0000), Err(WireError::InvalidSensorId(0x0100_0000)));
        assert!(SensorId::try_from(u32::MAX).is_err());
    }

    #[test]
    fn stream_id_packs_and_unpacks() {
        let s = StreamId::new(SensorId::new(0x00AB_CDEF).unwrap(), StreamIndex::new(0x42));
        assert_eq!(s.to_raw(), 0xABCD_EF42);
        let back = StreamId::from_raw(0xABCD_EF42);
        assert_eq!(back, s);
        assert_eq!(back.sensor().as_u32(), 0x00AB_CDEF);
        assert_eq!(back.index().as_u8(), 0x42);
    }

    #[test]
    fn stream_id_round_trips_entire_u32_space_sampled() {
        for raw in (0..=u32::MAX).step_by(104_729) {
            assert_eq!(StreamId::from_raw(raw).to_raw(), raw);
        }
        assert_eq!(StreamId::from_raw(u32::MAX).to_raw(), u32::MAX);
    }

    #[test]
    fn display_formats() {
        let s = StreamId::new(SensorId::new(0xABC).unwrap(), StreamIndex::new(7));
        assert_eq!(s.to_string(), "s000abc/7");
        assert_eq!(SequenceNumber::new(9).to_string(), "#9");
        assert_eq!(RequestId::new(3).to_string(), "r3");
    }

    #[test]
    fn sequence_successor_wraps() {
        assert_eq!(SequenceNumber::new(65_535).next(), SequenceNumber::new(0));
        assert_eq!(SequenceNumber::new(10).advance(65_535), SequenceNumber::new(9));
    }

    #[test]
    fn serial_ordering_near_wrap() {
        let a = SequenceNumber::new(65_530);
        let b = SequenceNumber::new(5);
        assert!(b.is_after(a), "5 follows 65530 after wrap");
        assert!(!a.is_after(b));
        assert_eq!(a.serial_cmp(b), Some(Ordering::Less));
        assert_eq!(b.serial_cmp(a), Some(Ordering::Greater));
    }

    #[test]
    fn serial_ordering_plain() {
        let a = SequenceNumber::new(100);
        let b = SequenceNumber::new(200);
        assert!(b.is_after(a));
        assert_eq!(a.serial_cmp(a), Some(Ordering::Equal));
        assert_eq!(a.distance_to(b), 100);
        assert_eq!(b.distance_to(a), -100);
    }

    #[test]
    fn serial_antipode_is_unordered_and_not_after() {
        let a = SequenceNumber::new(0);
        let b = SequenceNumber::new(32_768);
        assert_eq!(a.serial_cmp(b), None);
        assert_eq!(b.serial_cmp(a), None);
        assert!(!a.is_after(b));
        assert!(!b.is_after(a));
    }

    #[test]
    fn serial_cmp_is_antisymmetric_on_sample() {
        for i in (0..=u16::MAX).step_by(251) {
            for j in (0..=u16::MAX).step_by(499) {
                let a = SequenceNumber::new(i);
                let b = SequenceNumber::new(j);
                match (a.serial_cmp(b), b.serial_cmp(a)) {
                    (Some(Ordering::Less), Some(Ordering::Greater))
                    | (Some(Ordering::Greater), Some(Ordering::Less))
                    | (Some(Ordering::Equal), Some(Ordering::Equal))
                    | (None, None) => {}
                    other => panic!("asymmetric serial_cmp for {i},{j}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn request_id_wraps() {
        assert_eq!(RequestId::new(u32::MAX).next(), RequestId::new(0));
    }

    #[test]
    fn serde_round_trip_via_json_like_tokens() {
        // serde_json is not in the dependency set; use the serde test in
        // spirit via bincode-free manual check through serde's Serialize
        // into a simple format: here we just assert the derives exist and
        // types are transparent by checking packed raw equivalence.
        let s = StreamId::from_raw(0xDEAD_BEEF);
        let cloned = s;
        assert_eq!(s, cloned);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn stream_id_raw_round_trip(raw in any::<u32>()) {
            prop_assert_eq!(StreamId::from_raw(raw).to_raw(), raw);
        }

        #[test]
        fn sensor_id_new_matches_mask(raw in any::<u32>()) {
            let ok = SensorId::new(raw).is_ok();
            prop_assert_eq!(ok, raw <= 0x00FF_FFFF);
        }

        #[test]
        fn serial_distance_is_negation(a in any::<u16>(), b in any::<u16>()) {
            let sa = SequenceNumber::new(a);
            let sb = SequenceNumber::new(b);
            let d1 = sa.distance_to(sb);
            let d2 = sb.distance_to(sa);
            if d1 != i16::MIN {
                prop_assert_eq!(d1, -d2);
            } else {
                prop_assert_eq!(d2, i16::MIN);
            }
        }

        #[test]
        fn is_after_is_irreflexive_and_asymmetric(a in any::<u16>(), b in any::<u16>()) {
            let sa = SequenceNumber::new(a);
            let sb = SequenceNumber::new(b);
            prop_assert!(!sa.is_after(sa));
            if sa.is_after(sb) {
                prop_assert!(!sb.is_after(sa));
            }
        }

        #[test]
        fn successor_is_always_after(a in any::<u16>()) {
            let s = SequenceNumber::new(a);
            prop_assert!(s.next().is_after(s));
        }

        #[test]
        fn advance_within_half_window_preserves_order(a in any::<u16>(), n in 1u16..32_767) {
            let s = SequenceNumber::new(a);
            prop_assert!(s.advance(n).is_after(s));
        }
    }
}
