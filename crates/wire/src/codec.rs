//! Length-delimited framing for carrying wire messages over byte streams.
//!
//! The wireless medium delivers whole datagrams, but the fixed network
//! side of Garnet (receiver arrays → filtering service) moves batches of
//! messages over stream transports. [`FrameEncoder`] prefixes each frame
//! with a big-endian `u32` length; [`FrameDecoder`] re-segments an
//! arbitrary chunking of the byte stream back into frames.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::WireError;

/// Default maximum accepted frame: a max-size data message plus slack.
pub const DEFAULT_MAX_FRAME: usize = 70 * 1024;

const LEN_PREFIX: usize = 4;

/// Writes length-prefixed frames into a reusable buffer.
///
/// # Example
///
/// ```
/// use garnet_wire::{FrameDecoder, FrameEncoder};
///
/// let mut enc = FrameEncoder::new();
/// enc.write_frame(b"hello");
/// enc.write_frame(b"world");
/// let wire = enc.take();
///
/// let mut dec = FrameDecoder::new();
/// dec.extend(&wire);
/// assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"hello");
/// assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"world");
/// assert!(dec.next_frame().unwrap().is_none());
/// ```
#[derive(Debug, Default)]
pub struct FrameEncoder {
    buf: BytesMut,
}

impl FrameEncoder {
    /// Creates an encoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one frame.
    pub fn write_frame(&mut self, frame: &[u8]) {
        self.buf.reserve(LEN_PREFIX + frame.len());
        self.buf.put_u32(frame.len() as u32);
        self.buf.extend_from_slice(frame);
    }

    /// Takes all encoded bytes, leaving the encoder empty.
    pub fn take(&mut self) -> Bytes {
        self.buf.split().freeze()
    }

    /// Bytes currently buffered.
    pub fn pending_len(&self) -> usize {
        self.buf.len()
    }
}

/// Re-assembles frames from arbitrarily chunked input.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: BytesMut,
    max_frame: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// Creates a decoder with [`DEFAULT_MAX_FRAME`].
    pub fn new() -> Self {
        FrameDecoder { buf: BytesMut::new(), max_frame: DEFAULT_MAX_FRAME }
    }

    /// Creates a decoder that rejects frames longer than `max_frame`
    /// (guards against a corrupt length prefix swallowing the stream).
    pub fn with_max_frame(max_frame: usize) -> Self {
        FrameDecoder { buf: BytesMut::new(), max_frame }
    }

    /// Feeds more raw bytes.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Attempts to extract the next complete frame.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`WireError::FrameTooLong`] when a length prefix exceeds the
    /// configured maximum; the stream should be abandoned.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, WireError> {
        if self.buf.len() < LEN_PREFIX {
            return Ok(None);
        }
        let declared =
            u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if declared > self.max_frame {
            return Err(WireError::FrameTooLong { declared, max: self.max_frame });
        }
        if self.buf.len() < LEN_PREFIX + declared {
            return Ok(None);
        }
        self.buf.advance(LEN_PREFIX);
        Ok(Some(self.buf.split_to(declared).freeze()))
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered_len(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_frame_round_trips() {
        let mut enc = FrameEncoder::new();
        enc.write_frame(b"");
        let mut dec = FrameDecoder::new();
        dec.extend(&enc.take());
        assert_eq!(dec.next_frame().unwrap().unwrap().len(), 0);
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn frames_survive_byte_at_a_time_delivery() {
        let mut enc = FrameEncoder::new();
        enc.write_frame(b"abc");
        enc.write_frame(&[0u8; 100]);
        let wire = enc.take();

        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        for b in wire.iter() {
            dec.extend(&[*b]);
            while let Some(f) = dec.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].as_ref(), b"abc");
        assert_eq!(frames[1].len(), 100);
        assert_eq!(dec.buffered_len(), 0);
    }

    #[test]
    fn oversize_frame_rejected() {
        let mut dec = FrameDecoder::with_max_frame(8);
        dec.extend(&9u32.to_be_bytes());
        dec.extend(&[0u8; 9]);
        assert!(matches!(dec.next_frame(), Err(WireError::FrameTooLong { declared: 9, max: 8 })));
    }

    #[test]
    fn partial_length_prefix_waits() {
        let mut dec = FrameDecoder::new();
        dec.extend(&[0, 0]);
        assert!(dec.next_frame().unwrap().is_none());
        dec.extend(&[0, 1, 0xAA]);
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), &[0xAA]);
    }

    #[test]
    fn encoder_take_resets() {
        let mut enc = FrameEncoder::new();
        enc.write_frame(b"x");
        assert_eq!(enc.pending_len(), 5);
        let _ = enc.take();
        assert_eq!(enc.pending_len(), 0);
    }

    #[test]
    fn data_messages_travel_in_frames() {
        use crate::ids::{SensorId, SequenceNumber, StreamId, StreamIndex};
        use crate::message::DataMessage;

        let stream = StreamId::new(SensorId::new(5).unwrap(), StreamIndex::new(1));
        let msgs: Vec<DataMessage> = (0..10u16)
            .map(|i| {
                DataMessage::builder(stream)
                    .seq(SequenceNumber::new(i))
                    .payload(vec![i as u8; i as usize])
                    .build()
                    .unwrap()
            })
            .collect();

        let mut enc = FrameEncoder::new();
        for m in &msgs {
            enc.write_frame(&m.encode_to_vec());
        }
        let mut dec = FrameDecoder::new();
        dec.extend(&enc.take());
        let mut out = Vec::new();
        while let Some(frame) = dec.next_frame().unwrap() {
            let (m, used) = DataMessage::decode(&frame).unwrap();
            assert_eq!(used, frame.len());
            out.push(m);
        }
        assert_eq!(out, msgs);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn arbitrary_chunking_preserves_frames(
            frames in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..20),
            chunk_size in 1usize..64,
        ) {
            let mut enc = FrameEncoder::new();
            for f in &frames {
                enc.write_frame(f);
            }
            let wire = enc.take();
            let mut dec = FrameDecoder::new();
            let mut out: Vec<Vec<u8>> = Vec::new();
            for chunk in wire.chunks(chunk_size) {
                dec.extend(chunk);
                while let Some(f) = dec.next_frame().unwrap() {
                    out.push(f.to_vec());
                }
            }
            prop_assert_eq!(out, frames);
        }
    }
}
