//! The Garnet wire format: data messages, control messages and framing.
//!
//! This crate implements Figure 2 of the paper exactly as published:
//!
//! ```text
//! bit #   0        8                40        56         72
//!         +--------+----------------+---------+----------+-----------------+
//!         | Msg    |   StreamID     | Sequence| Payload  |    PAYLOAD      |
//!         | Header |  (24b sensor + |  (16b)  | Size(16b)|    (opaque)     |
//!         |  (8b)  |   8b stream)   |         |          |                 |
//!         +--------+----------------+---------+----------+-----------------+
//! ```
//!
//! giving the paper's headline capacities: **16.7M sensors** (24-bit
//! [`SensorId`]), **256 internal streams per sensor** (8-bit
//! [`StreamIndex`]), **64K sequence counts** (16-bit [`SequenceNumber`]
//! with RFC-1982 serial arithmetic so streams survive wraparound) and
//! **64KiB payloads** (16-bit payload size). The payload is opaque to the
//! whole infrastructure, which is what lets consumers layer end-to-end
//! encryption on top (see `garnet-core`'s crypto module).
//!
//! The paper notes "we do not indicate the usual checksums"; they exist in
//! the implementation as a CRC-16/CCITT trailer on data messages and a
//! CRC-32 trailer on (rarer, more consequential) control messages.
//!
//! # Example
//!
//! ```
//! use garnet_wire::{DataMessage, SensorId, StreamId, StreamIndex, SequenceNumber};
//!
//! # fn main() -> Result<(), garnet_wire::WireError> {
//! let stream = StreamId::new(SensorId::new(0xABCDE)?, StreamIndex::new(3));
//! let msg = DataMessage::builder(stream)
//!     .seq(SequenceNumber::new(41))
//!     .payload(b"21.5C".as_slice())
//!     .build()?;
//! let bytes = msg.encode_to_vec();
//! let (decoded, used) = DataMessage::decode(&bytes)?;
//! assert_eq!(decoded, msg);
//! assert_eq!(used, bytes.len());
//! # Ok(())
//! # }
//! ```

pub mod codec;
pub mod control;
pub mod crc;
pub mod crypto;
pub mod error;
pub mod header;
pub mod ids;
pub mod message;

pub use codec::{FrameDecoder, FrameEncoder};
pub use control::{
    AckStatus, ActuationTarget, SensorCommand, StreamUpdateAck, StreamUpdateRequest, TargetArea,
};
pub use crypto::PayloadKey;
pub use error::WireError;
pub use header::{HeaderFlags, MsgHeader, WIRE_VERSION};
pub use ids::{RequestId, SensorId, SequenceNumber, StreamId, StreamIndex};
pub use message::{
    peek_seq, peek_stream, DataMessage, DataMessageBuilder, FrameBytes, FrameHeader,
    MAX_PAYLOAD_LEN,
};
