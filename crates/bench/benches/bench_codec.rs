//! E1 hot path: encode/decode of Fig. 2 data messages across payload sizes.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garnet_bench::e01_codec::{sample_message, PAYLOAD_SIZES};
use garnet_wire::DataMessage;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e01_codec");
    for &len in &PAYLOAD_SIZES {
        let msg = sample_message(len);
        let bytes = msg.encode_to_vec();
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", len), &msg, |b, m| {
            b.iter(|| std::hint::black_box(m.encode_to_vec()));
        });
        group.bench_with_input(BenchmarkId::new("decode", len), &bytes, |b, by| {
            b.iter(|| DataMessage::decode(std::hint::black_box(by)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
