//! E5 hot path: subscription-table routing at varying fan-out.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garnet_bench::e05_dispatch::build_service;
use garnet_wire::{SensorId, StreamId, StreamIndex};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e05_dispatch");
    let hot = StreamId::new(SensorId::new(42).unwrap(), StreamIndex::new(0));
    for &fanout in &[1usize, 16, 256, 4096] {
        let mut svc = build_service(fanout, 10_000);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("route_fanout", fanout), &fanout, |b, _| {
            b.iter(|| std::hint::black_box(svc.route(hot).recipients.len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
