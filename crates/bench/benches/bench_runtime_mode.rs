//! E20: the deployment-mode sweep — the facade's hosted threaded graph
//! against the FIFO simulation driver (writes `BENCH_runtime_mode.json`
//! next to the bench's working directory; `sweep_json` schema, where
//! point 0 is the FIFO baseline).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garnet_bench::e03_pipeline::{expected_min_speedup, host_cores, shard_workload, sweep_json};
use garnet_bench::e20_runtime_mode::{run_mode_point, run_mode_sweep, THREADED_SHARDS};
use garnet_core::DriverKind;

fn bench(c: &mut Criterion) {
    let frames = 20_000u32;
    let workload = shard_workload(frames, 64);
    let mut group = c.benchmark_group("e20_runtime_mode");
    group.sample_size(10);
    group.throughput(Throughput::Elements(u64::from(frames)));
    group.bench_function(BenchmarkId::from_parameter("fifo"), |b| {
        b.iter(|| std::hint::black_box(run_mode_point(&workload, DriverKind::Fifo, 1)));
    });
    for shards in THREADED_SHARDS {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threaded-{shards}")),
            &shards,
            |b, &s| {
                b.iter(|| std::hint::black_box(run_mode_point(&workload, DriverKind::Threaded, s)));
            },
        );
    }
    group.finish();

    let cores = host_cores();
    let points = run_mode_sweep(&workload);
    let base = points[0].throughput_fps;
    for p in &points[1..] {
        // Speedup over the FIFO engine is only claimed where the host
        // can deliver one; a single-core runner records the sweep
        // without the gate.
        if let Some(min) = expected_min_speedup(p.shards, cores) {
            let speedup = p.throughput_fps / base;
            assert!(
                speedup >= min,
                "threaded {} shards on {} cores: speedup {:.3} over fifo below expected {:.2}",
                p.shards,
                cores,
                speedup,
                min
            );
        }
    }
    let json = sweep_json("e20_runtime_mode", "Garnet(Fifo|Threaded)", cores, &points);
    if let Err(e) = std::fs::write("BENCH_runtime_mode.json", &json) {
        eprintln!("could not write BENCH_runtime_mode.json: {e}");
    }
    println!("{json}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
