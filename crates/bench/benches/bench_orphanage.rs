//! E12: orphanage intake and late-subscriber replay.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garnet_bench::e12_orphanage::run_point;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_orphanage");
    group.sample_size(20);
    for &before in &[100u16, 500] {
        group.throughput(Throughput::Elements(u64::from(before) + 20));
        group.bench_with_input(BenchmarkId::new("orphan_then_replay", before), &before, |b, &n| {
            b.iter(|| std::hint::black_box(run_point(n, 20, 128)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
