//! E7: query-engine ingest with shared-proxy subsampling.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garnet_baselines::querydb::{Query, QueryEngine};
use garnet_simkit::{SimDuration, SimTime};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e07_fjords");
    for &q in &[1usize, 16, 256] {
        group.throughput(Throughput::Elements(10_000));
        group.bench_with_input(BenchmarkId::new("ingest_queries", q), &q, |b, &nq| {
            b.iter(|| {
                let mut engine = QueryEngine::new();
                for i in 0..nq {
                    engine
                        .register(Query::latest_every(SimDuration::from_secs(1 + (i % 5) as u64)));
                }
                for i in 0..10_000u64 {
                    engine.ingest(SimTime::from_millis(i * 100), i as f64);
                }
                std::hint::black_box(engine.samples_ingested())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
