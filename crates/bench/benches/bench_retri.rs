//! E6: RETRI collision simulation and energy model.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use garnet_baselines::retri::simulate_collision_rate;
use garnet_simkit::SimRng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e06_retri");
    for &concurrent in &[8usize, 64, 512] {
        group.bench_with_input(
            BenchmarkId::new("collision_sim", concurrent),
            &concurrent,
            |b, &n| {
                let mut rng = SimRng::seed(1);
                b.iter(|| std::hint::black_box(simulate_collision_rate(8, n, 50, &mut rng)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
