//! E8: live pipeline cost as subscriber count grows.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use garnet_bench::e08_coupling::run_point;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e08_coupling");
    group.sample_size(10);
    for &consumers in &[1usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::new("pipeline_consumers", consumers),
            &consumers,
            |b, &n| {
                b.iter(|| std::hint::black_box(run_point(n)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
