//! E15: the two-node relay pipeline at one operating point.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use garnet_bench::e15_multihop::run_point;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_multihop");
    group.sample_size(10);
    for &d in &[80.0f64, 160.0] {
        group.bench_with_input(BenchmarkId::new("relay_pipeline", d as u64), &d, |b, &dist| {
            b.iter(|| std::hint::black_box(run_point(dist, 1)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
