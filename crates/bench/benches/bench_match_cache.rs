//! E23: the dispatch match-cache sweep (writes `BENCH_match_cache.json`
//! next to the bench's working directory — the sweep_json envelope with
//! per-point `engine` / `fanout` / `population` / `cache` / `hit_rate`
//! fields).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use garnet_bench::e03_pipeline::host_cores;
use garnet_bench::e23_match_cache::{cache_sweep_json, run_fifo_point, run_matrix};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e23_match_cache");
    group.sample_size(10);
    for fanout in [1usize, 16, 256] {
        for cache_on in [true, false] {
            let label = format!("{}sub/{}", fanout, if cache_on { "on" } else { "off" });
            group.bench_with_input(
                BenchmarkId::from_parameter(&label),
                &(fanout, cache_on),
                |b, &(f, on)| {
                    b.iter(|| std::hint::black_box(run_fifo_point(f, 1_000, on, 2_000)));
                },
            );
        }
    }
    group.finish();

    let (fifo, threaded) = run_matrix(20_000, 20_000);
    // The acceptance gate, re-checked where the numbers are recorded:
    // at fan-out ≥16 the cached steady state must be ≥2× cheaper.
    for on in fifo.iter().filter(|p| p.cache_on && p.fanout >= 16) {
        let off = fifo
            .iter()
            .find(|q| !q.cache_on && q.fanout == on.fanout && q.population == on.population)
            .expect("matrix carries both cache settings per cell");
        assert!(
            off.ns_per_dispatch >= on.ns_per_dispatch * 2.0,
            "fanout {} population {}: cache on {:.1}ns vs off {:.1}ns is below 2x",
            on.fanout,
            on.population,
            on.ns_per_dispatch,
            off.ns_per_dispatch
        );
    }
    let json = cache_sweep_json(&fifo, &threaded, host_cores());
    if let Err(e) = std::fs::write("BENCH_match_cache.json", &json) {
        eprintln!("could not write BENCH_match_cache.json: {e}");
    }
    println!("{json}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
