//! E3: the full Fig. 1 pipeline at one operating point, plus the ingest
//! shard sweep (writes `BENCH_pipeline_shards.json` next to the bench's
//! working directory).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garnet_bench::e03_pipeline::{
    expected_min_speedup, host_cores, run_point, run_shard_point, shard_workload, sweep_json,
};
use garnet_simkit::{SimDuration, SimTime};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e03_pipeline");
    group.sample_size(10);
    group.bench_function("habitat_6x6_60s", |b| {
        b.iter(|| {
            let p = run_point(6, SimDuration::from_secs(5), SimTime::from_secs(60));
            assert!(p.delivered > 0);
            std::hint::black_box(p)
        });
    });
    group.finish();

    let frames = 50_000u32;
    let workload = shard_workload(frames, 64);
    let mut group = c.benchmark_group("e03_pipeline_shards");
    group.sample_size(10);
    group.throughput(Throughput::Elements(u64::from(frames)));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &s| {
            b.iter(|| std::hint::black_box(run_shard_point(&workload, s)));
        });
    }
    group.finish();

    let cores = host_cores();
    let points: Vec<_> = [1usize, 2, 4, 8].iter().map(|&s| run_shard_point(&workload, s)).collect();
    let base = points[0].throughput_fps;
    for p in &points {
        // Only claim a speedup where the host can actually deliver one;
        // a single-core runner records the sweep without the gate.
        if let Some(min) = expected_min_speedup(p.shards, cores) {
            let speedup = p.throughput_fps / base;
            assert!(
                speedup >= min,
                "{} shards on {} cores: speedup {:.3} below expected {:.2}",
                p.shards,
                cores,
                speedup,
                min
            );
        }
    }
    let json = sweep_json("e03_pipeline_shards", "ThreadedIngest", cores, &points);
    if let Err(e) = std::fs::write("BENCH_pipeline_shards.json", &json) {
        eprintln!("could not write BENCH_pipeline_shards.json: {e}");
    }
    println!("{json}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
