//! E3: the full Fig. 1 pipeline at one operating point.
use criterion::{criterion_group, criterion_main, Criterion};
use garnet_bench::e03_pipeline::run_point;
use garnet_simkit::{SimDuration, SimTime};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e03_pipeline");
    group.sample_size(10);
    group.bench_function("habitat_6x6_60s", |b| {
        b.iter(|| {
            let p = run_point(6, SimDuration::from_secs(5), SimTime::from_secs(60));
            assert!(p.delivered > 0);
            std::hint::black_box(p)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
