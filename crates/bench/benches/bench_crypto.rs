//! E14: XTEA-CTR + CBC-MAC seal/open throughput.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garnet_bench::e14_crypto::bench_key;
use garnet_wire::{SequenceNumber, StreamId};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_crypto");
    let key = bench_key();
    let stream = StreamId::from_raw(0x0100);
    for &len in &[16usize, 256, 4096] {
        let plaintext = vec![0u8; len];
        let sealed = key.seal(stream, SequenceNumber::new(1), &plaintext);
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::new("seal", len), &plaintext, |b, p| {
            b.iter(|| std::hint::black_box(key.seal(stream, SequenceNumber::new(1), p)));
        });
        group.bench_with_input(BenchmarkId::new("open", len), &sealed, |b, s| {
            b.iter(|| key.open(stream, SequenceNumber::new(1), std::hint::black_box(s)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
