//! E10: the two-wave water-course season under both coordinator modes.
use criterion::{criterion_group, criterion_main, Criterion};
use garnet_bench::e10_predictive::run_mode;
use garnet_core::coordinator::CoordinationMode;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_predictive");
    group.sample_size(10);
    group.bench_function("reactive_season", |b| {
        b.iter(|| std::hint::black_box(run_mode(CoordinationMode::Reactive)));
    });
    group.bench_function("predictive_season", |b| {
        b.iter(|| {
            std::hint::black_box(run_mode(CoordinationMode::Predictive { min_confidence: 0.5 }))
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
