//! E18: the dispatch shard sweep on the full threaded service graph
//! (writes `BENCH_dispatch_shards.json` next to the bench's working
//! directory, same schema as `BENCH_pipeline_shards.json`).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garnet_bench::e03_pipeline::{expected_min_speedup, host_cores, shard_workload, sweep_json};
use garnet_bench::e18_dispatch_shards::run_dispatch_point;

fn bench(c: &mut Criterion) {
    let frames = 20_000u32;
    let workload = shard_workload(frames, 64);
    let mut group = c.benchmark_group("e18_dispatch_shards");
    group.sample_size(10);
    group.throughput(Throughput::Elements(u64::from(frames)));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &s| {
            b.iter(|| std::hint::black_box(run_dispatch_point(&workload, s)));
        });
    }
    group.finish();

    let cores = host_cores();
    let points: Vec<_> =
        [1usize, 2, 4, 8].iter().map(|&s| run_dispatch_point(&workload, s)).collect();
    let base = points[0].throughput_fps;
    for p in &points {
        // Speedup is only claimed where the host can deliver one; a
        // single-core runner records the sweep without the gate.
        if let Some(min) = expected_min_speedup(p.shards, cores) {
            let speedup = p.throughput_fps / base;
            assert!(
                speedup >= min,
                "{} dispatch shards on {} cores: speedup {:.3} below expected {:.2}",
                p.shards,
                cores,
                speedup,
                min
            );
        }
    }
    let json = sweep_json("e18_dispatch_shards", "ThreadedRouter", cores, &points);
    if let Err(e) = std::fs::write("BENCH_dispatch_shards.json", &json) {
        eprintln!("could not write BENCH_dispatch_shards.json: {e}");
    }
    println!("{json}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
