//! E21: the admission batch-size sweep on the zero-copy frame path
//! (writes `BENCH_batch.json`, shared sweep schema — the `shards` field
//! of each point carries the batch size; topology is one shard per
//! stage).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garnet_bench::e03_pipeline::{run_shard_point_batched, shard_workload};
use garnet_bench::e21_batch::{batch_sweep_json, ingest_batch_sweep, BATCH_SIZES};

fn bench(c: &mut Criterion) {
    let frames = 100_000u32;
    let workload = shard_workload(frames, 64);
    let mut group = c.benchmark_group("e21_batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(u64::from(frames)));
    for batch in BATCH_SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &size| {
            b.iter(|| std::hint::black_box(run_shard_point_batched(&workload, 1, size)));
        });
    }
    group.finish();

    let points = ingest_batch_sweep(200_000, 64, &BATCH_SIZES);
    // The acceptance shape: per-frame cost falls monotonically from
    // batch size 1 to 64 (256 may flatten; it only has to hold 64's
    // gain, with 10% measurement slack).
    for pair in points.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if b.batch <= 64 {
            assert!(
                b.point.throughput_fps > a.point.throughput_fps,
                "batch {} ({:.0} fps) not faster than batch {} ({:.0} fps)",
                b.batch,
                b.point.throughput_fps,
                a.batch,
                a.point.throughput_fps
            );
        } else {
            assert!(
                b.point.throughput_fps > a.point.throughput_fps * 0.9,
                "batch {} ({:.0} fps) regressed below batch {} ({:.0} fps)",
                b.batch,
                b.point.throughput_fps,
                a.batch,
                a.point.throughput_fps
            );
        }
    }
    let json = batch_sweep_json("e21_batch", "ThreadedIngest", &points);
    if let Err(e) = std::fs::write("BENCH_batch.json", &json) {
        eprintln!("could not write BENCH_batch.json: {e}");
    }
    println!("{json}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
