//! E11: resource-manager adjudication throughput per policy.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garnet_bench::e11_mediation::run_point;
use garnet_core::resource::MediationPolicy;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_mediation");
    for policy in
        [MediationPolicy::DenyConflicts, MediationPolicy::PriorityWins, MediationPolicy::MergeMax]
    {
        group.throughput(Throughput::Elements(16));
        group.bench_with_input(
            BenchmarkId::new("adjudicate16", format!("{policy:?}")),
            &policy,
            |b, &p| {
                b.iter(|| std::hint::black_box(run_point(p, 16)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
