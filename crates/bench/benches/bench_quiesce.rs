//! E16: the quiescence pipeline at both settings.
use criterion::{criterion_group, criterion_main, Criterion};
use garnet_bench::e16_quiesce::run_point;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_quiesce");
    group.sample_size(10);
    group.bench_function("quiesce_off", |b| b.iter(|| std::hint::black_box(run_point(false, 1))));
    group.bench_function("quiesce_on", |b| b.iter(|| std::hint::black_box(run_point(true, 1))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
