//! E17: burst admission under each overload policy (writes
//! `BENCH_overload.json` next to the bench's working directory).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garnet_bench::e17_overload::{overload_json, run_point, CAPACITY};
use garnet_core::router::OverloadPolicy;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_overload");
    group.sample_size(10);
    let offered = 8 * CAPACITY as u64;
    group.throughput(Throughput::Elements(offered));
    for policy in [OverloadPolicy::Shed, OverloadPolicy::CoalesceFrames, OverloadPolicy::Block] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}_8x")),
            &policy,
            |b, &p| {
                b.iter(|| std::hint::black_box(run_point(p, 8)));
            },
        );
    }
    group.finish();

    let json = overload_json();
    if let Err(e) = std::fs::write("BENCH_overload.json", &json) {
        eprintln!("could not write BENCH_overload.json: {e}");
    }
    println!("{json}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
