//! E2 hot path: identifier-space handling at the paper's capacity limits.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use garnet_bench::e02_capacity::id_space_sweep;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e02_capacity");
    group.sample_size(10);
    for &count in &[1_000u32, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("id_space_sweep", count), &count, |b, &n| {
            b.iter(|| assert_eq!(id_space_sweep(n), u64::from(n)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
