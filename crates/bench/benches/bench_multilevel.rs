//! E13: relay-chain dispatch at varying depth.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garnet_bench::e13_multilevel::run_point;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_multilevel");
    group.sample_size(20);
    for &depth in &[1usize, 4, 8] {
        group.throughput(Throughput::Elements(200));
        group.bench_with_input(BenchmarkId::new("chain_depth", depth), &depth, |b, &d| {
            b.iter(|| std::hint::black_box(run_point(d, 200, 16)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
