//! E19: flight-recorder overhead on the full service graph (writes
//! `BENCH_trace_overhead.json` next to the bench's working directory).
//!
//! Run once per feature configuration and compare the two documents:
//!
//! ```text
//! cargo bench -p garnet-bench --bench bench_trace_overhead
//! cargo bench -p garnet-bench --bench bench_trace_overhead --features trace
//! ```
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garnet_bench::e03_pipeline::shard_workload;
use garnet_bench::e19_trace_overhead::{driver, run_fifo_point, run_trace_point, trace_sweep_json};

fn bench(c: &mut Criterion) {
    let workload = shard_workload(10_000, 64);
    let mut group = c.benchmark_group("e19_trace_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(workload.len() as u64));
    group.bench_function(BenchmarkId::from_parameter(format!("fifo_{}", driver())), |b| {
        b.iter(|| std::hint::black_box(run_fifo_point(&workload)));
    });
    for shards in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}x{shards}", driver())),
            &shards,
            |b, &s| {
                b.iter(|| std::hint::black_box(run_trace_point(&workload, s)));
            },
        );
    }
    group.finish();

    let json = trace_sweep_json(20_000, 64, &[1, 2, 4]);
    if let Err(e) = std::fs::write("BENCH_trace_overhead.json", &json) {
        eprintln!("could not write BENCH_trace_overhead.json: {e}");
    }
    println!("{json}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
