//! E22: archive overhead through the facade (writes `BENCH_store.json`,
//! shared sweep schema — the `shards` field of each point carries the
//! archive-mode index: 0 off, 1 memory, 2 file).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garnet_bench::e03_pipeline::shard_workload;
use garnet_bench::e22_store::{run_archive_point, store_overhead_json, ArchiveMode};
use garnet_core::DriverKind;

fn bench(c: &mut Criterion) {
    let frames = 20_000u32;
    let workload = shard_workload(frames, 64);
    let mut group = c.benchmark_group("e22_store");
    group.sample_size(10);
    group.throughput(Throughput::Elements(u64::from(frames)));
    for mode in ArchiveMode::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    std::hint::black_box(run_archive_point(&workload, DriverKind::Fifo, mode))
                });
            },
        );
    }
    group.finish();

    // The acceptance shape: archiving costs something but never frames —
    // every point of the document processed the full workload (the
    // sweep's own assertions verify delivery and the archive ledger).
    let json = store_overhead_json(20_000, 64);
    if let Err(e) = std::fs::write("BENCH_store.json", &json) {
        eprintln!("could not write BENCH_store.json: {e}");
    }
    println!("{json}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
