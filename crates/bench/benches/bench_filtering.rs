//! E4 hot path: the filtering service under duplication and loss.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garnet_bench::e04_filtering::run_point;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e04_filtering");
    group.sample_size(20);
    for &overlap in &[1u32, 4, 8] {
        group.throughput(Throughput::Elements(u64::from(overlap) * 2_000));
        group.bench_with_input(BenchmarkId::new("overlap", overlap), &overlap, |b, &k| {
            b.iter(|| std::hint::black_box(run_point(k, 0.1, 2_000, 7)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
