//! E9: location estimation from receiver sightings.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use garnet_bench::e09_location::run_point;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e09_location");
    group.sample_size(10);
    for &side in &[2usize, 5, 8] {
        group.bench_with_input(BenchmarkId::new("grid", side), &side, |b, &s| {
            b.iter(|| std::hint::black_box(run_point(s, 1)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
