//! E17b: per-consumer QoS — the fast+slow co-subscription scenario at
//! 16x overload (writes `BENCH_qos.json` next to the bench's working
//! directory). The document's second point's `speedup_vs_1` is the
//! contended/uncontended delivery-rate ratio of the fast consumer; the
//! acceptance gate is ≥ 0.95.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garnet_bench::e17_overload::{qos_json, run_qos_point, CAPACITY, QOS_MULTIPLIER};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_qos");
    group.sample_size(10);
    group.throughput(Throughput::Elements(QOS_MULTIPLIER * CAPACITY as u64));
    for slow_present in [false, true] {
        let label = if slow_present { "fast_plus_slow" } else { "fast_alone" };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{label}_{QOS_MULTIPLIER}x")),
            &slow_present,
            |b, &slow| {
                b.iter(|| std::hint::black_box(run_qos_point(slow)));
            },
        );
    }
    group.finish();

    // The acceptance gate rides on the emitted document: the fast
    // consumer's contended rate must be within 5% of its uncontended
    // rate (the scheduler actually delivers exact equality).
    let alone = run_qos_point(false);
    let contended = run_qos_point(true);
    let ratio = contended.fast_consumed as f64 / alone.fast_consumed.max(1) as f64;
    assert!(
        ratio >= 0.95,
        "fast consumer degraded under a slow co-subscriber: ratio {ratio:.3} \
         (alone {alone:?}, contended {contended:?})"
    );
    assert_eq!(alone.control_shed + contended.control_shed, 0, "control events were shed");

    let json = qos_json();
    if let Err(e) = std::fs::write("BENCH_qos.json", &json) {
        eprintln!("could not write BENCH_qos.json: {e}");
    }
    println!("{json}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
