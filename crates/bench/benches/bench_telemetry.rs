//! E24: telemetry-plane overhead at batch 64 (writes
//! `BENCH_telemetry.json` next to the bench's working directory).
//!
//! ```text
//! cargo bench -p garnet-bench --bench bench_telemetry
//! ```
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use garnet_bench::e03_pipeline::shard_workload;
use garnet_bench::e24_telemetry::{run_telemetry_point, run_telemetry_sweep, telemetry_json};
use garnet_core::DriverKind;

fn bench(c: &mut Criterion) {
    let workload = shard_workload(10_000, 64);
    let mut group = c.benchmark_group("e24_telemetry");
    group.sample_size(10);
    group.throughput(Throughput::Elements(workload.len() as u64));
    for driver in [DriverKind::Fifo, DriverKind::Threaded] {
        for spans in [false, true] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{driver:?}_spans_{spans}")),
                &spans,
                |b, &spans| {
                    b.iter(|| std::hint::black_box(run_telemetry_point(&workload, driver, spans)));
                },
            );
        }
    }
    group.finish();

    let json = telemetry_json(&run_telemetry_sweep(&shard_workload(20_000, 64)));
    if let Err(e) = std::fs::write("BENCH_telemetry.json", &json) {
        eprintln!("could not write BENCH_telemetry.json: {e}");
    }
    println!("{json}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
