//! E16 — demand-driven quiescence (§8 "predictive resource management
//! strategies based on … system-inferred changes to data usage
//! patterns", implemented).
//!
//! A field of sensors transmits; only a fraction has any subscriber.
//! With quiescence on, the middleware infers the unclaimed streams from
//! its own catalogue and slows them down through the ordinary actuation
//! path, then restores a stream the moment a late subscriber claims it.
//! The metric is the sensor fleet's radio energy over the run — what a
//! battery budget actually buys.

use garnet_core::middleware::{GarnetConfig, QuiesceConfig};
use garnet_core::pipeline::{PipelineConfig, PipelineSim, SharedCountConsumer};
use garnet_net::TopicFilter;
use garnet_radio::field::Uniform;
use garnet_radio::geometry::Point;
use garnet_radio::{
    Medium, Propagation, Receiver, SensorCaps, SensorNode, StreamConfig, Transmitter,
};
use garnet_simkit::{SimDuration, SimTime};
use garnet_wire::{SensorId, StreamIndex};

use crate::table::{f2, n, Table};

/// Results of one configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuiescePoint {
    /// Whether quiescence was enabled.
    pub enabled: bool,
    /// Total fleet radio energy (mJ).
    pub fleet_energy_mj: f64,
    /// Energy of the unclaimed half of the fleet (mJ).
    pub unclaimed_energy_mj: f64,
    /// Messages delivered to the subscribed consumer (must not change).
    pub delivered_to_consumer: u64,
    /// Quiesce actions taken.
    pub quiesce_actions: u64,
    /// Restore actions taken.
    pub restore_actions: u64,
}

const SENSORS: u32 = 12;
const HORIZON_S: u64 = 1_800;

/// Runs one configuration: half the sensors subscribed, half unclaimed.
pub fn run_point(enabled: bool, seed: u64) -> QuiescePoint {
    let receivers = Receiver::grid(Point::ORIGIN, 2, 2, 200.0, 300.0);
    let transmitters = Transmitter::grid(Point::ORIGIN, 2, 2, 200.0, 300.0);
    let quiesce = enabled.then_some(QuiesceConfig {
        idle_after: SimDuration::from_secs(120),
        slow_interval_ms: 300_000, // 5 min instead of 5 s
        restore_interval_ms: 5_000,
    });
    let config = PipelineConfig {
        seed,
        medium: Medium::ideal(Propagation::UnitDisk { range_m: 300.0 }),
        garnet: GarnetConfig { receivers, transmitters, quiesce, ..GarnetConfig::default() },
        peer_range_m: None,
    };
    let mut sim = PipelineSim::new(config, Box::new(Uniform(3.0)));
    for i in 0..SENSORS {
        sim.add_sensor(
            SensorNode::new(
                SensorId::new(i + 1).unwrap(),
                Point::new(50.0 + f64::from(i % 4) * 80.0, 50.0 + f64::from(i / 4) * 80.0),
            )
            .with_caps(SensorCaps::sophisticated())
            .with_stream(StreamIndex::new(0), StreamConfig::every(SimDuration::from_secs(5))),
        );
    }

    // One consumer watches the first half of the fleet.
    let token = sim.garnet_mut().issue_default_token("half-watcher");
    let (consumer, count) = SharedCountConsumer::new("half-watcher");
    let id = sim.garnet_mut().register_consumer(Box::new(consumer), &token, 0).unwrap();
    for s in 1..=SENSORS / 2 {
        sim.garnet_mut()
            .subscribe(id, TopicFilter::Sensor(SensorId::new(s).unwrap()), &token)
            .unwrap();
    }

    sim.run_until(SimTime::from_secs(HORIZON_S));
    let fleet: u64 = sim.sensors().iter().map(|s| s.energy_consumed_nj()).sum();
    let unclaimed: u64 =
        sim.sensors()[(SENSORS / 2) as usize..].iter().map(|s| s.energy_consumed_nj()).sum();
    QuiescePoint {
        enabled,
        fleet_energy_mj: fleet as f64 / 1e6,
        unclaimed_energy_mj: unclaimed as f64 / 1e6,
        delivered_to_consumer: count.load(std::sync::atomic::Ordering::Relaxed),
        quiesce_actions: sim.garnet().quiesce_action_count(),
        restore_actions: sim.garnet().restore_action_count(),
    }
}

/// Runs both configurations.
pub fn run() -> (QuiescePoint, QuiescePoint, Table) {
    let off = run_point(false, 0xE16);
    let on = run_point(true, 0xE16);
    let mut table = Table::new(
        "E16 — demand-driven quiescence: fleet energy, half the streams unclaimed (30 min)",
        &["quiesce", "fleet mJ", "unclaimed-half mJ", "delivered to consumer", "quiesce actions"],
    );
    for p in [&off, &on] {
        table.row(&[
            p.enabled.to_string(),
            f2(p.fleet_energy_mj),
            f2(p.unclaimed_energy_mj),
            n(p.delivered_to_consumer),
            n(p.quiesce_actions),
        ]);
    }
    (off, on, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescence_saves_unclaimed_energy_without_hurting_consumers() {
        let (off, on, _) = run();
        assert_eq!(off.quiesce_actions, 0);
        assert_eq!(on.quiesce_actions, u64::from(SENSORS / 2), "every unclaimed stream slowed");
        assert!(
            on.unclaimed_energy_mj < off.unclaimed_energy_mj * 0.35,
            "unclaimed half should spend far less: {} vs {}",
            on.unclaimed_energy_mj,
            off.unclaimed_energy_mj
        );
        // The subscribed half keeps delivering at full rate (allow the
        // small difference from control-message reception energy).
        let ratio = on.delivered_to_consumer as f64 / off.delivered_to_consumer as f64;
        assert!(ratio > 0.99, "consumer deliveries unaffected: ratio={ratio}");
    }

    #[test]
    fn late_subscription_restores_a_quiesced_stream() {
        let receivers = Receiver::grid(Point::ORIGIN, 2, 2, 200.0, 300.0);
        let transmitters = Transmitter::grid(Point::ORIGIN, 2, 2, 200.0, 300.0);
        let config = PipelineConfig {
            seed: 5,
            medium: Medium::ideal(Propagation::UnitDisk { range_m: 300.0 }),
            garnet: GarnetConfig {
                receivers,
                transmitters,
                quiesce: Some(QuiesceConfig {
                    idle_after: SimDuration::from_secs(60),
                    slow_interval_ms: 600_000,
                    restore_interval_ms: 5_000,
                }),
                ..GarnetConfig::default()
            },
            peer_range_m: None,
        };
        let mut sim = PipelineSim::new(config, Box::new(Uniform(1.0)));
        sim.add_sensor(
            SensorNode::new(SensorId::new(1).unwrap(), Point::new(100.0, 100.0))
                .with_caps(SensorCaps::sophisticated())
                .with_stream(StreamIndex::new(0), StreamConfig::every(SimDuration::from_secs(5))),
        );
        // Run unclaimed well past the idle window: it gets quiesced.
        sim.run_until(SimTime::from_secs(600));
        assert_eq!(sim.garnet().quiesce_action_count(), 1);
        let tx_at_quiesce = sim.transmission_count();

        // Subscribe late: the stream is restored to 5 s reporting.
        let token = sim.garnet_mut().issue_default_token("late");
        let (consumer, count) = SharedCountConsumer::new("late");
        let id = sim.garnet_mut().register_consumer(Box::new(consumer), &token, 0).unwrap();
        let now = sim.now();
        let (_, out) = sim
            .garnet_mut()
            .subscribe_at(
                id,
                TopicFilter::Stream(garnet_wire::StreamId::new(
                    SensorId::new(1).unwrap(),
                    StreamIndex::new(0),
                )),
                &token,
                now,
            )
            .unwrap();
        sim.carry_out(out);
        sim.run_until(SimTime::from_secs(900));
        assert_eq!(sim.garnet().restore_action_count(), 1);
        let live = count.load(std::sync::atomic::Ordering::Relaxed);
        // 300 s at 5 s intervals ≈ 60 messages (replay adds a few more).
        assert!(live >= 55, "restored stream delivers at full rate: {live}");
        assert!(sim.transmission_count() > tx_at_quiesce + 55);
    }
}
