//! E17 — bounded-queue overload behaviour: shed rate and queue depth
//! versus offered load, per admission policy.
//!
//! The paper's middleware sits between an unthrottled radio field and
//! consumers of finite appetite; §6's receiver arrays can hand the
//! Data Filtering Service far more frames than a step can absorb. This
//! experiment drives the routed facade with bursts from 1x to 16x the
//! queue capacity and records what each [`OverloadPolicy`] does: how
//! much it sheds, what survives, and how deep the queue actually gets
//! (p99 of depth-at-admission).

use garnet_core::middleware::{Garnet, GarnetConfig};
use garnet_core::router::{OverloadConfig, OverloadPolicy};
use garnet_core::{Consumer, ConsumerCtx, Delivery};
use garnet_net::TopicFilter;
use garnet_radio::ReceiverId;
use garnet_simkit::SimTime;
use garnet_wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};

use crate::table::{f2, n, Table};

/// Queue capacity every point runs with.
pub const CAPACITY: usize = 64;
/// Distinct sensor streams interleaved in the burst.
pub const STREAMS: u32 = 8;

/// One (policy, offered-load) measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverloadPoint {
    /// The admission policy under test.
    pub policy: OverloadPolicy,
    /// Frames offered to admission (multiple of [`CAPACITY`]).
    pub offered: u64,
    /// Frames dropped by the policy.
    pub shed: u64,
    /// Frames that reached the services.
    pub delivered: u64,
    /// Shed frames whose drop picked a same-stream victim.
    pub coalesced: u64,
    /// shed / offered.
    pub shed_rate: f64,
    /// p99 of queue depth sampled at each admission.
    pub p99_queue_depth: u64,
    /// Deliveries that reached the subscribed consumer.
    pub consumed: u64,
}

struct CountingSink(std::sync::Arc<std::sync::atomic::AtomicU64>);

impl Consumer for CountingSink {
    fn name(&self) -> &str {
        "sink"
    }
    fn on_data(&mut self, _d: &Delivery, _ctx: &mut ConsumerCtx) {
        self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

fn policy_name(policy: OverloadPolicy) -> &'static str {
    match policy {
        OverloadPolicy::Shed => "shed",
        OverloadPolicy::CoalesceFrames => "coalesce",
        OverloadPolicy::Block => "block",
    }
}

/// Drives one burst of `multiplier * CAPACITY` frames through a fresh
/// facade configured with `policy` and returns the admission ledger.
pub fn run_point(policy: OverloadPolicy, multiplier: u64) -> OverloadPoint {
    let overload = Some(OverloadConfig { capacity: CAPACITY, policy });
    let mut g = Garnet::new(GarnetConfig { overload, ..GarnetConfig::default() });
    let token = g.issue_default_token("sink");
    let consumed = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let id = g
        .register_consumer(Box::new(CountingSink(std::sync::Arc::clone(&consumed))), &token, 0)
        .expect("fresh facade accepts a consumer");
    g.subscribe(id, TopicFilter::All, &token).expect("subscribe with a fresh token");

    let offered = multiplier * CAPACITY as u64;
    let mut frames = Vec::with_capacity(offered as usize);
    for i in 0..offered {
        let sensor = (i % u64::from(STREAMS)) as u32 + 1;
        let seq = (i / u64::from(STREAMS)) as u16;
        let stream = StreamId::new(SensorId::new(sensor).expect("small id"), StreamIndex::new(0));
        let bytes = DataMessage::builder(stream)
            .seq(SequenceNumber::new(seq))
            .payload(vec![sensor as u8, seq as u8])
            .build()
            .expect("tiny payload encodes")
            .encode_to_vec();
        frames.push((ReceiverId::new(0), -50.0, bytes));
    }
    let out = g.on_frames(frames, SimTime::from_millis(1));
    g.on_tick(SimTime::from_secs(1)); // flush reorder buffers
    let s = out.overload;
    OverloadPoint {
        policy,
        offered: s.offered,
        shed: s.shed,
        delivered: s.delivered,
        coalesced: s.coalesced,
        shed_rate: if s.offered == 0 { 0.0 } else { s.shed as f64 / s.offered as f64 },
        p99_queue_depth: g.queue_depth_p99(),
        consumed: consumed.load(std::sync::atomic::Ordering::Relaxed),
    }
}

/// The full sweep: every policy at 1x, 2x, 4x, 8x and 16x capacity.
pub fn run() -> (Vec<OverloadPoint>, Table) {
    let mut table = Table::new(
        format!("E17 — overload policies under burst (queue capacity {CAPACITY})"),
        &["policy", "offered", "shed", "delivered", "shed rate", "p99 depth", "consumed"],
    );
    let mut points = Vec::new();
    for policy in [OverloadPolicy::Shed, OverloadPolicy::CoalesceFrames, OverloadPolicy::Block] {
        for multiplier in [1u64, 2, 4, 8, 16] {
            let p = run_point(policy, multiplier);
            table.row(&[
                policy_name(policy).to_owned(),
                n(p.offered),
                n(p.shed),
                n(p.delivered),
                f2(p.shed_rate),
                n(p.p99_queue_depth),
                n(p.consumed),
            ]);
            points.push(p);
        }
    }
    (points, table)
}

/// Renders the sweep as the `BENCH_overload.json` payload.
pub fn overload_json() -> String {
    let (points, _) = run();
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"policy\": \"{}\", \"offered\": {}, \"shed\": {}, \"delivered\": {}, \
                 \"coalesced\": {}, \"shed_rate\": {:.4}, \"p99_queue_depth\": {}, \
                 \"consumed\": {}}}",
                policy_name(p.policy),
                p.offered,
                p.shed,
                p.delivered,
                p.coalesced,
                p.shed_rate,
                p.p99_queue_depth,
                p.consumed
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"e17_overload\",\n  \"driver\": \"Garnet::on_frames\",\n  \
         \"queue_capacity\": {CAPACITY},\n  \"streams\": {STREAMS},\n  \"points\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_point_balances_its_ledger_and_bounds_the_queue() {
        let (points, _) = run();
        assert_eq!(points.len(), 15);
        for p in &points {
            assert_eq!(p.shed + p.delivered, p.offered, "{p:?}");
            assert!(p.p99_queue_depth <= CAPACITY as u64, "{p:?}");
            match p.policy {
                OverloadPolicy::Block => {
                    assert_eq!(p.shed, 0, "block never drops: {p:?}");
                    assert_eq!(p.consumed, p.offered, "{p:?}");
                }
                _ => {
                    if p.offered > CAPACITY as u64 {
                        assert!(p.shed > 0, "a 2x+ burst must shed: {p:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn json_payload_covers_every_policy() {
        let json = overload_json();
        assert!(json.contains("\"bench\": \"e17_overload\""));
        for name in ["shed", "coalesce", "block"] {
            assert!(json.contains(&format!("\"policy\": \"{name}\"")), "{name} missing");
        }
    }
}
