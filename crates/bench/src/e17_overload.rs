//! E17 — bounded-queue overload behaviour: shed rate and queue depth
//! versus offered load, per admission policy.
//!
//! The paper's middleware sits between an unthrottled radio field and
//! consumers of finite appetite; §6's receiver arrays can hand the
//! Data Filtering Service far more frames than a step can absorb. This
//! experiment drives the routed facade with bursts from 1x to 16x the
//! queue capacity and records what each [`OverloadPolicy`] does: how
//! much it sheds, what survives, and how deep the queue actually gets
//! (p99 of depth-at-admission).

use garnet_core::middleware::{Garnet, GarnetConfig};
use garnet_core::router::{OverloadConfig, OverloadPolicy};
use garnet_core::{Consumer, ConsumerCtx, Delivery, PriorityClass, QosConfig, QosMode};
use garnet_net::TopicFilter;
use garnet_radio::ReceiverId;
use garnet_simkit::SimTime;
use garnet_wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};

use crate::e03_pipeline::{host_cores, sweep_json, ShardPoint};
use crate::table::{f2, n, Table};

/// Queue capacity every point runs with.
pub const CAPACITY: usize = 64;
/// Distinct sensor streams interleaved in the burst.
pub const STREAMS: u32 = 8;

/// One (policy, offered-load) measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverloadPoint {
    /// The admission policy under test.
    pub policy: OverloadPolicy,
    /// Frames offered to admission (multiple of [`CAPACITY`]).
    pub offered: u64,
    /// Frames dropped by the policy.
    pub shed: u64,
    /// Frames that reached the services.
    pub delivered: u64,
    /// Shed frames whose drop picked a same-stream victim.
    pub coalesced: u64,
    /// shed / offered.
    pub shed_rate: f64,
    /// p99 of queue depth sampled at each admission.
    pub p99_queue_depth: u64,
    /// Deliveries that reached the subscribed consumer.
    pub consumed: u64,
}

struct CountingSink(std::sync::Arc<std::sync::atomic::AtomicU64>);

impl Consumer for CountingSink {
    fn name(&self) -> &str {
        "sink"
    }
    fn on_data(&mut self, _d: &Delivery, _ctx: &mut ConsumerCtx) {
        self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

fn policy_name(policy: OverloadPolicy) -> &'static str {
    match policy {
        OverloadPolicy::Shed => "shed",
        OverloadPolicy::CoalesceFrames => "coalesce",
        OverloadPolicy::Block => "block",
    }
}

/// Drives one burst of `multiplier * CAPACITY` frames through a fresh
/// facade configured with `policy` and returns the admission ledger.
pub fn run_point(policy: OverloadPolicy, multiplier: u64) -> OverloadPoint {
    let overload = Some(OverloadConfig { capacity: CAPACITY, policy });
    let mut g = Garnet::new(GarnetConfig { overload, ..GarnetConfig::default() });
    let token = g.issue_default_token("sink");
    let consumed = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let id = g
        .register_consumer(Box::new(CountingSink(std::sync::Arc::clone(&consumed))), &token, 0)
        .expect("fresh facade accepts a consumer");
    g.subscribe(id, TopicFilter::All, &token).expect("subscribe with a fresh token");

    let offered = multiplier * CAPACITY as u64;
    let mut frames = Vec::with_capacity(offered as usize);
    for i in 0..offered {
        let sensor = (i % u64::from(STREAMS)) as u32 + 1;
        let seq = (i / u64::from(STREAMS)) as u16;
        let stream = StreamId::new(SensorId::new(sensor).expect("small id"), StreamIndex::new(0));
        let bytes = DataMessage::builder(stream)
            .seq(SequenceNumber::new(seq))
            .payload(vec![sensor as u8, seq as u8])
            .build()
            .expect("tiny payload encodes")
            .encode_to_vec();
        frames.push((ReceiverId::new(0), -50.0, bytes));
    }
    let out = g.on_frames(frames, SimTime::from_millis(1));
    g.on_tick(SimTime::from_secs(1)); // flush reorder buffers
    let s = out.overload;
    OverloadPoint {
        policy,
        offered: s.offered,
        shed: s.shed,
        delivered: s.delivered,
        coalesced: s.coalesced,
        shed_rate: if s.offered == 0 { 0.0 } else { s.shed as f64 / s.offered as f64 },
        p99_queue_depth: g.queue_depth_p99(),
        consumed: consumed.load(std::sync::atomic::Ordering::Relaxed),
    }
}

/// The full sweep: every policy at 1x, 2x, 4x, 8x and 16x capacity.
pub fn run() -> (Vec<OverloadPoint>, Table) {
    let mut table = Table::new(
        format!("E17 — overload policies under burst (queue capacity {CAPACITY})"),
        &["policy", "offered", "shed", "delivered", "shed rate", "p99 depth", "consumed"],
    );
    let mut points = Vec::new();
    for policy in [OverloadPolicy::Shed, OverloadPolicy::CoalesceFrames, OverloadPolicy::Block] {
        for multiplier in [1u64, 2, 4, 8, 16] {
            let p = run_point(policy, multiplier);
            table.row(&[
                policy_name(policy).to_owned(),
                n(p.offered),
                n(p.shed),
                n(p.delivered),
                f2(p.shed_rate),
                n(p.p99_queue_depth),
                n(p.consumed),
            ]);
            points.push(p);
        }
    }
    (points, table)
}

/// Renders the sweep as the `BENCH_overload.json` payload.
pub fn overload_json() -> String {
    let (points, _) = run();
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"policy\": \"{}\", \"offered\": {}, \"shed\": {}, \"delivered\": {}, \
                 \"coalesced\": {}, \"shed_rate\": {:.4}, \"p99_queue_depth\": {}, \
                 \"consumed\": {}}}",
                policy_name(p.policy),
                p.offered,
                p.shed,
                p.delivered,
                p.coalesced,
                p.shed_rate,
                p.p99_queue_depth,
                p.consumed
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"e17_overload\",\n  \"driver\": \"Garnet::on_frames\",\n  \
         \"queue_capacity\": {CAPACITY},\n  \"streams\": {STREAMS},\n  \"points\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

/// Drain limit applied to the slow consumer in the QoS scenario.
pub const SLOW_LIMIT: usize = 4;
/// Offered load of the QoS scenario, as a multiple of [`CAPACITY`].
pub const QOS_MULTIPLIER: u64 = 16;
/// The fixed sim window the QoS burst runs in (µs) — rates are
/// deliveries per sim-second, so the document is deterministic.
const QOS_WINDOW_US: u64 = 1_000_000;

/// One fast(+slow) co-subscription measurement under QoS scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QosPoint {
    /// Subscribed consumers (1 = fast alone, 2 = fast + slow).
    pub consumers: usize,
    /// Deliveries the fast (unlimited) consumer received.
    pub fast_consumed: u64,
    /// Deliveries the slow (drain-limited) consumer received.
    pub slow_consumed: u64,
    /// Data-class frames shed by the scheduler.
    pub data_shed: u64,
    /// Control-class events shed (must be zero, always).
    pub control_shed: u64,
}

/// Drives the ROADMAP's fast+slow scenario: a [`QOS_MULTIPLIER`]x
/// CoalesceFrames burst through a QoS-scheduled facade, fed in
/// 2x-capacity chunks so every call both sheds and delivers, with
/// flush ticks exercising the control tier. With `slow_present`, a second
/// consumer subscribes to everything and is drain-limited to
/// [`SLOW_LIMIT`] deliveries per facade pass — the claim under test is
/// that its backlog never perturbs the fast consumer.
pub fn run_qos_point(slow_present: bool) -> QosPoint {
    let mut g = Garnet::new(GarnetConfig {
        overload: Some(OverloadConfig {
            capacity: CAPACITY,
            policy: OverloadPolicy::CoalesceFrames,
        }),
        qos: QosConfig { mode: QosMode::Scheduled, ..QosConfig::default() },
        ..GarnetConfig::default()
    });
    let count = |g: &mut Garnet, name: &'static str| {
        let token = g.issue_default_token(name);
        let consumed = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let id = g
            .register_consumer(Box::new(CountingSink(std::sync::Arc::clone(&consumed))), &token, 0)
            .expect("fresh facade accepts a consumer");
        g.subscribe(id, TopicFilter::All, &token).expect("subscribe with a fresh token");
        (id, consumed)
    };
    let (_, fast) = count(&mut g, "fast");
    let slow = slow_present.then(|| {
        let (id, consumed) = count(&mut g, "slow");
        g.set_consumer_drain_limit(id, Some(SLOW_LIMIT));
        consumed
    });

    let offered = QOS_MULTIPLIER * CAPACITY as u64;
    let mut frames = Vec::with_capacity(offered as usize);
    for i in 0..offered {
        let sensor = (i % u64::from(STREAMS)) as u32 + 1;
        let seq = (i / u64::from(STREAMS)) as u16;
        let stream = StreamId::new(SensorId::new(sensor).expect("small id"), StreamIndex::new(0));
        let bytes = DataMessage::builder(stream)
            .seq(SequenceNumber::new(seq))
            .payload(vec![sensor as u8, seq as u8])
            .build()
            .expect("tiny payload encodes")
            .encode_to_vec();
        frames.push((ReceiverId::new(0), -50.0, bytes));
    }
    for (i, chunk) in frames.chunks(CAPACITY * 2).enumerate() {
        g.on_frames(chunk.to_vec(), SimTime::from_millis(1 + i as u64));
        if i % 8 == 7 {
            g.on_tick(SimTime::from_millis(2 + i as u64));
        }
    }
    g.on_tick(SimTime::from_micros(QOS_WINDOW_US));

    let ledgers = *g.qos_ledgers().expect("scheduler is active");
    QosPoint {
        consumers: 1 + usize::from(slow_present),
        fast_consumed: fast.load(std::sync::atomic::Ordering::Relaxed),
        slow_consumed: slow.map_or(0, |c| c.load(std::sync::atomic::Ordering::Relaxed)),
        data_shed: ledgers.class(PriorityClass::Data).shed,
        control_shed: ledgers.class(PriorityClass::Control).shed
            + ledgers.class(PriorityClass::Actuation).shed,
    }
}

/// The fast+slow sweep: the fast consumer alone, then with the
/// drain-limited co-subscriber.
pub fn run_qos() -> (Vec<QosPoint>, Table) {
    let mut table = Table::new(
        format!(
            "E17b — per-consumer QoS: fast+slow co-subscription at {QOS_MULTIPLIER}x \
             (queue capacity {CAPACITY})"
        ),
        &["consumers", "fast consumed", "slow consumed", "data shed", "control shed", "fast ratio"],
    );
    let points = vec![run_qos_point(false), run_qos_point(true)];
    let base = points[0].fast_consumed.max(1);
    for p in &points {
        table.row(&[
            n(p.consumers as u64),
            n(p.fast_consumed),
            n(p.slow_consumed),
            n(p.data_shed),
            n(p.control_shed),
            f2(p.fast_consumed as f64 / base as f64),
        ]);
    }
    (points, table)
}

/// Renders the fast+slow sweep as the `BENCH_qos.json` payload, in the
/// shared `sweep_json` schema: point 1 is the fast consumer alone,
/// point 2 adds the slow co-subscriber, and `speedup_vs_1` is therefore
/// the contended/uncontended delivery-rate ratio the acceptance gate
/// reads (≥ 0.95). Rates are per sim-second over the fixed
/// [`QOS_WINDOW_US`] window, so the document is deterministic.
pub fn qos_json() -> String {
    let (points, _) = run_qos();
    let rows: Vec<ShardPoint> = points
        .iter()
        .map(|p| ShardPoint {
            shards: p.consumers,
            frames: p.fast_consumed,
            elapsed_us: QOS_WINDOW_US,
            throughput_fps: p.fast_consumed as f64 / (QOS_WINDOW_US as f64 / 1e6),
        })
        .collect();
    sweep_json("e17_qos", "Garnet::on_frames (QoS scheduled, fast+slow)", host_cores(), &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_point_balances_its_ledger_and_bounds_the_queue() {
        let (points, _) = run();
        assert_eq!(points.len(), 15);
        for p in &points {
            assert_eq!(p.shed + p.delivered, p.offered, "{p:?}");
            assert!(p.p99_queue_depth <= CAPACITY as u64, "{p:?}");
            match p.policy {
                OverloadPolicy::Block => {
                    assert_eq!(p.shed, 0, "block never drops: {p:?}");
                    assert_eq!(p.consumed, p.offered, "{p:?}");
                }
                _ => {
                    if p.offered > CAPACITY as u64 {
                        assert!(p.shed > 0, "a 2x+ burst must shed: {p:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn fast_consumer_rate_is_unaffected_by_a_slow_co_subscriber() {
        let (points, _) = run_qos();
        let (alone, contended) = (points[0], points[1]);
        assert_eq!(alone.consumers, 1);
        assert_eq!(contended.consumers, 2);
        assert!(alone.fast_consumed > 0, "the burst must reach the fast consumer");
        // Acceptance gate: within 5% of the uncontended rate. The
        // scheduler actually owes exact equality — the slow consumer's
        // queue is its own — but the gate is the published contract.
        let ratio = contended.fast_consumed as f64 / alone.fast_consumed as f64;
        assert!(ratio >= 0.95, "fast consumer degraded: {ratio:.3} ({points:?})");
        assert_eq!(
            contended.fast_consumed, alone.fast_consumed,
            "a slow co-subscriber changed the fast consumer's deliveries"
        );
        assert!(
            contended.slow_consumed < contended.fast_consumed,
            "the drain limit must hold the slow consumer back"
        );
        for p in &points {
            assert_eq!(p.control_shed, 0, "control events must never shed: {p:?}");
            assert!(p.data_shed > 0, "a {QOS_MULTIPLIER}x burst must shed data: {p:?}");
        }
    }

    #[test]
    fn qos_json_is_the_shared_sweep_schema() {
        let json = qos_json();
        assert!(json.contains("\"bench\": \"e17_qos\""));
        assert!(json.contains("\"shards\": 1"));
        assert!(json.contains("\"shards\": 2"));
        // Exact equality renders as a ratio of exactly 1.000 in the
        // second point's speedup column — the ≥0.95 acceptance gate.
        assert!(json.contains("\"speedup_vs_1\": 1.000"), "gate ratio missing:\n{json}");
    }

    #[test]
    fn json_payload_covers_every_policy() {
        let json = overload_json();
        assert!(json.contains("\"bench\": \"e17_overload\""));
        for name in ["shed", "coalesce", "block"] {
            assert!(json.contains(&format!("\"policy\": \"{name}\"")), "{name} missing");
        }
    }
}
