//! E14 — end-to-end payload encryption overhead (§9's "high-level
//! abstraction of data streams supporting end-to-end encryption").
//!
//! The payload is opaque to the infrastructure (§4.3), so sealing costs
//! nothing anywhere except the two ends. The sweep measures the wire
//! overhead (a constant 8-byte tag) and the seal/open throughput across
//! payload sizes; the criterion bench times the same calls.

use garnet_wire::crypto::PayloadKey;
use garnet_wire::{SequenceNumber, StreamId};

use crate::table::{f2, n, Table};

/// One payload-size point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CryptoPoint {
    /// Plaintext bytes.
    pub payload_len: usize,
    /// Sealed bytes.
    pub sealed_len: usize,
    /// Wire overhead (bytes).
    pub overhead: usize,
    /// Seal throughput (MiB/s, wall clock).
    pub seal_mib_s: f64,
    /// Open throughput (MiB/s, wall clock).
    pub open_mib_s: f64,
}

/// A fixed bench key.
pub fn bench_key() -> PayloadKey {
    PayloadKey::from_bytes(*b"garnet-e14-bench")
}

/// Runs one payload size with `iters` iterations.
pub fn run_point(payload_len: usize, iters: u32) -> CryptoPoint {
    let key = bench_key();
    let stream = StreamId::from_raw(0x0000_0100);
    let plaintext = vec![0x42u8; payload_len];

    let start = std::time::Instant::now();
    let mut sealed = Vec::new();
    for i in 0..iters {
        sealed = key.seal(stream, SequenceNumber::new(i as u16), &plaintext);
        std::hint::black_box(&sealed);
    }
    let seal_elapsed = start.elapsed().as_secs_f64();

    let start = std::time::Instant::now();
    for _ in 0..iters {
        let opened =
            key.open(stream, SequenceNumber::new((iters - 1) as u16), &sealed).expect("authentic");
        std::hint::black_box(&opened);
    }
    let open_elapsed = start.elapsed().as_secs_f64();

    let total_bytes = payload_len as f64 * f64::from(iters);
    CryptoPoint {
        payload_len,
        sealed_len: sealed.len(),
        overhead: sealed.len() - payload_len,
        seal_mib_s: total_bytes / (1024.0 * 1024.0) / seal_elapsed.max(1e-9),
        open_mib_s: total_bytes / (1024.0 * 1024.0) / open_elapsed.max(1e-9),
    }
}

/// Runs the payload sweep.
pub fn run() -> (Vec<CryptoPoint>, Table) {
    let mut points = Vec::new();
    let mut table = Table::new(
        "E14 — end-to-end encryption: overhead & throughput (XTEA-CTR + CBC-MAC)",
        &["payload B", "sealed B", "overhead B", "seal MiB/s", "open MiB/s"],
    );
    for &len in &[16usize, 64, 256, 1024, 8192] {
        let p = run_point(len, 2_000);
        table.row(&[
            n(p.payload_len as u64),
            n(p.sealed_len as u64),
            n(p.overhead as u64),
            f2(p.seal_mib_s),
            f2(p.open_mib_s),
        ]);
        points.push(p);
    }
    (points, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use garnet_wire::crypto::TAG_LEN;

    #[test]
    fn overhead_is_constant_tag() {
        let (points, _) = run();
        for p in &points {
            assert_eq!(p.overhead, TAG_LEN, "payload {}", p.payload_len);
        }
    }

    #[test]
    fn throughput_is_positive() {
        let p = run_point(256, 100);
        assert!(p.seal_mib_s > 0.0);
        assert!(p.open_mib_s > 0.0);
    }
}
