//! E1 — Figure 2 codec: encode/decode round-trip cost across payload
//! sizes.
//!
//! Regenerates the message-format figure as a table of wire sizes and
//! verifies header overhead is the constant 11 bytes (9-byte fixed
//! header + 2-byte CRC) the format promises, independent of payload.

use garnet_wire::{DataMessage, SequenceNumber, StreamId};

use crate::table::{n, Table};

/// One measured point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodecPoint {
    /// Payload bytes.
    pub payload_len: usize,
    /// Total encoded bytes.
    pub encoded_len: usize,
    /// Header + trailer overhead bytes.
    pub overhead: usize,
}

/// The payload sizes the experiment sweeps (up to the 64 KiB wire
/// limit).
pub const PAYLOAD_SIZES: [usize; 8] = [0, 8, 16, 64, 256, 1024, 8192, 65535];

/// Builds a message with the given payload size (shared with the
/// criterion bench).
pub fn sample_message(payload_len: usize) -> DataMessage {
    DataMessage::builder(StreamId::from_raw(0x00AB_CD01))
        .seq(SequenceNumber::new(12_345))
        .payload(vec![0x5Au8; payload_len])
        .build()
        .expect("payload within limits")
}

/// Runs the sweep.
pub fn run() -> (Vec<CodecPoint>, Table) {
    let mut points = Vec::new();
    let mut table = Table::new(
        "E1 — Fig. 2 message codec (encode/decode round-trip)",
        &["payload B", "encoded B", "overhead B", "round-trip"],
    );
    for &len in &PAYLOAD_SIZES {
        let msg = sample_message(len);
        let bytes = msg.encode_to_vec();
        let (back, used) = DataMessage::decode(&bytes).expect("round trip");
        assert_eq!(back, msg);
        assert_eq!(used, bytes.len());
        let point =
            CodecPoint { payload_len: len, encoded_len: bytes.len(), overhead: bytes.len() - len };
        table.row(&[n(len as u64), n(bytes.len() as u64), n(point.overhead as u64), "ok".into()]);
        points.push(point);
    }
    (points, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_constant_11_bytes() {
        let (points, _) = run();
        assert_eq!(points.len(), PAYLOAD_SIZES.len());
        for p in &points {
            assert_eq!(p.overhead, 11, "payload {}", p.payload_len);
        }
    }

    #[test]
    fn table_renders() {
        let (_, t) = run();
        let s = t.render();
        assert!(s.contains("65535"));
    }
}
