//! E13 — multi-level consumers: chains of derived streams.
//!
//! "By supporting multi-level data consumption where each layer offers
//! increasingly enhanced services to successive levels, an arbitrarily
//! rich application infrastructure can be assembled" (§4.2). The sweep
//! builds a chain of relay consumers of increasing depth and measures
//! that (a) data traverses the whole chain, (b) per-level cost is flat
//! (depth d costs d dispatches, no superlinear blow-up), and (c) the
//! depth guard still catches runaway graphs.

use std::sync::atomic::Ordering;

use garnet_core::consumer::{Consumer, ConsumerCtx};
use garnet_core::filtering::Delivery;
use garnet_core::middleware::{Garnet, GarnetConfig};
use garnet_core::pipeline::SharedCountConsumer;
use garnet_net::TopicFilter;
use garnet_radio::ReceiverId;
use garnet_simkit::SimTime;
use garnet_wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};

use crate::table::{n, Table};

/// A consumer that republishes every payload on its derived stream 0.
struct Relay {
    name: String,
}

impl Consumer for Relay {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_data(&mut self, d: &Delivery, ctx: &mut ConsumerCtx) {
        ctx.publish_derived(StreamIndex::new(0), d.msg.payload().to_vec());
    }
}

/// One depth point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultilevelPoint {
    /// Chain depth (number of relay levels).
    pub depth: usize,
    /// Raw messages injected.
    pub injected: u64,
    /// Messages received by the terminal consumer.
    pub terminal_received: u64,
    /// Total dispatches the middleware performed.
    pub total_dispatches: u64,
    /// Publications dropped by the depth guard.
    pub depth_drops: u64,
}

/// Builds a relay chain of `depth` levels terminated by a counter, then
/// injects `msgs` raw messages.
pub fn run_point(depth: usize, msgs: u16, max_depth: u32) -> MultilevelPoint {
    let mut g =
        Garnet::new(GarnetConfig { max_derived_depth: max_depth, ..GarnetConfig::default() });
    let token = g.issue_default_token("chain");
    let raw_stream = StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0));

    let mut upstream = raw_stream;
    for level in 0..depth {
        let relay = Relay { name: format!("relay-{level}") };
        let id = g.register_consumer(Box::new(relay), &token, 0).unwrap();
        g.subscribe(id, TopicFilter::Stream(upstream), &token).unwrap();
        upstream = StreamId::new(g.virtual_sensor(id).unwrap(), StreamIndex::new(0));
    }
    let (terminal, count) = SharedCountConsumer::new("terminal");
    let tid = g.register_consumer(Box::new(terminal), &token, 0).unwrap();
    g.subscribe(tid, TopicFilter::Stream(upstream), &token).unwrap();

    for seq in 0..msgs {
        let frame = DataMessage::builder(raw_stream)
            .seq(SequenceNumber::new(seq))
            .payload(vec![7u8; 16])
            .build()
            .unwrap()
            .encode_to_vec();
        g.on_frame(ReceiverId::new(0), -50.0, &frame, SimTime::from_millis(u64::from(seq)));
    }
    MultilevelPoint {
        depth,
        injected: u64::from(msgs),
        terminal_received: count.load(Ordering::Relaxed),
        total_dispatches: g.dispatching().dispatched_count(),
        depth_drops: g.depth_drop_count(),
    }
}

/// Runs the depth sweep.
pub fn run() -> (Vec<MultilevelPoint>, Table) {
    let mut points = Vec::new();
    let mut table = Table::new(
        "E13 — multi-level consumers: relay chain depth",
        &["depth", "injected", "terminal received", "dispatches", "depth drops"],
    );
    for &depth in &[1usize, 2, 4, 8] {
        let p = run_point(depth, 200, 16);
        table.row(&[
            n(p.depth as u64),
            n(p.injected),
            n(p.terminal_received),
            n(p.total_dispatches),
            n(p.depth_drops),
        ]);
        points.push(p);
    }
    (points, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_traverses_full_chain() {
        for depth in [1usize, 4, 8] {
            let p = run_point(depth, 50, 16);
            assert_eq!(p.terminal_received, 50, "depth {depth}");
            assert_eq!(p.depth_drops, 0);
        }
    }

    #[test]
    fn dispatch_cost_is_linear_in_depth() {
        let d1 = run_point(1, 100, 16);
        let d8 = run_point(8, 100, 16);
        // depth+1 dispatched streams per injected message.
        assert_eq!(d1.total_dispatches, 200);
        assert_eq!(d8.total_dispatches, 900);
    }

    #[test]
    fn guard_truncates_overdeep_chains() {
        // Chain of 8 but the guard allows only 4 levels of derivation.
        let p = run_point(8, 20, 4);
        assert_eq!(p.terminal_received, 0, "data must not reach beyond the guard");
        assert!(p.depth_drops > 0);
    }
}
