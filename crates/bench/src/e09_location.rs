//! E9 — inferred location: accuracy vs receiver density, the effect of
//! consumer hints, and the downlink transmissions saved by targeting.
//!
//! §5: location inference exists "to reduce transmission costs when
//! forwarding control messages to sensors", and consumer hints add
//! information the infrastructure cannot see. The sweep measures (a)
//! mean localisation error against receiver grid density, with and
//! without hints; (b) the Message Replicator's transmitter activations
//! for a location-targeted request vs the flood fallback.

use garnet_core::filtering::Observation;
use garnet_core::location::{LocationConfig, LocationService};
use garnet_core::replicator::MessageReplicator;
use garnet_radio::geometry::Point;
use garnet_radio::{Propagation, Receiver, Transmitter};
use garnet_simkit::{SimRng, SimTime};
use garnet_wire::{ActuationTarget, RequestId, SensorCommand, SensorId, StreamUpdateRequest};

use crate::table::{f2, n, Table};

/// One density point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LocationPoint {
    /// Receivers per grid side.
    pub grid_side: usize,
    /// Mean localisation error without hints (m).
    pub error_m: f64,
    /// Mean localisation error with one consumer hint (m).
    pub error_with_hint_m: f64,
    /// Transmitter activations for a targeted request.
    pub targeted_broadcasts: u64,
    /// Transmitter activations when flooding (no location).
    pub flooded_broadcasts: u64,
}

const FIELD_SIDE: f64 = 200.0;

fn survey_positions(rng: &mut SimRng, count: usize) -> Vec<Point> {
    (0..count)
        .map(|_| Point::new(rng.next_f64() * FIELD_SIDE, rng.next_f64() * FIELD_SIDE))
        .collect()
}

/// Runs one grid-density point, averaging over `truth_positions`.
pub fn run_point(grid_side: usize, seed: u64) -> LocationPoint {
    let mut rng = SimRng::seed(seed);
    let spacing = FIELD_SIDE / (grid_side.max(2) - 1) as f64;
    let receivers = Receiver::grid(Point::ORIGIN, grid_side, grid_side, spacing, 400.0);
    let transmitters =
        Transmitter::grid(Point::ORIGIN, grid_side, grid_side, spacing, spacing * 0.9);
    let prop = Propagation::wifi_outdoor();
    let truths = survey_positions(&mut rng.fork("truths"), 20);

    let mut err_sum = 0.0;
    let mut err_hint_sum = 0.0;
    let mut samples = 0u32;
    let mut replicator = MessageReplicator::new(transmitters.clone());
    let mut flood_replicator = MessageReplicator::new(transmitters);
    let empty_location = LocationService::new(LocationConfig::default(), &receivers);

    for (si, &truth) in truths.iter().enumerate() {
        let sensor = SensorId::new(si as u32 + 1).unwrap();
        let mut loc = LocationService::new(
            LocationConfig {
                max_observations: 512,
                max_sightings_used: 8,
                ..LocationConfig::default()
            },
            &receivers,
        );
        // Each receiver rolls reception of 4 transmissions.
        for r in &receivers {
            let d = truth.distance_to(r.position());
            for _ in 0..4 {
                if let Some(rssi) = prop.deliver(d, &mut rng) {
                    loc.observe(&Observation {
                        sensor,
                        receiver: r.id(),
                        rssi_dbm: rssi,
                        at: SimTime::ZERO,
                    });
                }
            }
        }
        let Some(est) = loc.estimate(sensor, SimTime::ZERO) else {
            continue;
        };
        err_sum += est.position.distance_to(truth);

        // A consumer hint near the truth (site survey with 5 m noise).
        let hint = Point::new(
            truth.x + rng.standard_normal() * 5.0,
            truth.y + rng.standard_normal() * 5.0,
        );
        loc.hint(sensor, hint, 5.0, SimTime::ZERO);
        let est_hint = loc.estimate(sensor, SimTime::ZERO).expect("evidence present");
        err_hint_sum += est_hint.position.distance_to(truth);
        samples += 1;

        // Replication cost: targeted vs flooded.
        let req = StreamUpdateRequest {
            request_id: RequestId::new(si as u32),
            target: ActuationTarget::Sensor(sensor),
            command: SensorCommand::Ping,
            issued_at_us: 0,
            priority: 0,
        };
        replicator.plan(req, &loc, SimTime::ZERO);
        flood_replicator.plan(req, &empty_location, SimTime::ZERO);
    }

    LocationPoint {
        grid_side,
        error_m: err_sum / f64::from(samples.max(1)),
        error_with_hint_m: err_hint_sum / f64::from(samples.max(1)),
        targeted_broadcasts: replicator.broadcast_count(),
        flooded_broadcasts: flood_replicator.broadcast_count(),
    }
}

/// Runs the density sweep.
pub fn run() -> (Vec<LocationPoint>, Table) {
    let mut points = Vec::new();
    let mut table = Table::new(
        "E9 — inferred location: error vs receiver density; hints; targeted vs flooded downlink",
        &["grid", "receivers", "err m", "err+hint m", "targeted tx", "flooded tx"],
    );
    for &side in &[2usize, 3, 5, 8] {
        let p = run_point(side, 0xE9);
        table.row(&[
            format!("{side}x{side}"),
            n((side * side) as u64),
            f2(p.error_m),
            f2(p.error_with_hint_m),
            n(p.targeted_broadcasts),
            n(p.flooded_broadcasts),
        ]);
        points.push(p);
    }
    (points, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_improves_accuracy() {
        let sparse = run_point(2, 1);
        let dense = run_point(8, 1);
        assert!(
            dense.error_m < sparse.error_m,
            "dense {} vs sparse {}",
            dense.error_m,
            sparse.error_m
        );
    }

    #[test]
    fn hints_improve_accuracy() {
        for side in [2usize, 5] {
            let p = run_point(side, 2);
            assert!(
                p.error_with_hint_m < p.error_m,
                "grid {side}: hint {} vs {}",
                p.error_with_hint_m,
                p.error_m
            );
        }
    }

    #[test]
    fn targeting_saves_downlink_transmissions() {
        let p = run_point(5, 3);
        assert!(
            p.targeted_broadcasts < p.flooded_broadcasts,
            "targeted {} vs flooded {}",
            p.targeted_broadcasts,
            p.flooded_broadcasts
        );
    }
}
