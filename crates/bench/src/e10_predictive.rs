//! E10 — predictive vs reactive coordination on the water course
//! (§6.1).
//!
//! Two identical flood seasons are simulated — a training wave and an
//! evaluation wave — under two Super Coordinator modes. Policies:
//! *Rising* accelerates all stations moderately; *Flood* accelerates
//! them hard. In reactive mode the hard acceleration waits until water
//! actually crosses the flood threshold; in predictive mode the learned
//! `Rising → Flood` transition pre-fires it as soon as levels start
//! rising, so the flood peak is sampled at the fast rate from the start.
//! The metric: flood-stage readings captured during the evaluation wave
//! — the data a water authority actually wants.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use garnet_core::consumer::{Consumer, ConsumerCtx};
use garnet_core::coordinator::{CoordinationMode, PolicyAction};
use garnet_core::filtering::Delivery;
use garnet_core::middleware::GarnetConfig;
use garnet_core::pipeline::{PipelineConfig, PipelineSim};
use garnet_net::TopicFilter;
use garnet_radio::{Medium, Propagation, Reading};
use garnet_simkit::{SimDuration, SimTime};
use garnet_wire::{ActuationTarget, SensorCommand, StreamIndex, TargetArea};
use garnet_workloads::watercourse::{
    FloodWave, WatercourseScenario, STATE_FLOOD, STATE_NORMAL, STATE_RISING,
};
use garnet_workloads::FloodWatch;

use crate::table::{n, Table};

/// Results of one mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredictivePoint {
    /// High-stage readings (level ≥ rising threshold) delivered during
    /// the evaluation wave — the data resolution of the event.
    pub flood_readings: u64,
    /// Anticipatory actions the coordinator fired.
    pub anticipatory_actions: u64,
    /// Reactive actions the coordinator fired.
    pub reactive_actions: u64,
}

/// Counts delivered readings at or above a threshold after a start time.
struct FloodSampleCounter {
    name: String,
    threshold: f64,
    after: SimTime,
    count: Arc<AtomicU64>,
}

impl Consumer for FloodSampleCounter {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_data(&mut self, delivery: &Delivery, _ctx: &mut ConsumerCtx) {
        if delivery.delivered_at < self.after {
            return;
        }
        if let Some(r) = Reading::decode(delivery.msg.payload()) {
            if r.value >= self.threshold {
                self.count.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

const RISING_THRESHOLD: f64 = 1.4;
const FLOOD_THRESHOLD: f64 = 3.5;
const EVAL_WAVE_AT: u64 = 2_000; // seconds

fn scenario() -> WatercourseScenario {
    let wave = |at: u64| FloodWave {
        released_at: SimTime::from_secs(at),
        origin_x: -300.0,
        speed_mps: 2.0,
        peak_m: 4.0,
        length_m: 400.0,
    };
    WatercourseScenario {
        stations: 6,
        station_spacing_m: 200.0,
        base_interval: SimDuration::from_secs(60),
        base_level_m: 1.0,
        waves: vec![wave(200), wave(EVAL_WAVE_AT)],
        seed: 0xE10,
    }
}

/// Runs one coordinator mode over the two-wave season.
pub fn run_mode(mode: CoordinationMode) -> PredictivePoint {
    let s = scenario();
    let (receivers, transmitters) = s.masts();
    let config = PipelineConfig {
        seed: s.seed,
        medium: Medium::ideal(Propagation::UnitDisk { range_m: s.station_spacing_m * 0.9 }),
        garnet: GarnetConfig {
            receivers,
            transmitters,
            coordination: mode,
            ..GarnetConfig::default()
        },
        peer_range_m: None,
    };
    let mut sim = PipelineSim::new(config, s.field());
    for node in s.sensors() {
        sim.add_sensor(node);
    }

    // Policies: the whole river accelerates on Rising, goes hard on
    // Flood, and relaxes back to the base cadence on Normal (without the
    // relax policy both modes would stay fast after the training wave and
    // the comparison would be vacuous).
    let river = ActuationTarget::Area(TargetArea::new(600.0, 0.0, 1_500.0));
    for (state, interval_ms, anticipatable) in [
        // Relaxing back to the base cadence is a demotion: never
        // pre-fired on a prediction that the flood "will end".
        (STATE_NORMAL, 60_000u32, false),
        (STATE_RISING, 15_000, true),
        (STATE_FLOOD, 2_000, true),
    ] {
        sim.garnet_mut().register_coordinator_policy(
            state,
            PolicyAction {
                target: river,
                command: SensorCommand::SetReportInterval {
                    stream: StreamIndex::new(0),
                    interval_ms,
                },
                priority: 9,
                anticipatable,
            },
        );
    }

    let token = sim.garnet_mut().issue_default_token("authority");
    let (watch, _log) = FloodWatch::new("flood-watch", RISING_THRESHOLD, FLOOD_THRESHOLD);
    let watch_id = sim.garnet_mut().register_consumer(Box::new(watch), &token, 5).unwrap();
    sim.garnet_mut().subscribe(watch_id, TopicFilter::All, &token).unwrap();

    let count = Arc::new(AtomicU64::new(0));
    let counter = FloodSampleCounter {
        name: "flood-sampler".into(),
        threshold: RISING_THRESHOLD,
        after: SimTime::from_secs(EVAL_WAVE_AT),
        count: Arc::clone(&count),
    };
    let counter_id = sim.garnet_mut().register_consumer(Box::new(counter), &token, 0).unwrap();
    sim.garnet_mut().subscribe(counter_id, TopicFilter::All, &token).unwrap();

    sim.run_until(SimTime::from_secs(3_600));
    PredictivePoint {
        flood_readings: count.load(Ordering::Relaxed),
        anticipatory_actions: sim.garnet().coordinator().anticipatory_action_count(),
        reactive_actions: sim.garnet().coordinator().reactive_action_count(),
    }
}

/// Runs both modes.
pub fn run() -> (PredictivePoint, PredictivePoint, Table) {
    let reactive = run_mode(CoordinationMode::Reactive);
    let predictive = run_mode(CoordinationMode::Predictive { min_confidence: 0.5 });
    let mut table = Table::new(
        "E10 — water course: reactive vs predictive Super Coordinator",
        &["mode", "high-stage readings (eval wave)", "anticipatory actions", "reactive actions"],
    );
    table.row(&[
        "reactive".into(),
        n(reactive.flood_readings),
        n(reactive.anticipatory_actions),
        n(reactive.reactive_actions),
    ]);
    table.row(&[
        "predictive".into(),
        n(predictive.flood_readings),
        n(predictive.anticipatory_actions),
        n(predictive.reactive_actions),
    ]);
    (reactive, predictive, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictive_captures_more_flood_readings() {
        let (reactive, predictive, _) = run();
        assert_eq!(reactive.anticipatory_actions, 0);
        assert!(predictive.anticipatory_actions > 0, "prediction must fire");
        assert!(
            predictive.flood_readings > reactive.flood_readings,
            "predictive {} must beat reactive {}",
            predictive.flood_readings,
            reactive.flood_readings
        );
        assert!(reactive.flood_readings > 0, "reactive still samples the flood");
    }
}
