//! E8 — CORIE-style coupling vs Garnet decoupling (§7, Steere et al.).
//!
//! CORIE "assumes that at most a few competing applications will run
//! concurrently", so per-application coupling is tolerable there. The
//! sweep shows where it stops being tolerable: sensor-side transmissions
//! (the battery budget) and sensor reconfigurations under the coupled
//! model grow linearly in consumers, while the decoupled (Garnet) sensor
//! cost is flat. The second series validates the analytic model against
//! the actual middleware: a live pipeline with n subscribers keeps
//! sensor transmissions constant while fixed-network deliveries scale.

use std::sync::atomic::Ordering;

use garnet_baselines::coupled::{coupled_cost, decoupled_cost, CouplingReport};
use garnet_core::pipeline::SharedCountConsumer;
use garnet_net::TopicFilter;
use garnet_simkit::{SimDuration, SimTime};
use garnet_workloads::HabitatScenario;

use crate::table::{n, Table};

/// One consumer-count point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CouplingPoint {
    /// The analytic coupled model.
    pub coupled: CouplingReport,
    /// The analytic decoupled model.
    pub decoupled: CouplingReport,
    /// Measured: sensor transmissions in a live Garnet pipeline with
    /// this many subscribers.
    pub measured_sensor_tx: u64,
    /// Measured: total consumer deliveries in the live pipeline.
    pub measured_deliveries: u64,
}

/// Runs one point: analytic models plus a live single-sensor pipeline
/// with `consumers` subscribers.
pub fn run_point(consumers: usize) -> CouplingPoint {
    let interval = SimDuration::from_secs(2);
    let horizon = SimTime::from_secs(60);
    let coupled = coupled_cost(consumers, interval, horizon);
    let decoupled = decoupled_cost(consumers, interval, horizon);

    // Live validation: a 1-sensor habitat pipeline with n subscribers.
    let scenario = HabitatScenario {
        grid_side: 1,
        report_interval: interval,
        receiver_side: 1,
        ..HabitatScenario::default()
    };
    let mut sim = scenario.build();
    let token = sim.garnet_mut().issue_default_token("apps");
    let mut counters = Vec::new();
    for i in 0..consumers {
        let (c, count) = SharedCountConsumer::new(format!("app-{i}"));
        let id = sim.garnet_mut().register_consumer(Box::new(c), &token, 0).unwrap();
        sim.garnet_mut().subscribe(id, TopicFilter::All, &token).unwrap();
        counters.push(count);
    }
    sim.run_until(horizon);
    CouplingPoint {
        coupled,
        decoupled,
        measured_sensor_tx: sim.transmission_count(),
        measured_deliveries: counters.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
    }
}

/// Runs the consumer sweep.
pub fn run() -> (Vec<CouplingPoint>, Table) {
    let mut points = Vec::new();
    let mut table = Table::new(
        "E8 — coupled (CORIE-style) vs decoupled (Garnet): sensor cost vs consumers",
        &[
            "consumers",
            "coupled sensor tx",
            "Garnet sensor tx (model)",
            "Garnet sensor tx (measured)",
            "deliveries (measured)",
            "coupled reconfigs",
        ],
    );
    for &consumers in &[1usize, 2, 8, 32, 64] {
        let p = run_point(consumers);
        table.row(&[
            n(p.coupled.consumers as u64),
            n(p.coupled.sensor_tx),
            n(p.decoupled.sensor_tx),
            n(p.measured_sensor_tx),
            n(p.measured_deliveries),
            n(p.coupled.sensor_reconfigurations),
        ]);
        points.push(p);
    }
    (points, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_cost_flat_in_garnet_linear_when_coupled() {
        let (points, _) = run();
        let measured: Vec<u64> = points.iter().map(|p| p.measured_sensor_tx).collect();
        assert!(
            measured.windows(2).all(|w| w[0] == w[1]),
            "Garnet sensor tx must not depend on consumers: {measured:?}"
        );
        let coupled: Vec<u64> = points.iter().map(|p| p.coupled.sensor_tx).collect();
        assert!(coupled.windows(2).all(|w| w[1] > w[0]));
        // At 64 consumers the coupled model costs 64x the sensor battery.
        let last = points.last().unwrap();
        assert_eq!(last.coupled.sensor_tx, last.decoupled.sensor_tx * 64);
    }

    #[test]
    fn deliveries_scale_with_consumers() {
        let one = run_point(1);
        let many = run_point(8);
        assert!(many.measured_deliveries >= one.measured_deliveries * 7);
    }
}
