//! E11 — conflict mediation policies under contending consumers.
//!
//! n mutually-unaware consumers demand different reporting rates from
//! the same constrained sensor. The three Resource Manager policies
//! (§4.2/§6) trade satisfaction against sensor energy:
//!
//! * `DenyConflicts` — only the first demand is served;
//! * `PriorityWins` — the important consumer is served, others refused;
//! * `MergeMax` — everyone is served at the fastest (constraint-clean)
//!   rate, at the price of sensor transmissions.

use garnet_core::constraints::Constraint;
use garnet_core::resource::{Decision, MediationPolicy, ResourceManager, SensorProfile};
use garnet_net::SubscriberId;
use garnet_wire::{ActuationTarget, SensorCommand, SensorId, StreamIndex};

use crate::table::{f2, n, Table};

/// Results of one policy under one contention level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MediationPoint {
    /// The policy.
    pub policy: MediationPolicy,
    /// Contending consumers.
    pub consumers: usize,
    /// Requests granted.
    pub granted: u64,
    /// Requests denied.
    pub denied: u64,
    /// Fraction of consumers whose data need is met by the effective
    /// configuration (their requested rate or faster).
    pub satisfaction: f64,
    /// Effective sensor reporting rate (Hz) — the energy proxy.
    pub effective_rate_hz: f64,
}

/// Each consumer `i` demands a *faster* rate than its predecessor
/// (interval `1600 − 100·i` ms, floor 100 ms) with priority `i % 4` —
/// so a first-wins policy strands every later, hungrier consumer.
fn demand(i: usize) -> (u32, u8) {
    let interval = 1600u32.saturating_sub(100 * i as u32).max(100);
    (interval, (i % 4) as u8)
}

/// Runs one policy at one contention level against a sensor capped at
/// 20 Hz.
pub fn run_point(policy: MediationPolicy, consumers: usize) -> MediationPoint {
    let sensor = SensorId::new(1).unwrap();
    let mut rm = ResourceManager::new(policy);
    rm.register_profile(
        sensor,
        SensorProfile { constraints: vec![Constraint::parse("rate_hz <= 20").unwrap()] },
    );
    let mut granted = 0u64;
    for i in 0..consumers {
        let (interval_ms, priority) = demand(i);
        let d = rm.request(
            SubscriberId::new(i as u32),
            priority,
            &ActuationTarget::Sensor(sensor),
            &SensorCommand::SetReportInterval { stream: StreamIndex::new(0), interval_ms },
        );
        if matches!(d, Decision::Granted { .. }) {
            granted += 1;
        }
    }
    let effective_ms = rm.effective_interval_ms(sensor, StreamIndex::new(0));
    let effective_rate = effective_ms.map_or(0.0, |ms| 1000.0 / f64::from(ms));
    // A consumer is satisfied iff the effective rate covers its demand.
    let satisfied = (0..consumers)
        .filter(|&i| {
            let (interval_ms, _) = demand(i);
            effective_ms.is_some_and(|e| e <= interval_ms)
        })
        .count();
    MediationPoint {
        policy,
        consumers,
        granted,
        denied: rm.denied_count(),
        satisfaction: satisfied as f64 / consumers.max(1) as f64,
        effective_rate_hz: effective_rate,
    }
}

/// Runs the policy × contention sweep.
pub fn run() -> (Vec<MediationPoint>, Table) {
    let mut points = Vec::new();
    let mut table = Table::new(
        "E11 — conflict mediation: policy vs contention (sensor capped at 20 Hz)",
        &["policy", "consumers", "granted", "denied", "satisfaction", "effective Hz"],
    );
    for &policy in
        &[MediationPolicy::DenyConflicts, MediationPolicy::PriorityWins, MediationPolicy::MergeMax]
    {
        for &consumers in &[2usize, 8, 16] {
            let p = run_point(policy, consumers);
            table.row(&[
                format!("{policy:?}"),
                n(p.consumers as u64),
                n(p.granted),
                n(p.denied),
                f2(p.satisfaction),
                f2(p.effective_rate_hz),
            ]);
            points.push(p);
        }
    }
    (points, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_max_satisfies_everyone() {
        let p = run_point(MediationPolicy::MergeMax, 16);
        assert_eq!(p.granted, 16);
        assert_eq!(p.satisfaction, 1.0);
        // Effective rate = fastest demand (100ms → 10 Hz), within cap.
        assert!((p.effective_rate_hz - 10.0).abs() < 1e-9);
    }

    #[test]
    fn deny_conflicts_serves_first_only() {
        let p = run_point(MediationPolicy::DenyConflicts, 8);
        assert_eq!(p.granted, 1);
        assert_eq!(p.denied, 7);
        // Only the 100ms demand holder is satisfied.
        assert!((p.satisfaction - 1.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn priority_wins_partial_satisfaction() {
        let p = run_point(MediationPolicy::PriorityWins, 8);
        assert!(p.granted >= 1);
        assert!(p.satisfaction > 0.0);
        assert!(p.satisfaction < 1.0, "some lower-priority demand is refused");
    }

    #[test]
    fn merge_max_spends_most_sensor_energy() {
        let merge = run_point(MediationPolicy::MergeMax, 8);
        let deny = run_point(MediationPolicy::DenyConflicts, 8);
        assert!(merge.effective_rate_hz >= deny.effective_rate_hz);
    }
}
