//! E19 — flight-recorder overhead on the full service graph.
//!
//! The `trace` cargo feature compiles a per-hop flight recorder into the
//! routers (see `garnet-simkit`'s `trace` module); with the feature off
//! the tracer is a zero-sized no-op. This sweep measures what turning it
//! on costs: the **same** workload is pushed through the `ThreadedRouter`
//! and the resulting throughput is recorded under a driver string that
//! names the build (`trace=on` / `trace=off`), so running the bench once
//! per feature configuration yields two `BENCH_trace_overhead.json`
//! documents whose point-for-point throughput delta *is* the recorder's
//! overhead. The acceptance bar is a ≤ 2% delta with the feature off
//! (the no-op build must be indistinguishable from the seed).
//!
//! Emits `BENCH_trace_overhead.json` with the same schema as
//! `BENCH_pipeline_shards.json` (see [`crate::e03_pipeline::sweep_json`]),
//! `host_cores` included.

use garnet_core::router::{Router, Services, ShardedDispatch, ShardedIngest, ThreadedRouter};
use garnet_core::service::ServiceEvent;
use garnet_core::{ControlGraph, FilterConfig, ServiceOutput};
use garnet_net::{SubscriberId, SubscriptionTable, TopicFilter};
use garnet_radio::ReceiverId;
use garnet_simkit::SimTime;

use crate::e03_pipeline::{host_cores, shard_workload, sweep_json, ShardPoint};
use crate::table::{f2, n, Table};

/// Subscribers matching every stream (the dispatch fan-out).
const SUBSCRIBERS: u32 = 4;

/// The driver string naming this build's feature configuration, so the
/// two JSON documents are distinguishable after the fact.
pub fn driver() -> &'static str {
    if cfg!(feature = "trace") {
        "ThreadedRouter(trace=on)"
    } else {
        "ThreadedRouter(trace=off)"
    }
}

fn subscriptions() -> SubscriptionTable {
    let mut table = SubscriptionTable::new();
    for id in 0..SUBSCRIBERS {
        table.subscribe(SubscriberId::new(id), TopicFilter::All);
    }
    table
}

/// Pushes `workload` through a [`ThreadedRouter`] with `shards` ingest
/// and dispatch shards, returning the wall-clock sample. With the
/// `trace` feature on, every hop also lands in the flight recorder, so
/// the sample prices recording; with it off the tracer calls are inlined
/// no-ops. Panics if any delivery is lost.
pub fn run_trace_point(workload: &[garnet_wire::FrameBytes], shards: usize) -> ShardPoint {
    let table = subscriptions();
    let started = std::time::Instant::now();
    let mut router =
        ThreadedRouter::new(FilterConfig::default(), shards, shards, &table, ControlGraph::default);
    let mut delivered = 0u64;
    let mut count = |roots: Vec<garnet_core::RootOutput>| {
        for root in roots {
            for out in root.outputs {
                if matches!(out, ServiceOutput::Deliver { .. }) {
                    delivered += 1;
                }
            }
        }
    };
    for (i, frame) in workload.iter().enumerate() {
        let at = SimTime::from_micros(i as u64);
        count(router.push_frame(ReceiverId::new(0), -40.0, frame.clone(), at));
    }
    count(router.push_flush(SimTime::from_secs(3_600)));
    let report = router.finish();
    count(report.outputs);
    let elapsed = started.elapsed();
    assert!(report.failures.is_empty(), "trace sweep lost work: {:?}", report.failures);
    let frames = workload.len() as u64;
    assert_eq!(delivered, frames * u64::from(SUBSCRIBERS), "trace sweep lost deliveries");
    // Guard that the sweep measures what it claims to: records exist
    // exactly when the recorder is compiled in.
    assert_eq!(
        report.trace.records.is_empty(),
        !cfg!(feature = "trace"),
        "flight recorder state disagrees with the build's feature set"
    );
    ShardPoint {
        shards,
        frames,
        elapsed_us: elapsed.as_micros() as u64,
        throughput_fps: frames as f64 / elapsed.as_secs_f64(),
    }
}

/// Pushes `workload` through the single-threaded FIFO [`Router`] (whose
/// per-hop trace call sits directly in [`Router::step`]) and returns the
/// wall-clock sample, with `shards` fixed at 1. The criterion bench runs
/// this alongside the threaded points so the recorder's cost is priced
/// on both drivers.
pub fn run_fifo_point(workload: &[garnet_wire::FrameBytes]) -> ShardPoint {
    let mut dispatch = ShardedDispatch::new(1);
    for id in 0..SUBSCRIBERS {
        dispatch.register_subscriber();
        dispatch.subscribe(SubscriberId::new(id), TopicFilter::All);
    }
    let started = std::time::Instant::now();
    let mut router = Router::new(Services {
        ingest: ShardedIngest::new(FilterConfig::default(), 1),
        dispatch,
        control: ControlGraph::default(),
    });
    let mut delivered = 0u64;
    let mut pump = |router: &mut Router, now: SimTime| {
        while let Some(outs) = router.step(now) {
            for out in outs {
                if matches!(out, ServiceOutput::Deliver { .. }) {
                    delivered += 1;
                }
            }
        }
    };
    for (i, frame) in workload.iter().enumerate() {
        let at = SimTime::from_micros(i as u64);
        router.admit_frame(ReceiverId::new(0), -40.0, frame.clone(), at);
        pump(&mut router, at);
    }
    let end = SimTime::from_secs(3_600);
    router.enqueue(ServiceEvent::FlushReorder);
    pump(&mut router, end);
    let elapsed = started.elapsed();
    let frames = workload.len() as u64;
    assert_eq!(delivered, frames * u64::from(SUBSCRIBERS), "FIFO pump lost deliveries");
    ShardPoint {
        shards: 1,
        frames,
        elapsed_us: elapsed.as_micros() as u64,
        throughput_fps: frames as f64 / elapsed.as_secs_f64(),
    }
}

/// Runs the trace-overhead sweep and renders the JSON document for
/// `BENCH_trace_overhead.json`.
pub fn trace_sweep_json(frames: u32, sensors: u32, shard_counts: &[usize]) -> String {
    let workload = shard_workload(frames, sensors);
    let points: Vec<ShardPoint> =
        shard_counts.iter().map(|&s| run_trace_point(&workload, s)).collect();
    sweep_json("e19_trace_overhead", driver(), host_cores(), &points)
}

/// Runs the sweep for the experiments binary.
pub fn run() -> (Vec<ShardPoint>, Table) {
    let workload = shard_workload(20_000, 64);
    let mut points = Vec::new();
    let mut table = Table::new(
        format!("E19 — flight-recorder overhead: {} throughput vs shards", driver()),
        &["shards", "frames", "elapsed µs", "frames/s", "speedup vs 1"],
    );
    for shards in [1usize, 2, 4] {
        points.push(run_trace_point(&workload, shards));
    }
    let base = points[0].throughput_fps;
    for p in &points {
        table.row(&[
            n(p.shards as u64),
            n(p.frames),
            n(p.elapsed_us),
            f2(p.throughput_fps),
            f2(p.throughput_fps / base),
        ]);
    }
    (points, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_sweep_is_lossless_and_names_the_build() {
        let json = trace_sweep_json(1_000, 16, &[1, 2]);
        assert!(json.contains("\"bench\": \"e19_trace_overhead\""));
        assert!(json.contains(&format!("\"driver\": \"{}\"", driver())));
        assert!(json.contains("\"host_cores\""));
        assert!(json.contains("\"shards\": 1"));
        assert!(json.contains("\"shards\": 2"));
        assert!(json.contains("\"frames\": 1000"));
    }

    #[test]
    fn fifo_point_is_lossless() {
        let workload = shard_workload(500, 8);
        let p = run_fifo_point(&workload);
        assert_eq!(p.frames, 500);
        assert_eq!(p.shards, 1);
    }
}
