//! E4 — duplicate elimination under overlapping receivers and loss.
//!
//! "Receivers … are arranged such that their effective receiving areas
//! may overlap. Such coverage improves data reception but causes
//! potential duplication of data messages" (§4.2). The sweep covers the
//! trade-off directly: overlap factor k ∈ {1..8} against frame loss
//! probability — more overlap means more duplicates to filter but fewer
//! messages lost outright.

use garnet_core::filtering::{FilterConfig, FilteringService};
use garnet_radio::ReceiverId;
use garnet_simkit::{SimDuration, SimRng, SimTime};
use garnet_workloads::TrafficGen;

use crate::table::{f3, n, Table};

/// One sweep point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FilteringPoint {
    /// Receivers hearing each transmission.
    pub overlap: u32,
    /// Per-copy loss probability.
    pub loss: f64,
    /// Unique messages transmitted.
    pub transmitted: u64,
    /// Frame copies that reached the filter.
    pub copies_arrived: u64,
    /// Unique messages delivered downstream.
    pub delivered: u64,
    /// Duplicates eliminated.
    pub duplicates: u64,
    /// Delivery completeness (delivered / transmitted).
    pub completeness: f64,
}

/// Runs one `(overlap, loss)` point over `n` messages.
pub fn run_point(overlap: u32, loss: f64, n_msgs: u16, seed: u64) -> FilteringPoint {
    let mut gen = TrafficGen::new(seed);
    let frames = gen.burst(1, n_msgs, 16, SimDuration::from_millis(5), overlap, 0.05);
    let mut rng = SimRng::seed(seed ^ 0x10C0);
    let mut filter = FilteringService::new(FilterConfig::default());
    let mut copies_arrived = 0u64;
    let mut delivered = 0u64;
    let mut last_t = SimTime::ZERO;
    for f in frames {
        if rng.chance(loss) {
            continue; // this copy faded out
        }
        copies_arrived += 1;
        last_t = last_t.max(f.at);
        delivered +=
            filter.on_frame(ReceiverId::new(f.receiver), -50.0, &f.frame, f.at).deliveries.len()
                as u64;
    }
    // Flush reorder buffers.
    delivered += filter.on_tick(last_t.saturating_add(SimDuration::from_secs(10))).len() as u64;
    FilteringPoint {
        overlap,
        loss,
        transmitted: u64::from(n_msgs),
        copies_arrived,
        delivered,
        duplicates: filter.duplicate_count(),
        completeness: delivered as f64 / f64::from(n_msgs),
    }
}

/// One ablation point for the reorder-timeout sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeoutAblationPoint {
    /// Reorder timeout (ms).
    pub timeout_ms: u64,
    /// Unique messages delivered.
    pub delivered: u64,
    /// Gaps accepted (messages declared lost and skipped past).
    pub gaps: u64,
    /// Messages that waited in the reorder buffer.
    pub reordered: u64,
}

/// Ablation: reorder-timeout under heavy local reordering and loss.
/// Short timeouts give up on out-of-order messages quickly (more
/// spurious gaps, lower latency); long ones wait for stragglers.
pub fn run_timeout_ablation(timeout_ms: u64, seed: u64) -> TimeoutAblationPoint {
    let mut gen = TrafficGen::new(seed);
    let mut frames = gen.burst(1, 2_000, 16, SimDuration::from_millis(5), 2, 0.4);
    let _ = gen.corrupt(&mut frames, 0.0);
    let mut rng = SimRng::seed(seed ^ 0xAB1A);
    let mut filter = FilteringService::new(FilterConfig {
        reorder_timeout: SimDuration::from_millis(timeout_ms),
        ..FilterConfig::default()
    });
    let mut delivered = 0u64;
    let mut clock = SimTime::ZERO;
    for f in frames {
        if rng.chance(0.1) {
            continue;
        }
        clock = clock.max(f.at);
        delivered +=
            filter.on_frame(ReceiverId::new(f.receiver), -50.0, &f.frame, f.at).deliveries.len()
                as u64;
        // Run the maintenance tick as the middleware would.
        while filter.next_deadline().is_some_and(|d| d <= clock) {
            delivered += filter.on_tick(clock).len() as u64;
        }
    }
    delivered += filter.on_tick(clock.saturating_add(SimDuration::from_secs(60))).len() as u64;
    TimeoutAblationPoint {
        timeout_ms,
        delivered,
        gaps: filter.gap_count(),
        reordered: filter.reordered_count(),
    }
}

/// Runs the reorder-timeout ablation sweep.
pub fn run_ablation() -> (Vec<TimeoutAblationPoint>, Table) {
    let mut points = Vec::new();
    let mut table = Table::new(
        "E4a — ablation: reorder timeout under 40% local reordering, 10% loss",
        &["timeout ms", "delivered", "gaps accepted", "buffered"],
    );
    for &ms in &[1u64, 10, 50, 200, 1000] {
        let p = run_timeout_ablation(ms, 21);
        table.row(&[n(p.timeout_ms), n(p.delivered), n(p.gaps), n(p.reordered)]);
        points.push(p);
    }
    (points, table)
}

/// Runs the overlap × loss sweep.
pub fn run() -> (Vec<FilteringPoint>, Table) {
    let mut points = Vec::new();
    let mut table = Table::new(
        "E4 — duplicate filtering: receiver overlap k × loss",
        &["k", "loss", "copies in", "delivered", "dups removed", "completeness"],
    );
    for &overlap in &[1u32, 2, 4, 8] {
        for &loss in &[0.0, 0.1, 0.3] {
            let p = run_point(overlap, loss, 2_000, 42);
            table.row(&[
                n(u64::from(p.overlap)),
                f3(p.loss),
                n(p.copies_arrived),
                n(p.delivered),
                n(p.duplicates),
                f3(p.completeness),
            ]);
            points.push(p);
        }
    }
    (points, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_single_receiver_is_lossless_dupless() {
        let p = run_point(1, 0.0, 500, 1);
        assert_eq!(p.delivered, 500);
        assert_eq!(p.duplicates, 0);
        assert_eq!(p.completeness, 1.0);
    }

    #[test]
    fn overlap_creates_duplicates_filter_removes_them() {
        let p = run_point(4, 0.0, 500, 2);
        assert_eq!(p.copies_arrived, 2_000);
        assert_eq!(p.delivered, 500, "unique messages exactly once");
        assert_eq!(p.duplicates, 1_500);
    }

    #[test]
    fn overlap_restores_completeness_under_loss() {
        // The paper's point: overlap "improves data reception".
        let lone = run_point(1, 0.3, 2_000, 3);
        let redundant = run_point(4, 0.3, 2_000, 3);
        assert!(lone.completeness < 0.8, "lone={}", lone.completeness);
        assert!(redundant.completeness > 0.95, "redundant={}", redundant.completeness);
        assert!(redundant.duplicates > 0);
    }

    #[test]
    fn timeout_ablation_trades_gaps_for_patience() {
        let (points, _) = run_ablation();
        // Delivery is exactly-once regardless of timeout.
        for p in &points {
            assert!(p.delivered <= 2_000, "over-delivery at {}ms", p.timeout_ms);
        }
        // Messages were genuinely buffered in every configuration.
        assert!(points.iter().all(|p| p.reordered > 0));
        // A longer timeout never accepts more gaps than a shorter one
        // (monotone patience).
        for w in points.windows(2) {
            assert!(
                w[1].gaps <= w[0].gaps,
                "{}ms gaps {} > {}ms gaps {}",
                w[1].timeout_ms,
                w[1].gaps,
                w[0].timeout_ms,
                w[0].gaps
            );
        }
    }

    #[test]
    fn completeness_never_exceeds_one() {
        for seed in 0..5 {
            let p = run_point(8, 0.1, 300, seed);
            assert!(p.completeness <= 1.0 + 1e-9, "over-delivery at seed {seed}");
        }
    }
}
