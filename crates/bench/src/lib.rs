//! Experiment implementations regenerating every quantitative claim and
//! comparison in the paper (see `DESIGN.md` §5 for the experiment
//! index, and `EXPERIMENTS.md` for paper-vs-measured).
//!
//! Each `eNN_*` module computes one experiment's rows; the
//! `experiments` binary prints them all, and the Criterion benches in
//! `benches/` time the hot paths of the same code.

pub mod e01_codec;
pub mod e02_capacity;
pub mod e03_pipeline;
pub mod e04_filtering;
pub mod e05_dispatch;
pub mod e06_retri;
pub mod e07_fjords;
pub mod e08_coupling;
pub mod e09_location;
pub mod e10_predictive;
pub mod e11_mediation;
pub mod e12_orphanage;
pub mod e13_multilevel;
pub mod e14_crypto;
pub mod e15_multihop;
pub mod e16_quiesce;
pub mod e17_overload;
pub mod e18_dispatch_shards;
pub mod e19_trace_overhead;
pub mod e20_runtime_mode;
pub mod e21_batch;
pub mod e22_store;
pub mod e23_match_cache;
pub mod e24_telemetry;
pub mod table;
