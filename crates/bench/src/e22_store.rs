//! E22 — archive overhead: the durable frame tap priced through the
//! facade.
//!
//! The archive-before-admit tap (`GarnetConfig.archive`) logs every
//! offered frame before the driver sees it, so its cost lands on the
//! ingest hot path. This sweep prices that decision: the identical
//! workload through the facade with the archive off, with the
//! in-memory backend, and with the file backend, on both engines (the
//! FIFO driver appends inline; the threaded driver hands encoded
//! records to the `garnet-archiver` worker). Every mode must still
//! deliver every frame, and every archiving mode must account for
//! every offered frame in its ledger — the sweep prices durability, it
//! never trades frames for it.
//!
//! Emits `BENCH_store.json` via the shared sweep schema
//! ([`crate::e03_pipeline::sweep_json`], `host_cores` recorded). One
//! schema caveat: the `shards` field of each point carries the **mode
//! index** — the sweep variable — not a worker count; the topology is
//! fixed at one shard per stage.

use garnet_core::middleware::{Garnet, GarnetConfig};
use garnet_core::pipeline::SharedCountConsumer;
use garnet_core::{ArchiveBackend, ArchiveConfig, DriverKind};
use garnet_net::TopicFilter;
use garnet_radio::ReceiverId;
use garnet_simkit::SimTime;

use crate::e03_pipeline::{host_cores, shard_workload, sweep_json, ShardPoint};
use crate::table::{f2, n, Table};

/// The archive configurations the sweep visits, in point order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArchiveMode {
    /// No archive configured: the baseline frame path.
    Off,
    /// In-memory segment store (durability machinery, no disk).
    Memory,
    /// File-backed segment store under a scratch directory.
    File,
}

impl ArchiveMode {
    /// Every mode, in the order the sweep emits points.
    pub const ALL: [ArchiveMode; 3] = [ArchiveMode::Off, ArchiveMode::Memory, ArchiveMode::File];

    /// The `shards` value the point carries in the JSON document.
    pub fn index(self) -> usize {
        match self {
            ArchiveMode::Off => 0,
            ArchiveMode::Memory => 1,
            ArchiveMode::File => 2,
        }
    }

    fn label(self) -> &'static str {
        match self {
            ArchiveMode::Off => "off",
            ArchiveMode::Memory => "memory",
            ArchiveMode::File => "file",
        }
    }

    fn config(self, scratch: &std::path::Path) -> Option<ArchiveConfig> {
        match self {
            ArchiveMode::Off => None,
            ArchiveMode::Memory => {
                Some(ArchiveConfig { backend: ArchiveBackend::Memory, ..ArchiveConfig::default() })
            }
            ArchiveMode::File => Some(ArchiveConfig {
                backend: ArchiveBackend::Directory(scratch.to_path_buf()),
                ..ArchiveConfig::default()
            }),
        }
    }
}

/// Pushes `workload` through a facade in `driver` mode with the given
/// archive configuration, returning the wall-clock sample. Panics if
/// any delivery is lost or — in archiving modes — if the archive
/// ledger fails to account for every offered frame as archived.
pub fn run_archive_point(
    workload: &[garnet_wire::FrameBytes],
    driver: DriverKind,
    mode: ArchiveMode,
) -> ShardPoint {
    let scratch = std::env::temp_dir().join(format!(
        "garnet-e22-{}-{:?}-{}",
        std::process::id(),
        driver,
        mode.label()
    ));
    let _ = std::fs::remove_dir_all(&scratch);
    // The whole workload is offered in one burst, before the threaded
    // writer gets a chance to drain: size the queue to the burst so
    // the sweep prices the tap itself, not the refusal path.
    let archive = mode.config(&scratch).map(|mut c| {
        c.queue_capacity = workload.len() + 16;
        c
    });
    let started = std::time::Instant::now();
    let mut garnet = Garnet::new(GarnetConfig { driver, archive, ..GarnetConfig::default() });
    let token = garnet.issue_default_token("bench");
    let (consumer, delivered) = SharedCountConsumer::new("bench");
    let id = garnet.register_consumer(Box::new(consumer), &token, 0).unwrap();
    garnet.subscribe(id, TopicFilter::All, &token).unwrap();
    let frames: Vec<_> = workload
        .iter()
        .enumerate()
        .map(|(i, f)| (ReceiverId::new((i % 4) as u32), -40.0, f.clone()))
        .collect();
    let last = SimTime::from_micros(workload.len() as u64);
    garnet.on_frames(frames, last);
    if let Some(ledger) = garnet.archive_ledger() {
        assert_eq!(ledger.offered, workload.len() as u64, "{driver:?}/{mode:?} missed the tap");
    }
    garnet.on_tick(SimTime::from_secs(3_600));
    garnet.shutdown(SimTime::from_secs(3_600)).expect("archive must flush at shutdown");
    let elapsed = started.elapsed();
    if let Some(ledger) = garnet.archive_ledger() {
        assert_eq!(ledger.archived, ledger.offered, "{driver:?}/{mode:?} dropped records");
        assert_eq!(ledger.pending, 0, "{driver:?}/{mode:?} left appends pending");
    }
    let count = delivered.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(count, workload.len() as u64, "{driver:?}/{mode:?} lost deliveries");
    let _ = std::fs::remove_dir_all(&scratch);
    ShardPoint {
        shards: mode.index(),
        frames: count,
        elapsed_us: elapsed.as_micros() as u64,
        throughput_fps: count as f64 / elapsed.as_secs_f64(),
    }
}

/// Runs the archive-mode sweep on one engine: off, memory, file.
pub fn run_archive_sweep(
    workload: &[garnet_wire::FrameBytes],
    driver: DriverKind,
) -> Vec<ShardPoint> {
    ArchiveMode::ALL.iter().map(|&mode| run_archive_point(workload, driver, mode)).collect()
}

/// Runs the FIFO-engine sweep and renders the JSON document for
/// `BENCH_store.json` (the `shards` field of each point carries the
/// archive-mode index: 0 off, 1 memory, 2 file).
pub fn store_overhead_json(frames: u32, sensors: u32) -> String {
    let workload = shard_workload(frames, sensors);
    let points = run_archive_sweep(&workload, DriverKind::Fifo);
    sweep_json("e22_store", "Garnet(Fifo)+archive", host_cores(), &points)
}

/// Runs the sweep for the experiments binary: both engines, so the
/// table shows the inline append cost (FIFO) against the handoff cost
/// (threaded worker) side by side.
pub fn run() -> (Vec<ShardPoint>, Table) {
    let workload = shard_workload(20_000, 64);
    let mut table = Table::new(
        "E22 — archive overhead: durable frame tap priced through the facade",
        &["engine", "archive", "frames", "elapsed µs", "frames/s", "slowdown vs off"],
    );
    let mut all = Vec::new();
    for driver in [DriverKind::Fifo, DriverKind::Threaded] {
        let points = run_archive_sweep(&workload, driver);
        let base = points[0].throughput_fps;
        for (mode, p) in ArchiveMode::ALL.iter().zip(&points) {
            table.row(&[
                format!("{driver:?}").to_lowercase(),
                mode.label().into(),
                n(p.frames),
                n(p.elapsed_us),
                f2(p.throughput_fps),
                f2(base / p.throughput_fps),
            ]);
        }
        all.extend(points);
    }
    (all, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archive_sweep_is_lossless_on_both_engines() {
        let workload = shard_workload(1_000, 16);
        for driver in [DriverKind::Fifo, DriverKind::Threaded] {
            for p in run_archive_sweep(&workload, driver) {
                assert_eq!(p.frames, 1_000, "{driver:?} mode {} lost frames", p.shards);
            }
        }
    }

    #[test]
    fn store_overhead_json_uses_the_shared_sweep_schema() {
        let json = store_overhead_json(500, 8);
        assert!(json.contains("\"bench\": \"e22_store\""));
        assert!(json.contains("\"driver\": \"Garnet(Fifo)+archive\""));
        assert!(json.contains("\"host_cores\""));
        assert!(json.contains("\"frames\": 500"));
        // One point per archive mode; `shards` carries the mode index.
        assert_eq!(json.matches("{\"shards\":").count(), ArchiveMode::ALL.len());
    }
}
