//! E12 — the Orphanage: plug-and-play streams, bounded retention and
//! late-subscriber replay.
//!
//! "The Orphanage is a default consumer process which receives
//! un-configured data" (§4.2). A freshly deployed sensor transmits into
//! the void; when a consumer eventually subscribes it receives the
//! retained backlog. The sweep measures replay completeness against the
//! subscription delay and shows retention memory stays bounded no matter
//! how many unclaimed streams appear.

use std::sync::atomic::Ordering;

use garnet_core::middleware::{Garnet, GarnetConfig};
use garnet_core::orphanage::OrphanageConfig;
use garnet_core::pipeline::SharedCountConsumer;
use garnet_net::TopicFilter;
use garnet_radio::ReceiverId;
use garnet_simkit::SimTime;
use garnet_wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};

use crate::table::{n, Table};

/// One delay point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrphanagePoint {
    /// Messages sent before anyone subscribed.
    pub sent_before_subscribe: u64,
    /// Retention cap per stream.
    pub retain_cap: usize,
    /// Messages replayed at subscription.
    pub replayed: u64,
    /// Messages the consumer received in total (replay + live).
    pub total_received: u64,
}

fn frame(sensor: u32, seq: u16) -> Vec<u8> {
    DataMessage::builder(StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0)))
        .seq(SequenceNumber::new(seq))
        .payload(vec![seq as u8])
        .build()
        .unwrap()
        .encode_to_vec()
}

/// Runs one point: `before` unclaimed messages, a subscription, then
/// `after` live messages.
pub fn run_point(before: u16, after: u16, retain_cap: usize) -> OrphanagePoint {
    let mut g = Garnet::new(GarnetConfig {
        orphanage: OrphanageConfig { retain_per_stream: retain_cap, max_streams: 1024 },
        ..GarnetConfig::default()
    });
    for seq in 0..before {
        g.on_frame(ReceiverId::new(0), -50.0, &frame(1, seq), SimTime::from_millis(u64::from(seq)));
    }
    let token = g.issue_default_token("late");
    let (consumer, count) = SharedCountConsumer::new("late");
    let id = g.register_consumer(Box::new(consumer), &token, 0).unwrap();
    let stream = StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0));
    let (replayed, _) =
        g.subscribe_at(id, TopicFilter::Stream(stream), &token, SimTime::from_secs(10)).unwrap();
    for seq in before..before + after {
        g.on_frame(
            ReceiverId::new(0),
            -50.0,
            &frame(1, seq),
            SimTime::from_millis(10_000 + u64::from(seq)),
        );
    }
    OrphanagePoint {
        sent_before_subscribe: u64::from(before),
        retain_cap,
        replayed: replayed as u64,
        total_received: count.load(Ordering::Relaxed),
    }
}

/// Memory-bound check: `streams` unclaimed streams under a
/// `max_streams` cap; returns (tracked, evicted).
pub fn memory_bound(streams: u32, max_streams: usize) -> (usize, u64) {
    let mut g = Garnet::new(GarnetConfig {
        orphanage: OrphanageConfig { retain_per_stream: 8, max_streams },
        ..GarnetConfig::default()
    });
    for s in 1..=streams {
        g.on_frame(ReceiverId::new(0), -50.0, &frame(s, 0), SimTime::from_millis(u64::from(s)));
    }
    (g.orphanage().stream_count(), g.orphanage().total_evicted())
}

/// Runs the sweep.
pub fn run() -> (Vec<OrphanagePoint>, Table) {
    let mut points = Vec::new();
    let mut table = Table::new(
        "E12 — orphanage: late-subscriber replay vs retention cap",
        &["sent before", "cap", "replayed", "total received"],
    );
    for &(before, cap) in &[(10u16, 128usize), (100, 128), (500, 128), (500, 64), (500, 1024)] {
        let p = run_point(before, 20, cap);
        table.row(&[
            n(p.sent_before_subscribe),
            n(p.retain_cap as u64),
            n(p.replayed),
            n(p.total_received),
        ]);
        points.push(p);
    }
    (points, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_complete_within_cap() {
        let p = run_point(50, 20, 128);
        assert_eq!(p.replayed, 50);
        assert_eq!(p.total_received, 70);
    }

    #[test]
    fn replay_truncates_to_cap() {
        let p = run_point(500, 0, 64);
        assert_eq!(p.replayed, 64, "only the newest cap-many retained");
    }

    #[test]
    fn memory_stays_bounded() {
        let (tracked, evicted) = memory_bound(5_000, 256);
        assert_eq!(tracked, 256);
        assert_eq!(evicted, 5_000 - 256);
    }
}
