//! Prints every experiment table (DESIGN.md §5) to stdout.
//!
//! ```text
//! cargo run --release -p garnet-bench --bin experiments            # all
//! cargo run --release -p garnet-bench --bin experiments -- e06 e10 # some
//! ```
//!
//! The output of a full run is recorded in `EXPERIMENTS.md` alongside
//! the paper's corresponding claims.

use garnet_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    println!("# Garnet experiment suite\n");

    if want("e01") {
        let (_, t) = e01_codec::run();
        println!("{}", t.render());
    }
    if want("e02") {
        let (_, t) = e02_capacity::run();
        println!("{}", t.render());
        println!(
            "id-space sweep: {} distinct sensors across the 24-bit space, all delivered\n",
            e02_capacity::id_space_sweep(100_000)
        );
    }
    if want("e03") {
        let (_, t) = e03_pipeline::run();
        println!("{}", t.render());
    }
    if want("e04") {
        let (_, t) = e04_filtering::run();
        println!("{}", t.render());
        let (_, t) = e04_filtering::run_ablation();
        println!("{}", t.render());
    }
    if want("e05") {
        let (_, t) = e05_dispatch::run();
        println!("{}", t.render());
    }
    if want("e06") {
        let (_, t) = e06_retri::run();
        println!("{}", t.render());
    }
    if want("e07") {
        let (_, t) = e07_fjords::run();
        println!("{}", t.render());
    }
    if want("e08") {
        let (_, t) = e08_coupling::run();
        println!("{}", t.render());
    }
    if want("e09") {
        let (_, t) = e09_location::run();
        println!("{}", t.render());
    }
    if want("e10") {
        let (_, _, t) = e10_predictive::run();
        println!("{}", t.render());
    }
    if want("e11") {
        let (_, t) = e11_mediation::run();
        println!("{}", t.render());
    }
    if want("e12") {
        let (_, t) = e12_orphanage::run();
        println!("{}", t.render());
        let (tracked, evicted) = e12_orphanage::memory_bound(5_000, 256);
        println!("memory bound: 5000 unclaimed streams under cap 256 → tracked {tracked}, evicted {evicted}\n");
    }
    if want("e13") {
        let (_, t) = e13_multilevel::run();
        println!("{}", t.render());
    }
    if want("e14") {
        let (_, t) = e14_crypto::run();
        println!("{}", t.render());
    }
    if want("e15") {
        let (_, t) = e15_multihop::run();
        println!("{}", t.render());
    }
    if want("e16") {
        let (_, _, t) = e16_quiesce::run();
        println!("{}", t.render());
    }
    if want("e17") {
        let (_, t) = e17_overload::run();
        println!("{}", t.render());
        let (_, t) = e17_overload::run_qos();
        println!("{}", t.render());
    }
    if want("e18") {
        let (_, t) = e18_dispatch_shards::run();
        println!("{}", t.render());
    }
    if want("e19") {
        let (_, t) = e19_trace_overhead::run();
        println!("{}", t.render());
    }
    if want("e20") {
        let (_, t) = e20_runtime_mode::run();
        println!("{}", t.render());
    }
    if want("e21") {
        let (_, t) = e21_batch::run();
        println!("{}", t.render());
    }
    if want("e22") {
        let (_, t) = e22_store::run();
        println!("{}", t.render());
    }
    if want("e23") {
        let (_, _, t) = e23_match_cache::run();
        println!("{}", t.render());
    }
    if want("e24") {
        let (_, json, t) = e24_telemetry::run();
        if let Err(e) = std::fs::write("BENCH_telemetry.json", &json) {
            eprintln!("could not write BENCH_telemetry.json: {e}");
        }
        println!("{}", t.render());
    }
}
