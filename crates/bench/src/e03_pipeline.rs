//! E3 — the Figure 1 data path, end to end: sensor → medium → receivers
//! → Filtering → Dispatching → consumer.
//!
//! Measures delivery rate and end-to-end latency (sensing instant to
//! middleware delivery) of the habitat scenario as the aggregate message
//! rate scales. The shape to reproduce: latency stays flat (the
//! middleware is not the bottleneck at sensor-network rates) while
//! throughput scales linearly with offered load.

use garnet_core::pipeline::LatencyProbe;
use garnet_core::router::ThreadedIngest;
use garnet_core::FilterConfig;
use garnet_net::{SubscriberId, SubscriptionTable, TopicFilter};
use garnet_radio::ReceiverId;
use garnet_simkit::{SimDuration, SimTime};
use garnet_wire::{DataMessage, FrameBytes, SensorId, SequenceNumber, StreamId, StreamIndex};
use garnet_workloads::HabitatScenario;

use crate::table::{f2, n, Table};

/// One operating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelinePoint {
    /// Sensors deployed.
    pub sensors: usize,
    /// Aggregate offered message rate (msg/s).
    pub offered_rate: f64,
    /// Messages delivered to the consumer.
    pub delivered: u64,
    /// Delivery ratio (delivered / transmitted).
    pub delivery_ratio: f64,
    /// Median end-to-end latency (µs).
    pub p50_us: u64,
    /// 99th-percentile end-to-end latency (µs).
    pub p99_us: u64,
}

/// Runs one operating point: a `side × side` grid reporting every
/// `interval`, simulated for `horizon`.
pub fn run_point(side: usize, interval: SimDuration, horizon: SimTime) -> PipelinePoint {
    let scenario = HabitatScenario {
        grid_side: side,
        report_interval: interval,
        ..HabitatScenario::default()
    };
    let mut sim = scenario.build();
    let token = sim.garnet_mut().issue_default_token("probe");
    let (probe, hist) = LatencyProbe::new("probe");
    let id = sim.garnet_mut().register_consumer(Box::new(probe), &token, 0).unwrap();
    sim.garnet_mut().subscribe(id, TopicFilter::All, &token).unwrap();
    sim.run_until(horizon);
    // Drain receptions of the final reporting round (in flight for the
    // medium's sub-millisecond latency) without starting a new round.
    sim.run_until(horizon.saturating_add(garnet_simkit::SimDuration::from_millis(100)));

    let h = hist.lock();
    let sensors = scenario.sensor_count();
    let transmitted = sim.transmission_count().max(1);
    PipelinePoint {
        sensors,
        offered_rate: sensors as f64 / interval.as_secs_f64(),
        delivered: h.count(),
        delivery_ratio: h.count() as f64 / transmitted as f64,
        p50_us: h.p50(),
        p99_us: h.p99(),
    }
}

/// Runs the rate sweep.
pub fn run() -> (Vec<PipelinePoint>, Table) {
    let horizon = SimTime::from_secs(120);
    let mut points = Vec::new();
    let mut table = Table::new(
        "E3 — Fig. 1 pipeline: end-to-end latency & throughput vs offered load",
        &["sensors", "offered msg/s", "delivered", "delivery ratio", "p50 µs", "p99 µs"],
    );
    for (side, interval_ms) in [(3usize, 10_000u64), (6, 5_000), (10, 2_000), (14, 1_000)] {
        let p = run_point(side, SimDuration::from_millis(interval_ms), horizon);
        table.row(&[
            n(p.sensors as u64),
            f2(p.offered_rate),
            n(p.delivered),
            f2(p.delivery_ratio),
            n(p.p50_us),
            n(p.p99_us),
        ]);
        points.push(p);
    }
    (points, table)
}

/// One sample of the ingest shard sweep.
#[derive(Clone, Copy, Debug)]
pub struct ShardPoint {
    /// Worker shards in the threaded ingest driver.
    pub shards: usize,
    /// Frames pushed through the stage.
    pub frames: u64,
    /// Wall-clock for the whole batch (first push to join), µs.
    pub elapsed_us: u64,
    /// Frames per second of wall-clock.
    pub throughput_fps: f64,
}

/// Pre-encodes the sweep workload: `frames` data messages round-robined
/// over `sensors` sensors with monotonic per-stream sequence numbers —
/// the pure ingest hot path with no radio simulation in front of it.
/// Frames are shared-slice handles, so cloning one into the stage is a
/// refcount bump, not a payload copy.
pub fn shard_workload(frames: u32, sensors: u32) -> Vec<FrameBytes> {
    (0..frames)
        .map(|i| {
            let sensor = 1 + (i % sensors);
            let seq = (i / sensors) as u16;
            let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0));
            DataMessage::builder(stream)
                .seq(SequenceNumber::new(seq))
                .payload(vec![seq as u8; 16])
                .build()
                .unwrap()
                .encode_to_vec()
                .into()
        })
        .collect()
}

/// Pushes `workload` through a [`ThreadedIngest`] with `shards` workers
/// and returns the wall-clock sample. Panics if any frame is lost (the
/// workload is duplicate- and gap-free, so delivered must equal pushed).
/// Batch size 64 is the stage's amortised steady state — the E21 sweep
/// varies it.
pub fn run_shard_point(workload: &[FrameBytes], shards: usize) -> ShardPoint {
    run_shard_point_batched(workload, shards, 64)
}

/// [`run_shard_point`] with an admission batch size: frames enter the
/// stage in bursts of `batch` through [`ThreadedIngest::push_frames`],
/// and the stage submits worker jobs of the same size, so each batch
/// costs one channel hand-off (and one result hand-off back) instead of
/// one per frame. `batch == 1` is the honest per-frame baseline: every
/// frame pays the full enqueue/rendezvous/merge cost alone.
pub fn run_shard_point_batched(workload: &[FrameBytes], shards: usize, batch: usize) -> ShardPoint {
    let mut subs = SubscriptionTable::new();
    subs.subscribe(SubscriberId::new(1), TopicFilter::All);
    let started = std::time::Instant::now();
    let mut ingest = ThreadedIngest::new(FilterConfig::default(), shards, batch.max(1), &subs);
    let mut delivered = 0u64;
    let mut at_base = 0u64;
    for chunk in workload.chunks(batch.max(1)) {
        let at = SimTime::from_micros(at_base);
        at_base += chunk.len() as u64;
        let staged = chunk.iter().map(|frame| (ReceiverId::new(0), -40.0, frame.clone()));
        for b in ingest.push_frames(staged, at) {
            delivered += b.deliveries.len() as u64;
        }
    }
    for b in ingest.flush(SimTime::from_secs(3_600)) {
        delivered += b.deliveries.len() as u64;
    }
    for b in ingest.finish().batches {
        delivered += b.deliveries.len() as u64;
    }
    let elapsed = started.elapsed();
    assert_eq!(delivered, workload.len() as u64, "ingest lost frames");
    ShardPoint {
        shards,
        frames: delivered,
        elapsed_us: elapsed.as_micros() as u64,
        throughput_fps: delivered as f64 / elapsed.as_secs_f64(),
    }
}

/// The host's usable core count (1 when it cannot be determined).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The minimum `speedup_vs_1` a shard sweep is expected to clear at
/// `shards` workers on a host with `host_cores` cores — `None` when no
/// speedup claim can be made: on a single-core host (or at one shard)
/// every shard count measures the same serial work plus channel
/// overhead, so asserting a ≥1.5× gain would fail for reasons that have
/// nothing to do with the code.
pub fn expected_min_speedup(shards: usize, host_cores: usize) -> Option<f64> {
    if host_cores < 2 || shards < 2 {
        return None;
    }
    // Floor of 1.5× once real parallelism is available; generous slack
    // below the ideal min(shards, cores) ceiling for channel overhead.
    Some(1.5f64.min(shards.min(host_cores) as f64 * 0.75))
}

/// Renders a shard sweep as the common `BENCH_*_shards.json` document:
/// bench id, driver, host core count, and one row per point with its
/// speedup over the first (1-shard) point.
pub fn sweep_json(bench: &str, driver: &str, cores: usize, points: &[ShardPoint]) -> String {
    let base = points.first().map_or(1.0, |p| p.throughput_fps);
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"shards\": {}, \"frames\": {}, \"elapsed_us\": {}, \
                 \"throughput_fps\": {:.1}, \"speedup_vs_1\": {:.3}}}",
                p.shards,
                p.frames,
                p.elapsed_us,
                p.throughput_fps,
                p.throughput_fps / base
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"{bench}\",\n  \"driver\": \"{driver}\",\n  \
         \"host_cores\": {cores},\n  \"note\": \"speedup ceiling is min(shards, host_cores)\",\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

/// Runs the ingest shard sweep and renders it as the JSON document for
/// `BENCH_pipeline_shards.json`. The host's core count is recorded
/// because the speedup ceiling is `min(shards, cores)`: on a
/// single-core host every shard count measures the same serial work
/// plus channel overhead.
pub fn shard_sweep_json(frames: u32, sensors: u32, shard_counts: &[usize]) -> String {
    let workload = shard_workload(frames, sensors);
    let points: Vec<ShardPoint> =
        shard_counts.iter().map(|&s| run_shard_point(&workload, s)).collect();
    sweep_json("e03_pipeline_shards", "ThreadedIngest", host_cores(), &points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_delivers_with_flat_latency() {
        let slow = run_point(3, SimDuration::from_secs(10), SimTime::from_secs(60));
        let fast = run_point(6, SimDuration::from_secs(1), SimTime::from_secs(60));
        assert!(slow.delivered >= 9 * 5);
        assert!(fast.delivered > slow.delivered * 5);
        // Delivery is lossless under unit-disk coverage.
        assert!(slow.delivery_ratio > 0.95, "ratio={}", slow.delivery_ratio);
        // Latency does not blow up with 60x the load.
        assert!(fast.p99_us < slow.p99_us.max(2_000) * 10, "fast p99 {}", fast.p99_us);
    }

    #[test]
    fn shard_sweep_is_lossless_and_serialisable() {
        let json = shard_sweep_json(2_000, 16, &[1, 2]);
        assert!(json.contains("\"host_cores\""));
        assert!(json.contains("\"shards\": 1"));
        assert!(json.contains("\"shards\": 2"));
        assert!(json.contains("\"frames\": 2000"));
    }

    #[test]
    fn speedup_expectation_is_gated_on_host_cores() {
        // No parallelism → no claim, whatever the shard count.
        assert_eq!(expected_min_speedup(8, 1), None);
        assert_eq!(expected_min_speedup(1, 8), None);
        // Real parallelism → a floor of 1.5×, never above 0.75×/core.
        assert_eq!(expected_min_speedup(4, 8), Some(1.5));
        assert_eq!(expected_min_speedup(8, 2), Some(1.5));
    }
}
