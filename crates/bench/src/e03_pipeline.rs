//! E3 — the Figure 1 data path, end to end: sensor → medium → receivers
//! → Filtering → Dispatching → consumer.
//!
//! Measures delivery rate and end-to-end latency (sensing instant to
//! middleware delivery) of the habitat scenario as the aggregate message
//! rate scales. The shape to reproduce: latency stays flat (the
//! middleware is not the bottleneck at sensor-network rates) while
//! throughput scales linearly with offered load.

use garnet_core::pipeline::LatencyProbe;
use garnet_net::TopicFilter;
use garnet_simkit::{SimDuration, SimTime};
use garnet_workloads::HabitatScenario;

use crate::table::{f2, n, Table};

/// One operating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelinePoint {
    /// Sensors deployed.
    pub sensors: usize,
    /// Aggregate offered message rate (msg/s).
    pub offered_rate: f64,
    /// Messages delivered to the consumer.
    pub delivered: u64,
    /// Delivery ratio (delivered / transmitted).
    pub delivery_ratio: f64,
    /// Median end-to-end latency (µs).
    pub p50_us: u64,
    /// 99th-percentile end-to-end latency (µs).
    pub p99_us: u64,
}

/// Runs one operating point: a `side × side` grid reporting every
/// `interval`, simulated for `horizon`.
pub fn run_point(side: usize, interval: SimDuration, horizon: SimTime) -> PipelinePoint {
    let scenario = HabitatScenario {
        grid_side: side,
        report_interval: interval,
        ..HabitatScenario::default()
    };
    let mut sim = scenario.build();
    let token = sim.garnet_mut().issue_default_token("probe");
    let (probe, hist) = LatencyProbe::new("probe");
    let id = sim.garnet_mut().register_consumer(Box::new(probe), &token, 0).unwrap();
    sim.garnet_mut().subscribe(id, TopicFilter::All, &token).unwrap();
    sim.run_until(horizon);
    // Drain receptions of the final reporting round (in flight for the
    // medium's sub-millisecond latency) without starting a new round.
    sim.run_until(horizon.saturating_add(garnet_simkit::SimDuration::from_millis(100)));

    let h = hist.lock();
    let sensors = scenario.sensor_count();
    let transmitted = sim.transmission_count().max(1);
    PipelinePoint {
        sensors,
        offered_rate: sensors as f64 / interval.as_secs_f64(),
        delivered: h.count(),
        delivery_ratio: h.count() as f64 / transmitted as f64,
        p50_us: h.p50(),
        p99_us: h.p99(),
    }
}

/// Runs the rate sweep.
pub fn run() -> (Vec<PipelinePoint>, Table) {
    let horizon = SimTime::from_secs(120);
    let mut points = Vec::new();
    let mut table = Table::new(
        "E3 — Fig. 1 pipeline: end-to-end latency & throughput vs offered load",
        &["sensors", "offered msg/s", "delivered", "delivery ratio", "p50 µs", "p99 µs"],
    );
    for (side, interval_ms) in [(3usize, 10_000u64), (6, 5_000), (10, 2_000), (14, 1_000)] {
        let p = run_point(side, SimDuration::from_millis(interval_ms), horizon);
        table.row(&[
            n(p.sensors as u64),
            f2(p.offered_rate),
            n(p.delivered),
            f2(p.delivery_ratio),
            n(p.p50_us),
            n(p.p99_us),
        ]);
        points.push(p);
    }
    (points, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_delivers_with_flat_latency() {
        let slow = run_point(3, SimDuration::from_secs(10), SimTime::from_secs(60));
        let fast = run_point(6, SimDuration::from_secs(1), SimTime::from_secs(60));
        assert!(slow.delivered >= 9 * 5);
        assert!(fast.delivered > slow.delivered * 5);
        // Delivery is lossless under unit-disk coverage.
        assert!(slow.delivery_ratio > 0.95, "ratio={}", slow.delivery_ratio);
        // Latency does not blow up with 60x the load.
        assert!(fast.p99_us < slow.p99_us.max(2_000) * 10, "fast p99 {}", fast.p99_us);
    }
}
