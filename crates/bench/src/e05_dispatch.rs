//! E5 — dispatch fan-out scalability.
//!
//! Mutually-unaware consumers mean the Dispatching Service is the only
//! fan-out point in the system (§4.2, §6). The property to demonstrate:
//! per-message dispatch cost scales with the *matching* subscriber count
//! (fan-out), not with the total subscriber population — a message on a
//! quiet stream stays cheap no matter how many consumers watch other
//! streams.
//!
//! The sweep runs with the match cache **disabled** so it prices the
//! match-set *construction* path (the cost model above is about the
//! sorted-merge, not the memo). With the cache on, steady-state cost is
//! flat in fan-out — one hash lookup plus an `Arc` refcount bump —
//! which E23 prices separately.

use std::time::Instant;

use garnet_core::dispatching::DispatchingService;
use garnet_net::{DispatchCacheConfig, TopicFilter};
use garnet_wire::{SensorId, StreamId, StreamIndex};

use crate::table::{f3, n, Table};

/// One sweep point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DispatchPoint {
    /// Subscribers matching the hot stream.
    pub fanout: usize,
    /// Subscribers on *other* streams (background population).
    pub bystanders: usize,
    /// Mean wall-clock nanoseconds per route() call.
    pub ns_per_dispatch: f64,
    /// Deliveries produced per message.
    pub deliveries_per_msg: u64,
}

fn hot_stream() -> StreamId {
    StreamId::new(SensorId::new(42).unwrap(), StreamIndex::new(0))
}

/// Builds a dispatch table with `fanout` subscribers on the hot stream
/// and `bystanders` on other streams. The match cache is disabled:
/// E5 prices match-set construction, E23 prices the cache.
pub fn build_service(fanout: usize, bystanders: usize) -> DispatchingService {
    let mut d = DispatchingService::with_cache(DispatchCacheConfig::disabled());
    for _ in 0..fanout {
        let id = d.register_subscriber();
        d.subscribe(id, TopicFilter::Stream(hot_stream()));
    }
    for i in 0..bystanders {
        let id = d.register_subscriber();
        let other =
            StreamId::new(SensorId::new(1000 + i as u32 % 4000).unwrap(), StreamIndex::new(0));
        d.subscribe(id, TopicFilter::Stream(other));
    }
    d
}

/// Times `iters` routes of the hot stream.
pub fn run_point(fanout: usize, bystanders: usize, iters: u32) -> DispatchPoint {
    let mut d = build_service(fanout, bystanders);
    let stream = hot_stream();
    // Warm-up.
    let deliveries = d.route(stream).recipients.len() as u64;
    let start = Instant::now();
    for _ in 0..iters {
        let out = d.route(stream);
        std::hint::black_box(out.recipients.len());
    }
    let elapsed = start.elapsed();
    DispatchPoint {
        fanout,
        bystanders,
        ns_per_dispatch: elapsed.as_nanos() as f64 / f64::from(iters),
        deliveries_per_msg: deliveries,
    }
}

/// Runs the fan-out and population sweeps.
pub fn run() -> (Vec<DispatchPoint>, Table) {
    let mut points = Vec::new();
    let mut table = Table::new(
        "E5 — dispatch fan-out: cost vs matching subscribers (and vs bystanders)",
        &["fanout", "bystanders", "ns/dispatch", "deliveries/msg"],
    );
    for &fanout in &[1usize, 16, 256, 4096] {
        let p = run_point(fanout, 0, 2_000);
        table.row(&[
            n(p.fanout as u64),
            n(p.bystanders as u64),
            f3(p.ns_per_dispatch),
            n(p.deliveries_per_msg),
        ]);
        points.push(p);
    }
    // Population ablation: same fan-out, many bystanders.
    for &bystanders in &[0usize, 10_000, 100_000] {
        let p = run_point(16, bystanders, 2_000);
        table.row(&[
            n(p.fanout as u64),
            n(p.bystanders as u64),
            f3(p.ns_per_dispatch),
            n(p.deliveries_per_msg),
        ]);
        points.push(p);
    }
    (points, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deliveries_match_fanout() {
        for fanout in [1usize, 10, 100] {
            let p = run_point(fanout, 50, 10);
            assert_eq!(p.deliveries_per_msg, fanout as u64);
        }
    }

    #[test]
    fn bystanders_do_not_add_deliveries() {
        let p = run_point(5, 10_000, 10);
        assert_eq!(p.deliveries_per_msg, 5);
    }

    #[test]
    fn cost_scales_with_fanout_not_population() {
        // Wall-clock comparisons are noisy; use generous factors.
        let small = run_point(1, 0, 5_000);
        let big_fanout = run_point(4096, 0, 200);
        assert!(
            big_fanout.ns_per_dispatch > small.ns_per_dispatch * 5.0,
            "fanout 4096 should cost clearly more: {} vs {}",
            big_fanout.ns_per_dispatch,
            small.ns_per_dispatch
        );
        let crowd = run_point(1, 100_000, 5_000);
        assert!(
            crowd.ns_per_dispatch < small.ns_per_dispatch * 50.0 + 10_000.0,
            "bystanders must not dominate: {} vs {}",
            crowd.ns_per_dispatch,
            small.ns_per_dispatch
        );
    }
}
