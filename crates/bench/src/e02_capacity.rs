//! E2 — the paper's headline capacity claims (§1): "supports up to
//! 16.7M sensors, 256 internal-streams/sensor, 64K sequence counts and
//! payloads of 64K bytes".
//!
//! Each claim is exercised at its boundary: messages are built, encoded,
//! decoded and pushed through the Filtering Service at the extreme
//! corners of the identifier space, and one-past-the-boundary is shown
//! to be rejected.

use garnet_core::filtering::{FilterConfig, FilteringService};
use garnet_radio::ReceiverId;
use garnet_simkit::SimTime;
use garnet_wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex, MAX_PAYLOAD_LEN};

use crate::table::Table;

/// Outcome of one capacity check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapacityCheck {
    /// The claim.
    pub claim: &'static str,
    /// Paper's number.
    pub paper: u64,
    /// Measured supported maximum.
    pub measured: u64,
    /// Whether one-past-the-limit was rejected.
    pub overflow_rejected: bool,
}

fn full_round_trip(stream: StreamId, seq: u16, payload_len: usize) -> bool {
    let Ok(msg) = DataMessage::builder(stream)
        .seq(SequenceNumber::new(seq))
        .payload(vec![0u8; payload_len])
        .build()
    else {
        return false;
    };
    let bytes = msg.encode_to_vec();
    matches!(DataMessage::decode(&bytes), Ok((back, _)) if back == msg)
}

/// Runs all four capacity checks.
pub fn run() -> (Vec<CapacityCheck>, Table) {
    let mut checks = Vec::new();

    // 16.7M sensors: the extreme sensor id round-trips; 2^24 is rejected.
    let max_sensor = SensorId::MAX;
    let stream_hi = StreamId::new(max_sensor, StreamIndex::new(0));
    assert!(full_round_trip(stream_hi, 0, 4));
    checks.push(CapacityCheck {
        claim: "sensors (24-bit SensorId)",
        paper: 16_700_000,
        measured: u64::from(max_sensor.as_u32()) + 1,
        overflow_rejected: SensorId::new(0x0100_0000).is_err(),
    });

    // 256 internal streams: all indices round-trip; u8 cannot overflow,
    // so the "rejection" is the type system itself.
    let sensor = SensorId::new(1).unwrap();
    for idx in [0u8, 1, 127, 255] {
        assert!(full_round_trip(StreamId::new(sensor, StreamIndex::new(idx)), 0, 4));
    }
    checks.push(CapacityCheck {
        claim: "internal streams/sensor (8-bit index)",
        paper: 256,
        measured: u64::from(StreamIndex::MAX.as_u8()) + 1,
        overflow_rejected: true,
    });

    // 64K sequence counts: full range round-trips and wraps seamlessly
    // through the filtering service.
    let stream = StreamId::new(sensor, StreamIndex::new(0));
    assert!(full_round_trip(stream, u16::MAX, 4));
    let mut filter = FilteringService::new(FilterConfig::default());
    let mut delivered = 0u64;
    for i in 0..64u32 {
        let seq = 65_500u16.wrapping_add(i as u16); // crosses the wrap
        let frame: garnet_wire::FrameBytes = DataMessage::builder(stream)
            .seq(SequenceNumber::new(seq))
            .build()
            .unwrap()
            .encode_to_vec()
            .into();
        delivered += filter
            .on_frame(ReceiverId::new(0), -40.0, &frame, SimTime::from_millis(u64::from(i)))
            .deliveries
            .len() as u64;
    }
    assert_eq!(delivered, 64, "wraparound must not drop or duplicate");
    checks.push(CapacityCheck {
        claim: "sequence counts (16-bit, RFC1982 wrap)",
        paper: 65_536,
        measured: u64::from(u16::MAX) + 1,
        overflow_rejected: true, // wrapping is the defined behaviour
    });

    // 64K payloads: the maximum round-trips; one more byte is rejected.
    assert!(full_round_trip(stream, 0, MAX_PAYLOAD_LEN));
    let too_big = DataMessage::builder(stream).payload(vec![0u8; MAX_PAYLOAD_LEN + 1]).build();
    checks.push(CapacityCheck {
        claim: "payload bytes (16-bit size)",
        paper: 65_535,
        measured: MAX_PAYLOAD_LEN as u64,
        overflow_rejected: too_big.is_err(),
    });

    let mut table = Table::new(
        "E2 — capacity claims (§1: 16.7M sensors / 256 streams / 64K seq / 64K payload)",
        &["claim", "paper", "measured", "overflow rejected"],
    );
    for c in &checks {
        table.row(&[
            c.claim.to_owned(),
            c.paper.to_string(),
            c.measured.to_string(),
            c.overflow_rejected.to_string(),
        ]);
    }
    (checks, table)
}

/// Sweeps dedup behaviour across the sensor-id space: `count` distinct
/// sensors spread over the full 24-bit range each deliver one message —
/// the filter must treat them as distinct streams (no cross-talk even at
/// identifier extremes). Returns the number delivered.
pub fn id_space_sweep(count: u32) -> u64 {
    let mut filter = FilteringService::new(FilterConfig::default());
    let stride = (SensorId::MAX.as_u32() / count.max(1)).max(1);
    let mut delivered = 0u64;
    for i in 0..count {
        let sensor = SensorId::new((i * stride) % (SensorId::MAX.as_u32() + 1)).unwrap();
        let stream = StreamId::new(sensor, StreamIndex::new(0));
        let frame: garnet_wire::FrameBytes =
            DataMessage::builder(stream).build().unwrap().encode_to_vec().into();
        delivered +=
            filter.on_frame(ReceiverId::new(0), -40.0, &frame, SimTime::ZERO).deliveries.len()
                as u64;
    }
    delivered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_claims_hold() {
        let (checks, _) = run();
        assert_eq!(checks.len(), 4);
        for c in &checks {
            assert!(
                c.measured >= c.paper,
                "{}: measured {} < paper {}",
                c.claim,
                c.measured,
                c.paper
            );
            assert!(c.overflow_rejected, "{}", c.claim);
        }
    }

    #[test]
    fn id_space_sweep_no_crosstalk() {
        assert_eq!(id_space_sweep(10_000), 10_000);
    }
}
