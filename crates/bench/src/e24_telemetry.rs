//! E24 — telemetry-plane overhead through the facade.
//!
//! The telemetry plane stamps every admitted frame into three latency
//! histograms and a per-shard depth gauge (see
//! `garnet_core::telemetry`). This experiment prices that recording on
//! the batch-64 ingest hot path: the **same** workload is pushed
//! through `Garnet` in 64-frame bursts with spans on
//! (`GarnetConfig::telemetry` default) and off, on both engines. The
//! acceptance bar is a ≤ 5% throughput delta between the two arms at
//! batch 64 — telemetry is always-on in deployments, so it must be
//! close to free.
//!
//! The experiments binary emits `BENCH_telemetry.json`: one point per
//! engine × spans arm, with the per-engine overhead percentage
//! alongside, so the gate can be applied (and re-checked) from the
//! document alone.

use garnet_core::middleware::{Garnet, GarnetConfig};
use garnet_core::pipeline::SharedCountConsumer;
use garnet_core::telemetry::TelemetryConfig;
use garnet_core::DriverKind;
use garnet_net::TopicFilter;
use garnet_radio::ReceiverId;
use garnet_simkit::SimTime;

use crate::e03_pipeline::{host_cores, shard_workload};
use crate::table::{f2, n, Table};

/// Burst size of the ingest hot path the gate is defined over.
pub const BATCH: usize = 64;

/// The acceptance bar: spans may cost at most this much batch-64
/// throughput on either engine.
pub const GATE_OVERHEAD_PCT: f64 = 5.0;

/// Repetitions per arm; each arm keeps its fastest run. A single ~20 ms
/// sample on a shared 1-core host swings by ±10% with scheduler noise —
/// the interleaved best-of-N estimator isolates the code's actual cost.
pub const REPS: usize = 5;

/// One measured arm of the A/B.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryPoint {
    /// `"fifo"` or `"threaded"`.
    pub engine: &'static str,
    /// Whether latency spans and depth gauges were recording.
    pub spans: bool,
    /// Frames pushed through the facade.
    pub frames: u64,
    /// Wall-clock for the whole workload, µs.
    pub elapsed_us: u64,
    /// Frames per second of wall-clock.
    pub throughput_fps: f64,
}

fn engine_name(driver: DriverKind) -> &'static str {
    match driver {
        DriverKind::Fifo => "fifo",
        DriverKind::Threaded => "threaded",
    }
}

/// Pushes `workload` through a facade in 64-frame bursts with telemetry
/// spans `spans`, returning the wall-clock sample. Panics if any
/// delivery is lost, or if the span histograms disagree with the arm
/// (data recorded with spans off, or none recorded with spans on) —
/// the guard that the A/B measures what it claims to.
pub fn run_telemetry_point(
    workload: &[garnet_wire::FrameBytes],
    driver: DriverKind,
    spans: bool,
) -> TelemetryPoint {
    let started = std::time::Instant::now();
    let mut garnet = Garnet::new(GarnetConfig {
        driver,
        telemetry: TelemetryConfig { spans, ..TelemetryConfig::default() },
        ..GarnetConfig::default()
    });
    let token = garnet.issue_default_token("bench");
    let (consumer, delivered) = SharedCountConsumer::new("bench");
    let id = garnet.register_consumer(Box::new(consumer), &token, 0).unwrap();
    garnet.subscribe(id, TopicFilter::All, &token).unwrap();
    for (burst, chunk) in workload.chunks(BATCH).enumerate() {
        let at = SimTime::from_micros(burst as u64);
        let frames: Vec<_> = chunk
            .iter()
            .enumerate()
            .map(|(i, f)| (ReceiverId::new((i % 4) as u32), -40.0, f.clone()))
            .collect();
        garnet.on_frames(frames, at);
    }
    garnet.on_tick(SimTime::from_secs(3_600));
    let m = garnet.metrics();
    garnet.shutdown(SimTime::from_secs(3_600)).expect("no archive configured");
    let elapsed = started.elapsed();
    let count = delivered.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(count, workload.len() as u64, "{driver:?} lost deliveries");
    let recorded = m
        .histograms()
        .find(|(name, _)| *name == garnet_simkit::metrics::keys::PIPELINE_E2E_LATENCY_US)
        .map_or(0, |(_, h)| h.count());
    assert_eq!(
        recorded != 0,
        spans,
        "span histogram state disagrees with the arm (spans={spans}, recorded={recorded})"
    );
    TelemetryPoint {
        engine: engine_name(driver),
        spans,
        frames: count,
        elapsed_us: elapsed.as_micros() as u64,
        throughput_fps: count as f64 / elapsed.as_secs_f64(),
    }
}

/// Runs the A/B on both engines. Arms are interleaved (off, on, off,
/// on, …) for [`REPS`] rounds and each arm keeps its fastest run, so
/// slow drift on the host hits both arms alike and one preempted run
/// cannot masquerade as telemetry overhead.
pub fn run_telemetry_sweep(workload: &[garnet_wire::FrameBytes]) -> Vec<TelemetryPoint> {
    let mut points = Vec::new();
    for driver in [DriverKind::Fifo, DriverKind::Threaded] {
        let mut best: [Option<TelemetryPoint>; 2] = [None, None];
        for _ in 0..REPS {
            for (arm, spans) in [false, true].into_iter().enumerate() {
                let p = run_telemetry_point(workload, driver, spans);
                if best[arm].is_none_or(|b| p.elapsed_us < b.elapsed_us) {
                    best[arm] = Some(p);
                }
            }
        }
        points.extend(best.into_iter().flatten());
    }
    points
}

/// The spans-on overhead for `engine`, percent of the spans-off
/// throughput (negative when the spans arm measured faster — noise on
/// a quiet host).
pub fn overhead_pct(points: &[TelemetryPoint], engine: &str) -> f64 {
    let fps = |spans: bool| {
        points
            .iter()
            .find(|p| p.engine == engine && p.spans == spans)
            .map_or(0.0, |p| p.throughput_fps)
    };
    let (off, on) = (fps(false), fps(true));
    if off <= 0.0 {
        return 0.0;
    }
    (off - on) / off * 100.0
}

/// Renders the sweep as the `BENCH_telemetry.json` document.
pub fn telemetry_json(points: &[TelemetryPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"engine\": \"{}\", \"spans\": {}, \"frames\": {}, \"elapsed_us\": {}, \
                 \"throughput_fps\": {:.1}, \"overhead_pct\": {:.2}}}",
                p.engine,
                p.spans,
                p.frames,
                p.elapsed_us,
                p.throughput_fps,
                if p.spans { overhead_pct(points, p.engine) } else { 0.0 }
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"e24_telemetry\",\n  \"driver\": \"Garnet(batch={BATCH})\",\n  \
         \"host_cores\": {},\n  \"gate_overhead_pct\": {GATE_OVERHEAD_PCT},\n  \
         \"note\": \"overhead_pct compares spans=true to the engine's spans=false arm\",\n  \
         \"points\": [\n{}\n  ]\n}}\n",
        host_cores(),
        rows.join(",\n")
    )
}

/// Runs the sweep for the experiments binary.
pub fn run() -> (Vec<TelemetryPoint>, String, Table) {
    let workload = shard_workload(20_000, 64);
    let points = run_telemetry_sweep(&workload);
    let mut table = Table::new(
        "E24 — telemetry-plane overhead: spans on vs off at batch 64 (gate ≤ 5%)",
        &["engine", "spans", "frames", "elapsed µs", "frames/s", "overhead %"],
    );
    for p in &points {
        table.row(&[
            p.engine.into(),
            if p.spans { "on".into() } else { "off".into() },
            n(p.frames),
            n(p.elapsed_us),
            f2(p.throughput_fps),
            if p.spans { f2(overhead_pct(&points, p.engine)) } else { "-".into() },
        ]);
    }
    let json = telemetry_json(&points);
    (points, json, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_sweep_is_lossless_and_serialisable() {
        let workload = shard_workload(1_000, 16);
        let points = run_telemetry_sweep(&workload);
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.frames == 1_000));
        let json = telemetry_json(&points);
        assert!(json.contains("\"bench\": \"e24_telemetry\""));
        assert!(json.contains("\"gate_overhead_pct\": 5"));
        assert!(json.contains("\"engine\": \"fifo\""));
        assert!(json.contains("\"engine\": \"threaded\""));
        assert!(json.contains("\"spans\": true"));
        assert!(json.contains("\"spans\": false"));
        assert_eq!(json.matches("{\"engine\":").count(), 4);
    }

    #[test]
    fn overhead_compares_within_one_engine() {
        let p = |engine, spans, fps| TelemetryPoint {
            engine,
            spans,
            frames: 1,
            elapsed_us: 1,
            throughput_fps: fps,
        };
        let points = vec![
            p("fifo", false, 200.0),
            p("fifo", true, 190.0),
            p("threaded", false, 100.0),
            p("threaded", true, 99.0),
        ];
        assert!((overhead_pct(&points, "fifo") - 5.0).abs() < 1e-9);
        assert!((overhead_pct(&points, "threaded") - 1.0).abs() < 1e-9);
    }
}
