//! E15 — multi-hop relaying (§8 future work, implemented).
//!
//! "Exploration of the implications of supporting multi-hop routing
//! within the sensor network … Initial support has been provided by
//! tagging the message header to reflect multi-hop and relayed data
//! messages" (§8). The experiment deploys sensors at increasing distance
//! beyond the receiver horizon with a chain-adjacent relay node and
//! measures delivery with relaying off vs on, plus the energy the relay
//! pays for the coverage extension.

use garnet_core::middleware::GarnetConfig;
use garnet_core::pipeline::{PipelineConfig, PipelineSim};
use garnet_radio::field::Uniform;
use garnet_radio::geometry::Point;
use garnet_radio::{
    Medium, Propagation, Receiver, ReceiverId, SensorCaps, SensorNode, StreamConfig,
};
use garnet_simkit::{SimDuration, SimTime};
use garnet_wire::{SensorId, StreamIndex};

use crate::table::{f2, n, Table};

/// One distance point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MultihopPoint {
    /// Source distance from the receiver (m); receiver range is 100 m.
    pub source_distance_m: f64,
    /// Deliveries without relaying.
    pub delivered_without: u64,
    /// Deliveries with relaying enabled.
    pub delivered_with: u64,
    /// Relay transmissions spent.
    pub relay_tx: u64,
    /// Relay energy spent (µJ).
    pub relay_energy_uj: f64,
}

const RECEIVER_RANGE: f64 = 100.0;
const PEER_RANGE: f64 = 120.0;
const HORIZON_S: u64 = 60;

/// Runs one source distance, with and without relaying. The relay sits
/// halfway between the source and the receiver.
pub fn run_point(source_distance_m: f64, seed: u64) -> MultihopPoint {
    let run = |peer_range: Option<f64>| {
        let receivers = vec![Receiver::new(ReceiverId::new(0), Point::ORIGIN, RECEIVER_RANGE)];
        let cfg = PipelineConfig {
            seed,
            medium: Medium::ideal(Propagation::UnitDisk { range_m: 400.0 }),
            garnet: GarnetConfig { receivers, ..GarnetConfig::default() },
            peer_range_m: peer_range,
        };
        let mut sim = PipelineSim::new(cfg, Box::new(Uniform(1.0)));
        sim.add_sensor(
            SensorNode::new(SensorId::new(1).unwrap(), Point::new(source_distance_m, 0.0))
                .with_stream(StreamIndex::new(0), StreamConfig::every(SimDuration::from_secs(1))),
        );
        let relay_idx = sim.add_sensor(
            SensorNode::new(SensorId::new(2).unwrap(), Point::new(source_distance_m / 2.0, 0.0))
                .with_caps(SensorCaps::relay()),
        );
        sim.run_until(SimTime::from_secs(HORIZON_S));
        let relay_energy = sim.sensors()[relay_idx].energy_consumed_nj();
        (sim.garnet().filtering().delivered_count(), sim.relayed_transmission_count(), relay_energy)
    };
    let (delivered_without, _, _) = run(None);
    let (delivered_with, relay_tx, relay_energy_nj) = run(Some(PEER_RANGE));
    MultihopPoint {
        source_distance_m,
        delivered_without,
        delivered_with,
        relay_tx,
        relay_energy_uj: relay_energy_nj as f64 / 1000.0,
    }
}

/// Runs the distance sweep.
pub fn run() -> (Vec<MultihopPoint>, Table) {
    let mut points = Vec::new();
    let mut table = Table::new(
        "E15 — §8 multi-hop relaying: coverage beyond the receiver horizon (range 100 m)",
        &["source at m", "delivered (no relay)", "delivered (relay)", "relay tx", "relay µJ"],
    );
    for &d in &[80.0f64, 120.0, 160.0, 200.0, 260.0] {
        let p = run_point(d, 0xE15);
        table.row(&[
            f2(p.source_distance_m),
            n(p.delivered_without),
            n(p.delivered_with),
            n(p.relay_tx),
            f2(p.relay_energy_uj),
        ]);
        points.push(p);
    }
    (points, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_rescues_out_of_range_sources() {
        let (points, _) = run();
        for p in &points {
            if p.source_distance_m <= RECEIVER_RANGE {
                // In range: relaying changes nothing material.
                assert!(p.delivered_without >= HORIZON_S - 1);
            } else if p.source_distance_m / 2.0 <= RECEIVER_RANGE.min(PEER_RANGE) {
                // Rescuable: out of receiver range, relay in both ranges.
                assert_eq!(p.delivered_without, 0, "at {}", p.source_distance_m);
                assert!(
                    p.delivered_with >= HORIZON_S - 1,
                    "relay must carry {} m source: {}",
                    p.source_distance_m,
                    p.delivered_with
                );
                assert!(p.relay_tx > 0);
                assert!(p.relay_energy_uj > 0.0);
            }
        }
    }

    #[test]
    fn beyond_relay_reach_stays_dark() {
        // Source at 260 m: relay at 130 m is itself out of receiver
        // range, so even the relayed copy dies.
        let p = run_point(260.0, 1);
        assert_eq!(p.delivered_with, 0);
    }

    #[test]
    fn in_range_source_pays_no_relay_penalty() {
        let p = run_point(80.0, 2);
        // Direct copy delivered; relayed duplicates are absorbed by the
        // filtering service, so delivery count is identical.
        assert_eq!(p.delivered_without, p.delivered_with);
    }
}
