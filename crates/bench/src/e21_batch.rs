//! E21 — admission batch-size sweep on the zero-copy frame path.
//!
//! E3/E18 sweep worker *shards*; this sweep holds the topology at one
//! shard and varies the **admission batch size** instead: how many
//! frames enter the stage per `push_frames` call. Each consecutive
//! same-shard run costs one channel hand-off and one sequencer merge
//! however many frames it carries, so per-frame overhead (enqueue,
//! wake-up, root bookkeeping) amortises across the batch. The shape to
//! reproduce: per-frame cost falls monotonically from batch size 1 to
//! 64, flattening once the fixed edge cost is fully amortised.
//!
//! Emits `BENCH_batch.json` via the shared sweep schema
//! ([`crate::e03_pipeline::sweep_json`], `host_cores` recorded). One
//! schema caveat: the `shards` field of each point carries the **batch
//! size** — the sweep variable — not a worker count; the topology is
//! fixed at one shard per stage.

use crate::e03_pipeline::{host_cores, run_shard_point_batched, shard_workload, ShardPoint};
use crate::e18_dispatch_shards::run_dispatch_point_batched;
use crate::table::{f2, n, Table};

/// The batch sizes the sweep visits.
pub const BATCH_SIZES: [usize; 4] = [1, 8, 64, 256];

/// One batch-size sample: the sweep variable plus the wall-clock point.
/// `point.shards` is repurposed to carry `batch` when serialised.
#[derive(Clone, Copy, Debug)]
pub struct BatchPoint {
    /// Frames per `push_frames` call.
    pub batch: usize,
    /// The wall-clock sample at that batch size.
    pub point: ShardPoint,
}

/// Sweeps the ingest stage (E3's single-shard `ThreadedIngest`) over
/// the admission batch sizes.
pub fn ingest_batch_sweep(frames: u32, sensors: u32, batches: &[usize]) -> Vec<BatchPoint> {
    let workload = shard_workload(frames, sensors);
    batches
        .iter()
        .map(|&batch| {
            let mut point = run_shard_point_batched(&workload, 1, batch);
            point.shards = batch;
            BatchPoint { batch, point }
        })
        .collect()
}

/// Sweeps the full graph (E18's `ThreadedRouter`, 1×1 shards) over the
/// admission batch sizes.
pub fn graph_batch_sweep(frames: u32, sensors: u32, batches: &[usize]) -> Vec<BatchPoint> {
    let workload = shard_workload(frames, sensors);
    batches
        .iter()
        .map(|&batch| {
            let mut point = run_dispatch_point_batched(&workload, 1, batch);
            point.shards = batch;
            BatchPoint { batch, point }
        })
        .collect()
}

/// Renders a batch sweep as the shared sweep JSON document (the
/// `shards` field of each point carries the batch size).
pub fn batch_sweep_json(bench: &str, driver: &str, points: &[BatchPoint]) -> String {
    let shard_points: Vec<ShardPoint> = points.iter().map(|p| p.point).collect();
    crate::e03_pipeline::sweep_json(bench, driver, host_cores(), &shard_points)
}

/// Runs the sweep for the experiments binary.
pub fn run() -> (Vec<BatchPoint>, Table) {
    let mut table = Table::new(
        "E21 — admission batch-size sweep: single-shard throughput vs frames per push",
        &["stage", "batch", "frames", "elapsed µs", "frames/s", "speedup vs batch 1"],
    );
    let ingest = ingest_batch_sweep(200_000, 64, &BATCH_SIZES);
    let graph = graph_batch_sweep(20_000, 64, &BATCH_SIZES);
    for (stage, points) in [("ingest", &ingest), ("graph", &graph)] {
        let base = points[0].point.throughput_fps;
        for p in points {
            table.row(&[
                stage.into(),
                n(p.batch as u64),
                n(p.point.frames),
                n(p.point.elapsed_us),
                f2(p.point.throughput_fps),
                f2(p.point.throughput_fps / base),
            ]);
        }
    }
    let mut points = ingest;
    points.extend(graph);
    (points, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_sweep_is_lossless_and_serialisable() {
        let points = ingest_batch_sweep(2_000, 16, &[1, 8]);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.point.frames, 2_000, "batch {} lost frames", p.batch);
        }
        let json = batch_sweep_json("e21_batch_ingest", "ThreadedIngest", &points);
        assert!(json.contains("\"bench\": \"e21_batch_ingest\""));
        assert!(json.contains("\"host_cores\""));
        // `shards` carries the batch size in this sweep.
        assert!(json.contains("\"shards\": 1"));
        assert!(json.contains("\"shards\": 8"));
    }

    #[test]
    fn graph_sweep_survives_batched_admission() {
        let points = graph_batch_sweep(1_000, 16, &[1, 64]);
        for p in &points {
            assert_eq!(p.point.frames, 1_000, "batch {} lost frames", p.batch);
        }
    }
}
