//! E18 — dispatch shard sweep on the threaded service graph.
//!
//! E3's shard sweep parallelises the *filtering* stage; this one drives
//! the full `ThreadedRouter` (filtering → dispatch → control) and sweeps
//! the **dispatch** shard count while holding ingest at one shard, so
//! any scaling comes from partitioning subscription matching by sensor
//! id. Fan-out is the dispatch stage's work multiplier: every message
//! matches all subscribers, so dispatch does `subscribers ×` the per-
//! message routing work of the ingest stage in front of it.
//!
//! Emits `BENCH_dispatch_shards.json` with the same schema as
//! `BENCH_pipeline_shards.json` (see [`crate::e03_pipeline::sweep_json`]),
//! `host_cores` included — on a single-core host the sweep records
//! throughput without making a speedup claim.

use garnet_core::router::ThreadedRouter;
use garnet_core::{ControlGraph, FilterConfig, ServiceOutput};
use garnet_net::{SubscriberId, SubscriptionTable, TopicFilter};
use garnet_radio::ReceiverId;
use garnet_simkit::SimTime;

use crate::e03_pipeline::{host_cores, shard_workload, sweep_json, ShardPoint};
use crate::table::{f2, n, Table};

/// Subscribers matching every stream (the dispatch fan-out).
const SUBSCRIBERS: u32 = 8;

fn subscriptions() -> SubscriptionTable {
    let mut table = SubscriptionTable::new();
    for id in 0..SUBSCRIBERS {
        table.subscribe(SubscriberId::new(id), TopicFilter::All);
    }
    table
}

/// Pushes `workload` through a [`ThreadedRouter`] with one ingest shard
/// and `shards` dispatch shards, returning the wall-clock sample.
/// Panics if any delivery is lost: the workload is duplicate- and
/// gap-free, so every frame must fan out to every subscriber.
pub fn run_dispatch_point(workload: &[garnet_wire::FrameBytes], shards: usize) -> ShardPoint {
    run_dispatch_point_batched(workload, shards, 1)
}

/// [`run_dispatch_point`] with an admission batch size: frames enter the
/// graph in bursts of `batch` through [`ThreadedRouter::push_frames`],
/// amortising the filtering-edge hand-off over each consecutive
/// same-shard run. `batch == 1` is the per-frame baseline.
pub fn run_dispatch_point_batched(
    workload: &[garnet_wire::FrameBytes],
    shards: usize,
    batch: usize,
) -> ShardPoint {
    let table = subscriptions();
    let started = std::time::Instant::now();
    let mut router =
        ThreadedRouter::new(FilterConfig::default(), 1, shards, &table, ControlGraph::default);
    let mut delivered = 0u64;
    let mut count = |roots: Vec<garnet_core::RootOutput>| {
        for root in roots {
            for out in root.outputs {
                if matches!(out, ServiceOutput::Deliver { .. }) {
                    delivered += 1;
                }
            }
        }
    };
    let mut at_base = 0u64;
    for chunk in workload.chunks(batch.max(1)) {
        let at = SimTime::from_micros(at_base);
        at_base += chunk.len() as u64;
        let staged = chunk.iter().map(|frame| (ReceiverId::new(0), -40.0, frame.clone()));
        count(router.push_frames(staged, at));
    }
    count(router.push_flush(SimTime::from_secs(3_600)));
    let report = router.finish();
    count(report.outputs);
    let elapsed = started.elapsed();
    assert!(report.failures.is_empty(), "dispatch sweep lost work: {:?}", report.failures);
    let frames = workload.len() as u64;
    assert_eq!(delivered, frames * u64::from(SUBSCRIBERS), "dispatch lost deliveries");
    ShardPoint {
        shards,
        frames,
        elapsed_us: elapsed.as_micros() as u64,
        throughput_fps: frames as f64 / elapsed.as_secs_f64(),
    }
}

/// Runs the dispatch shard sweep and renders the JSON document for
/// `BENCH_dispatch_shards.json`.
pub fn dispatch_sweep_json(frames: u32, sensors: u32, shard_counts: &[usize]) -> String {
    let workload = shard_workload(frames, sensors);
    let points: Vec<ShardPoint> =
        shard_counts.iter().map(|&s| run_dispatch_point(&workload, s)).collect();
    sweep_json("e18_dispatch_shards", "ThreadedRouter", host_cores(), &points)
}

/// Runs the sweep for the experiments binary.
pub fn run() -> (Vec<ShardPoint>, Table) {
    let workload = shard_workload(20_000, 64);
    let mut points = Vec::new();
    let mut table = Table::new(
        "E18 — dispatch shard sweep: ThreadedRouter throughput vs dispatch shards",
        &["dispatch shards", "frames", "elapsed µs", "frames/s", "speedup vs 1"],
    );
    for shards in [1usize, 2, 4, 8] {
        let p = run_dispatch_point(&workload, shards);
        points.push(p);
    }
    let base = points[0].throughput_fps;
    for p in &points {
        table.row(&[
            n(p.shards as u64),
            n(p.frames),
            n(p.elapsed_us),
            f2(p.throughput_fps),
            f2(p.throughput_fps / base),
        ]);
    }
    (points, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_sweep_is_lossless_and_serialisable() {
        let json = dispatch_sweep_json(1_000, 16, &[1, 2]);
        assert!(json.contains("\"bench\": \"e18_dispatch_shards\""));
        assert!(json.contains("\"driver\": \"ThreadedRouter\""));
        assert!(json.contains("\"host_cores\""));
        assert!(json.contains("\"shards\": 1"));
        assert!(json.contains("\"shards\": 2"));
        assert!(json.contains("\"frames\": 1000"));
    }
}
