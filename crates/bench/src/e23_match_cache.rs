//! E23 — dispatch match-cache: pricing allocation-free fan-out.
//!
//! The dispatch hot path memoises per-stream match sets as shared
//! `Arc<[SubscriberId]>` slices, validated against the subscription
//! table's per-key-range mutation epochs. A steady-state route is one
//! hash lookup plus one refcount bump; this experiment prices the
//! difference against rebuild-every-time matching on both execution
//! engines, across the fan-out × population × cache matrix:
//!
//! * **fifo** points route a hot stream through a bare
//!   [`DispatchingService`] (the single-threaded engine's dispatch
//!   core) and time `route()` directly, hit rate from the cache's own
//!   counters;
//! * **threaded** points drive the full [`ThreadedRouter`] graph over a
//!   multi-sensor workload with shard-local caches, cache on vs off.
//!
//! The companion Criterion harness (`benches/bench_match_cache.rs`)
//! writes `BENCH_match_cache.json` — the `sweep_json` schema with
//! per-point `fanout` / `population` / `cache` / `hit_rate` fields.
//! The test module also carries the allocation proof: on a
//! steady-state hit, [`garnet_net::MatchCache::resolve`] performs zero
//! heap allocations (counting global allocator).

use std::time::Instant;

use garnet_core::dispatching::DispatchingService;
use garnet_core::router::{OverloadPolicy, ThreadedRouter};
use garnet_core::{ControlGraph, FilterConfig, ServiceOutput};
use garnet_net::{DispatchCacheConfig, SubscriberId, SubscriptionTable, TopicFilter};
use garnet_radio::ReceiverId;
use garnet_simkit::SimTime;
use garnet_wire::{SensorId, StreamId, StreamIndex};

use crate::e03_pipeline::{host_cores, shard_workload};
use crate::table::{f2, f3, n, Table};

/// One point of the direct-dispatch (fifo-engine) sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CachePoint {
    /// Subscribers matching the hot stream.
    pub fanout: usize,
    /// Subscribers on *other* streams (background population).
    pub population: usize,
    /// Whether the match cache was enabled.
    pub cache_on: bool,
    /// Mean wall-clock nanoseconds per `route()` call.
    pub ns_per_dispatch: f64,
    /// hits / (hits + misses + invalidations); 0 with the cache off.
    pub hit_rate: f64,
    /// Deliveries produced per message (sanity: must equal `fanout`).
    pub deliveries_per_msg: u64,
}

/// One point of the full-graph (threaded-engine) sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThreadedCachePoint {
    /// Subscribers matching every workload stream.
    pub fanout: usize,
    /// Bystander subscriptions on streams the workload never sends.
    pub population: usize,
    /// Whether the dispatch shards' match caches were enabled.
    pub cache_on: bool,
    /// Frames pushed through the graph.
    pub frames: u64,
    /// Wall-clock for the whole run.
    pub elapsed_us: u64,
    /// Frames per second of wall-clock.
    pub throughput_fps: f64,
    /// Shard-cache hit rate at quiescence; 0 with the cache off.
    pub hit_rate: f64,
}

/// An explicit on/off configuration, immune to the
/// `GARNET_TEST_MATCH_CACHE` env toggle (benches must not change
/// meaning under CI reruns).
pub fn cache_config(on: bool) -> DispatchCacheConfig {
    DispatchCacheConfig { enabled: on, ..DispatchCacheConfig::disabled() }
}

fn hot_stream() -> StreamId {
    StreamId::new(SensorId::new(42).unwrap(), StreamIndex::new(0))
}

fn hit_rate(s: garnet_net::MatchCacheStats) -> f64 {
    let resolves = s.hits + s.misses + s.invalidations;
    if resolves == 0 {
        0.0
    } else {
        s.hits as f64 / resolves as f64
    }
}

/// Builds a dispatch service with `fanout` subscribers on the hot
/// stream and `population` bystanders on other streams.
pub fn build_service(
    fanout: usize,
    population: usize,
    cache: DispatchCacheConfig,
) -> DispatchingService {
    let mut d = DispatchingService::with_cache(cache);
    for _ in 0..fanout {
        let id = d.register_subscriber();
        d.subscribe(id, TopicFilter::Stream(hot_stream()));
    }
    for i in 0..population {
        let id = d.register_subscriber();
        let other =
            StreamId::new(SensorId::new(1000 + i as u32 % 4000).unwrap(), StreamIndex::new(0));
        d.subscribe(id, TopicFilter::Stream(other));
    }
    d
}

/// Times `iters` hot-stream routes through a bare dispatch service.
pub fn run_fifo_point(fanout: usize, population: usize, cache_on: bool, iters: u32) -> CachePoint {
    let mut d = build_service(fanout, population, cache_config(cache_on));
    let stream = hot_stream();
    // Warm-up: the cold build (when caching) happens here, so the timed
    // loop prices the steady state both configurations settle into.
    let deliveries = d.route(stream).recipients.len() as u64;
    let start = Instant::now();
    for _ in 0..iters {
        let out = d.route(stream);
        std::hint::black_box(out.recipients.len());
    }
    let elapsed = start.elapsed();
    CachePoint {
        fanout,
        population,
        cache_on,
        ns_per_dispatch: elapsed.as_nanos() as f64 / f64::from(iters),
        hit_rate: hit_rate(d.cache_stats()),
        deliveries_per_msg: deliveries,
    }
}

/// Pushes `workload` through a 1×1 [`ThreadedRouter`] whose dispatch
/// shard runs with the given cache setting: `fanout` subscribers match
/// every stream, `population` bystanders subscribe to streams the
/// workload never carries. Panics if any delivery is lost.
pub fn run_threaded_point(
    workload: &[garnet_wire::FrameBytes],
    fanout: usize,
    population: usize,
    cache_on: bool,
) -> ThreadedCachePoint {
    let mut table = SubscriptionTable::new();
    for id in 0..fanout {
        table.subscribe(SubscriberId::new(id as u32), TopicFilter::All);
    }
    for i in 0..population {
        let sensor = SensorId::new(100_000 + i as u32 % 1_000_000).unwrap();
        table.subscribe(
            SubscriberId::new((fanout + i) as u32),
            TopicFilter::Stream(StreamId::new(sensor, StreamIndex::new(0))),
        );
    }
    let started = Instant::now();
    let mut router = ThreadedRouter::with_options(
        FilterConfig::default(),
        1,
        1,
        &table,
        ControlGraph::default,
        OverloadPolicy::Block,
        4,
        None,
        cache_config(cache_on),
    );
    let mut delivered = 0u64;
    let mut count = |roots: Vec<garnet_core::RootOutput>| {
        for root in roots {
            for out in root.outputs {
                if matches!(out, ServiceOutput::Deliver { .. }) {
                    delivered += 1;
                }
            }
        }
    };
    for (i, frame) in workload.iter().enumerate() {
        count(router.push_frame(
            ReceiverId::new(0),
            -40.0,
            frame.clone(),
            SimTime::from_micros(i as u64),
        ));
    }
    count(router.push_flush(SimTime::from_secs(3_600)));
    let parts = router.into_parts();
    count(parts.report.outputs);
    let elapsed = started.elapsed();
    assert!(parts.report.failures.is_empty(), "cache sweep lost work: {:?}", parts.report.failures);
    let frames = workload.len() as u64;
    assert_eq!(delivered, frames * fanout as u64, "cache sweep lost deliveries");
    ThreadedCachePoint {
        fanout,
        population,
        cache_on,
        frames,
        elapsed_us: elapsed.as_micros() as u64,
        throughput_fps: frames as f64 / elapsed.as_secs_f64(),
        hit_rate: hit_rate(parts.dispatch_stats.match_cache()),
    }
}

/// The E23 matrix: fan-out × population × cache, both engines.
pub fn run_matrix(
    fifo_iters: u32,
    threaded_frames: u32,
) -> (Vec<CachePoint>, Vec<ThreadedCachePoint>) {
    let mut fifo = Vec::new();
    for &fanout in &[1usize, 16, 256] {
        for &population in &[1_000usize, 100_000] {
            for &cache_on in &[true, false] {
                fifo.push(run_fifo_point(fanout, population, cache_on, fifo_iters));
            }
        }
    }
    let workload = shard_workload(threaded_frames, 64);
    let mut threaded = Vec::new();
    for &fanout in &[1usize, 16] {
        for &population in &[1_000usize, 100_000] {
            for &cache_on in &[true, false] {
                threaded.push(run_threaded_point(&workload, fanout, population, cache_on));
            }
        }
    }
    (fifo, threaded)
}

/// Renders the `BENCH_match_cache.json` document: the `sweep_json`
/// envelope with per-point `engine` / `fanout` / `population` /
/// `cache` / `hit_rate` fields.
pub fn cache_sweep_json(
    fifo: &[CachePoint],
    threaded: &[ThreadedCachePoint],
    cores: usize,
) -> String {
    let mut rows: Vec<String> = fifo
        .iter()
        .map(|p| {
            format!(
                "    {{\"engine\": \"fifo\", \"fanout\": {}, \"population\": {}, \
                 \"cache\": \"{}\", \"ns_per_dispatch\": {:.1}, \"hit_rate\": {:.4}, \
                 \"deliveries_per_msg\": {}}}",
                p.fanout,
                p.population,
                if p.cache_on { "on" } else { "off" },
                p.ns_per_dispatch,
                p.hit_rate,
                p.deliveries_per_msg
            )
        })
        .collect();
    rows.extend(threaded.iter().map(|p| {
        format!(
            "    {{\"engine\": \"threaded\", \"fanout\": {}, \"population\": {}, \
             \"cache\": \"{}\", \"frames\": {}, \"elapsed_us\": {}, \
             \"throughput_fps\": {:.1}, \"hit_rate\": {:.4}}}",
            p.fanout,
            p.population,
            if p.cache_on { "on" } else { "off" },
            p.frames,
            p.elapsed_us,
            p.throughput_fps,
            p.hit_rate
        )
    }));
    format!(
        "{{\n  \"bench\": \"e23_match_cache\",\n  \"driver\": \"DispatchingService+ThreadedRouter\",\n  \
         \"host_cores\": {cores},\n  \"note\": \"cache on = epoch-validated Arc<[SubscriberId]> \
         match sets; off = rebuild per route\",\n  \"points\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

/// Runs the matrix for the experiments binary.
pub fn run() -> (Vec<CachePoint>, Vec<ThreadedCachePoint>, Table) {
    let (fifo, threaded) = run_matrix(20_000, 20_000);
    let mut table = Table::new(
        "E23 — dispatch match cache: steady-state route cost, cache on vs off",
        &["engine", "fanout", "population", "cache", "ns/dispatch", "frames/s", "hit rate"],
    );
    for p in &fifo {
        table.row(&[
            "fifo".into(),
            n(p.fanout as u64),
            n(p.population as u64),
            (if p.cache_on { "on" } else { "off" }).into(),
            f3(p.ns_per_dispatch),
            "-".into(),
            f2(p.hit_rate),
        ]);
    }
    for p in &threaded {
        table.row(&[
            "threaded".into(),
            n(p.fanout as u64),
            n(p.population as u64),
            (if p.cache_on { "on" } else { "off" }).into(),
            "-".into(),
            f2(p.throughput_fps),
            f2(p.hit_rate),
        ]);
    }
    let _ = host_cores(); // pinned in the JSON document, not the table
    (fifo, threaded, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counting global allocator: `MatchCache::resolve` on a warm
    /// entry must not touch the heap. The counter is thread-local so
    /// concurrently running tests in this binary don't pollute it.
    mod alloc_probe {
        use std::alloc::{GlobalAlloc, Layout, System};
        use std::cell::Cell;

        thread_local! {
            static ALLOCS: Cell<u64> = const { Cell::new(0) };
        }

        pub fn allocations() -> u64 {
            ALLOCS.with(|c| c.get())
        }

        struct Counting;

        unsafe impl GlobalAlloc for Counting {
            unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
                let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
                System.alloc(layout)
            }
            unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
                System.dealloc(ptr, layout)
            }
            unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
                let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
                System.realloc(ptr, layout, new_size)
            }
            unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
                let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
                System.alloc_zeroed(layout)
            }
        }

        #[global_allocator]
        static A: Counting = Counting;
    }

    #[test]
    fn steady_state_cache_hit_allocates_nothing() {
        use garnet_net::MatchCache;
        let mut table = SubscriptionTable::new();
        for id in 0..16u32 {
            table.subscribe(SubscriberId::new(id), TopicFilter::Stream(hot_stream()));
        }
        for i in 0..1_000u32 {
            table.subscribe(
                SubscriberId::new(16 + i),
                TopicFilter::Stream(StreamId::new(
                    SensorId::new(1000 + i).unwrap(),
                    StreamIndex::new(0),
                )),
            );
        }
        let mut cache = MatchCache::new(cache_config(true));
        // Cold build (allocates the entry + the shared slice)…
        let (warm, rebuilt) = cache.resolve(&table, hot_stream());
        assert!(rebuilt);
        assert_eq!(warm.len(), 16);
        drop(warm);
        // …then the steady state: zero heap traffic across 10k hits.
        let before = alloc_probe::allocations();
        for _ in 0..10_000 {
            let (set, rebuilt) = cache.resolve(&table, hot_stream());
            assert!(!rebuilt);
            std::hint::black_box(set.len());
        }
        let after = alloc_probe::allocations();
        assert_eq!(after - before, 0, "warm resolve must be allocation-free");
        assert_eq!(cache.stats().hits, 10_000);
    }

    #[test]
    fn cache_on_beats_cache_off() {
        // The acceptance gate proper — ≥2× per-frame improvement at
        // fan-out ≥16 — is asserted in the release-built Criterion
        // harness (`benches/bench_match_cache.rs`), where it holds with
        // a 4× margin. This debug-mode twin gates where the win is
        // unmissable even under unoptimised `route()` overhead:
        // strictly 2× at fan-out 256 (measured ~12×), directionally at
        // 16. Best-of-three per configuration to shed scheduler noise.
        let best = |fanout: usize, iters: u32, on: bool| {
            (0..3)
                .map(|_| run_fifo_point(fanout, 1_000, on, iters).ns_per_dispatch)
                .fold(f64::INFINITY, f64::min)
        };
        let on = best(256, 20_000, true);
        let off = best(256, 20_000, false);
        assert!(
            off >= on * 2.0,
            "cache on should be ≥2× faster at fanout 256: on {on:.1}ns vs off {off:.1}ns"
        );
        let on = best(16, 50_000, true);
        let off = best(16, 50_000, false);
        assert!(off > on, "cache on should beat off at fanout 16: on {on:.1}ns vs off {off:.1}ns");
    }

    #[test]
    fn fifo_points_record_hits_and_exact_fanout() {
        let p = run_fifo_point(16, 1_000, true, 100);
        assert_eq!(p.deliveries_per_msg, 16);
        assert!(p.hit_rate > 0.9, "steady hot-stream loop must hit: {}", p.hit_rate);
        let q = run_fifo_point(16, 1_000, false, 100);
        assert_eq!(q.deliveries_per_msg, 16);
        assert_eq!(q.hit_rate, 0.0, "disabled cache records no activity");
    }

    #[test]
    fn threaded_points_are_lossless_and_record_hits() {
        let workload = shard_workload(2_000, 16);
        let p = run_threaded_point(&workload, 4, 1_000, true);
        assert_eq!(p.frames, 2_000);
        // 16 streams, one cold build each, the rest hits.
        assert!(p.hit_rate > 0.9, "shard cache must run hot: {}", p.hit_rate);
        let q = run_threaded_point(&workload, 4, 1_000, false);
        assert_eq!(q.hit_rate, 0.0, "disabled cache records no activity");
    }

    #[test]
    fn sweep_json_is_serialisable() {
        let fifo = vec![run_fifo_point(1, 1_000, true, 10)];
        let threaded = vec![run_threaded_point(&shard_workload(200, 4), 1, 0, false)];
        let json = cache_sweep_json(&fifo, &threaded, host_cores());
        assert!(json.contains("\"bench\": \"e23_match_cache\""));
        assert!(json.contains("\"engine\": \"fifo\""));
        assert!(json.contains("\"engine\": \"threaded\""));
        assert!(json.contains("\"cache\": \"on\""));
        assert!(json.contains("\"cache\": \"off\""));
        assert!(json.contains("\"hit_rate\""));
    }
}
