//! E6 — the RETRI comparison (§7, Elson & Estrin).
//!
//! Two series against transaction density: (a) identifier bits per
//! packet — RETRI's constant small header vs Garnet's constant 48-bit
//! stable identifiers; (b) energy per successfully delivered reading —
//! where RETRI's collisions erode its header saving as density grows.
//! The expected shape: RETRI wins at low density, Garnet wins past the
//! crossover; and RETRI's curve depends on *density*, not network size,
//! exactly as the paper says.

use garnet_baselines::retri::{
    analytic_collision_probability, scheme_cost, RetriScheme, SchemeCost,
};
use garnet_radio::EnergyModel;
use garnet_simkit::SimRng;

use crate::table::{f2, f3, n, Table};

/// One density point comparing both schemes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetriPoint {
    /// Concurrent transactions in the collision domain.
    pub concurrent: usize,
    /// RETRI outcome.
    pub retri: SchemeCost,
    /// Garnet outcome.
    pub garnet: SchemeCost,
    /// Analytic collision probability (any collision among concurrent).
    pub analytic_any_collision: f64,
}

/// The densities the experiment sweeps.
pub const DENSITIES: [usize; 6] = [2, 8, 32, 64, 128, 512];

/// RETRI identifier width used throughout (the original paper's small-id
/// regime).
pub const RETRI_ID_BITS: u32 = 8;

/// Runs the density sweep.
pub fn run() -> (Vec<RetriPoint>, Table) {
    let energy = EnergyModel::microsensor();
    let mut rng = SimRng::seed(0xE6);
    let payload_bits = 16 * 8;
    let mut points = Vec::new();
    let mut table = Table::new(
        "E6 — RETRI vs Garnet stable StreamIDs (id bits & energy/delivered reading)",
        &[
            "concurrent",
            "RETRI id bits",
            "Garnet id bits",
            "RETRI collision rate",
            "RETRI nJ/reading",
            "Garnet nJ/reading",
            "winner",
        ],
    );
    for &concurrent in &DENSITIES {
        let retri = scheme_cost(
            RetriScheme::Ephemeral { id_bits: RETRI_ID_BITS },
            concurrent,
            payload_bits,
            &energy,
            &mut rng,
        );
        let garnet =
            scheme_cost(RetriScheme::GarnetStable, concurrent, payload_bits, &energy, &mut rng);
        let winner = if retri.energy_per_delivered_nj < garnet.energy_per_delivered_nj {
            "RETRI"
        } else {
            "Garnet"
        };
        table.row(&[
            n(concurrent as u64),
            n(u64::from(retri.id_bits_per_packet)),
            n(u64::from(garnet.id_bits_per_packet)),
            f3(retri.collision_rate),
            f2(retri.energy_per_delivered_nj),
            f2(garnet.energy_per_delivered_nj),
            winner.into(),
        ]);
        points.push(RetriPoint {
            concurrent,
            retri,
            garnet,
            analytic_any_collision: analytic_collision_probability(
                RETRI_ID_BITS,
                concurrent as u64,
            ),
        });
    }
    (points, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_exists_and_is_ordered() {
        let (points, _) = run();
        // RETRI wins at the sparse end.
        let first = &points[0];
        assert!(first.retri.energy_per_delivered_nj < first.garnet.energy_per_delivered_nj);
        // Garnet wins at the dense end.
        let last = points.last().unwrap();
        assert!(last.retri.energy_per_delivered_nj > last.garnet.energy_per_delivered_nj);
        // Garnet's cost is density-independent.
        let garnet_costs: Vec<f64> =
            points.iter().map(|p| p.garnet.energy_per_delivered_nj).collect();
        assert!(garnet_costs.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9));
        // RETRI's collision rate is monotone in density.
        for w in points.windows(2) {
            assert!(w[1].retri.collision_rate >= w[0].retri.collision_rate - 0.02);
        }
    }

    #[test]
    fn simulated_rate_tracks_analytic() {
        let (points, _) = run();
        for p in &points {
            // Per-transaction rate is below the any-collision probability
            // but grows with it.
            if p.analytic_any_collision > 0.5 {
                assert!(p.retri.collision_rate > 0.05, "density {}", p.concurrent);
            }
        }
    }
}
