//! E7 — Fjords-style sensor-proxy sharing (§7, Madden & Franklin).
//!
//! Reproduces "the sharing resulted in significant improvements to their
//! ability to handle simultaneous queries": sensor transmissions with a
//! shared proxy stay flat as the number of simultaneous queries grows,
//! while per-query acquisition scales linearly. The second half of the
//! experiment shows Garnet's MergeMax resource mediation computes the
//! same shared acquisition rate a Fjords proxy would.

use garnet_baselines::querydb::{compare_sharing, Query, QueryEngine, SharingComparison};
use garnet_core::resource::{Decision, MediationPolicy, ResourceManager};
use garnet_net::SubscriberId;
use garnet_simkit::{SimDuration, SimTime};
use garnet_wire::{ActuationTarget, SensorCommand, SensorId, StreamIndex};

use crate::table::{f2, n, Table};

/// One query-count point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FjordsPoint {
    /// The sharing counts.
    pub comparison: SharingComparison,
    /// Effective interval Garnet's MergeMax mediation grants (ms).
    pub garnet_effective_interval_ms: Option<u32>,
    /// Interval a Fjords proxy would acquire at (ms).
    pub proxy_interval_ms: Option<u32>,
}

/// The query mixes swept: `q` queries with intervals cycling through
/// 1s/2s/5s.
pub fn query_mix(q: usize) -> Vec<Query> {
    let intervals = [1u64, 2, 5];
    (0..q).map(|i| Query::latest_every(SimDuration::from_secs(intervals[i % 3]))).collect()
}

/// Runs one point.
pub fn run_point(q: usize, horizon: SimTime) -> FjordsPoint {
    let queries = query_mix(q);
    let comparison = compare_sharing(&queries, horizon);

    // The proxy's acquisition interval…
    let mut engine = QueryEngine::new();
    for &query in &queries {
        engine.register(query);
    }
    let proxy_interval_ms = engine.shared_acquisition_interval().map(|i| i.as_millis() as u32);

    // …equals what Garnet's resource manager grants when each query
    // arrives as a mutually-unaware consumer's rate demand.
    let sensor = SensorId::new(7).unwrap();
    let mut rm = ResourceManager::new(MediationPolicy::MergeMax);
    for (i, query) in queries.iter().enumerate() {
        let decision = rm.request(
            SubscriberId::new(i as u32),
            0,
            &ActuationTarget::Sensor(sensor),
            &SensorCommand::SetReportInterval {
                stream: StreamIndex::new(0),
                interval_ms: query.interval.as_millis() as u32,
            },
        );
        assert!(matches!(decision, Decision::Granted { .. }));
    }
    FjordsPoint {
        comparison,
        garnet_effective_interval_ms: rm.effective_interval_ms(sensor, StreamIndex::new(0)),
        proxy_interval_ms,
    }
}

/// Runs the query-count sweep.
pub fn run() -> (Vec<FjordsPoint>, Table) {
    let horizon = SimTime::from_secs(600);
    let mut points = Vec::new();
    let mut table = Table::new(
        "E7 — Fjords proxy sharing: sensor tx (shared vs per-query) & Garnet MergeMax equivalence",
        &[
            "queries",
            "tx shared",
            "tx per-query",
            "saving x",
            "proxy interval ms",
            "Garnet interval ms",
        ],
    );
    for &q in &[1usize, 4, 16, 64, 256] {
        let p = run_point(q, horizon);
        let saving =
            p.comparison.sensor_tx_per_query as f64 / p.comparison.sensor_tx_shared.max(1) as f64;
        table.row(&[
            n(q as u64),
            n(p.comparison.sensor_tx_shared),
            n(p.comparison.sensor_tx_per_query),
            f2(saving),
            p.proxy_interval_ms.map_or("-".into(), |v| v.to_string()),
            p.garnet_effective_interval_ms.map_or("-".into(), |v| v.to_string()),
        ]);
        points.push(p);
    }
    (points, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_flat_per_query_linear() {
        let (points, _) = run();
        let shared: Vec<u64> = points.iter().map(|p| p.comparison.sensor_tx_shared).collect();
        assert!(shared.windows(2).all(|w| w[0] == w[1]), "shared cost flat: {shared:?}");
        let per_query: Vec<u64> = points.iter().map(|p| p.comparison.sensor_tx_per_query).collect();
        assert!(per_query.windows(2).all(|w| w[1] > w[0]));
        // The 256-query saving is "significant" (> 50x here).
        let last = points.last().unwrap();
        let saving =
            last.comparison.sensor_tx_per_query as f64 / last.comparison.sensor_tx_shared as f64;
        assert!(saving > 50.0, "saving={saving}");
    }

    #[test]
    fn garnet_mergemax_equals_fjords_proxy() {
        let (points, _) = run();
        for p in &points {
            assert_eq!(p.garnet_effective_interval_ms, p.proxy_interval_ms);
        }
    }
}
