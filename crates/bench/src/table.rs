//! Minimal fixed-width table rendering for the experiments binary.

/// A printable table: header + rows of equal arity.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                s.push_str(&format!(" {c:>w$} |"));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.header, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats an integer-valued count.
pub fn n(v: u64) -> String {
    v.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["k", "value"]);
        t.row(&["1".into(), "10".into()]);
        t.row(&["200".into(), "3".into()]);
        let s = t.render();
        assert!(s.starts_with("## demo\n"));
        assert!(s.contains("|   k | value |"));
        assert!(s.contains("| 200 |     3 |"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        Table::new("t", &["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(n(42), "42");
    }
}
