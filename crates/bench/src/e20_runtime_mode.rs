//! E20 — runtime mode: the hosted threaded graph vs the FIFO driver,
//! measured through the *facade*.
//!
//! E3 and E18 price the threaded stages bare; this experiment prices
//! the deployment decision the facade actually offers:
//! [`garnet_core::DriverKind::Fifo`] (the simulation engine) against
//! [`garnet_core::DriverKind::Threaded`] (the hosted worker pools),
//! with the full `Garnet` API — consumer callbacks, orphanage, metrics
//! — in the loop. Both modes process the identical pre-encoded
//! workload and must deliver every frame; the drivers are
//! bit-identical in outcome, so the only thing this sweep can show is
//! wall-clock.
//!
//! Emits `BENCH_runtime_mode.json` via
//! [`crate::e03_pipeline::sweep_json`]: point 0 is the FIFO driver
//! (recorded as one "shard"), the remaining points are the threaded
//! driver at increasing shard counts, so `speedup_vs_1` reads as
//! "threaded deployment speedup over the simulation engine".
//! `host_cores` is included so consumers of the document can apply the
//! same gate the bench harness does: no speedup is claimed unless the
//! host has at least two cores.

use garnet_core::middleware::{Garnet, GarnetConfig};
use garnet_core::pipeline::SharedCountConsumer;
use garnet_core::DriverKind;
use garnet_net::TopicFilter;
use garnet_radio::ReceiverId;
use garnet_simkit::SimTime;

use crate::e03_pipeline::{host_cores, shard_workload, sweep_json, ShardPoint};
use crate::table::{f2, n, Table};

/// Shard counts the threaded points sweep (the FIFO point is always 1).
pub const THREADED_SHARDS: [usize; 3] = [1, 2, 4];

/// Pushes `workload` through a facade in `driver` mode with `shards`
/// ingest and dispatch shards, returning the wall-clock sample. Panics
/// if any delivery is lost: the workload is duplicate- and gap-free and
/// one consumer subscribes to everything, so delivered must equal
/// offered in both modes.
pub fn run_mode_point(
    workload: &[garnet_wire::FrameBytes],
    driver: DriverKind,
    shards: usize,
) -> ShardPoint {
    let started = std::time::Instant::now();
    let mut garnet = Garnet::new(GarnetConfig {
        driver,
        ingest_shards: shards,
        dispatch_shards: shards,
        ..GarnetConfig::default()
    });
    let token = garnet.issue_default_token("bench");
    let (consumer, delivered) = SharedCountConsumer::new("bench");
    let id = garnet.register_consumer(Box::new(consumer), &token, 0).unwrap();
    garnet.subscribe(id, TopicFilter::All, &token).unwrap();
    let frames: Vec<_> = workload
        .iter()
        .enumerate()
        .map(|(i, f)| (ReceiverId::new((i % 4) as u32), -40.0, f.clone()))
        .collect();
    let last = SimTime::from_micros(workload.len() as u64);
    garnet.on_frames(frames, last);
    garnet.on_tick(SimTime::from_secs(3_600));
    garnet.shutdown(SimTime::from_secs(3_600)).expect("no archive configured");
    let elapsed = started.elapsed();
    let count = delivered.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(count, workload.len() as u64, "{driver:?} lost deliveries");
    ShardPoint {
        shards,
        frames: count,
        elapsed_us: elapsed.as_micros() as u64,
        throughput_fps: count as f64 / elapsed.as_secs_f64(),
    }
}

/// Runs the mode sweep: the FIFO baseline first, then the threaded
/// driver across [`THREADED_SHARDS`].
pub fn run_mode_sweep(workload: &[garnet_wire::FrameBytes]) -> Vec<ShardPoint> {
    let mut points = vec![run_mode_point(workload, DriverKind::Fifo, 1)];
    for &shards in &THREADED_SHARDS {
        points.push(run_mode_point(workload, DriverKind::Threaded, shards));
    }
    points
}

/// Runs the sweep and renders the JSON document for
/// `BENCH_runtime_mode.json`.
pub fn runtime_mode_json(frames: u32, sensors: u32) -> String {
    let workload = shard_workload(frames, sensors);
    let points = run_mode_sweep(&workload);
    sweep_json("e20_runtime_mode", "Garnet(Fifo|Threaded)", host_cores(), &points)
}

/// Runs the sweep for the experiments binary.
pub fn run() -> (Vec<ShardPoint>, Table) {
    let workload = shard_workload(20_000, 64);
    let points = run_mode_sweep(&workload);
    let mut table = Table::new(
        "E20 — runtime mode: hosted threaded graph vs FIFO driver through the facade",
        &["mode", "shards", "frames", "elapsed µs", "frames/s", "speedup vs fifo"],
    );
    let base = points[0].throughput_fps;
    for (i, p) in points.iter().enumerate() {
        table.row(&[
            if i == 0 { "fifo".into() } else { "threaded".into() },
            n(p.shards as u64),
            n(p.frames),
            n(p.elapsed_us),
            f2(p.throughput_fps),
            f2(p.throughput_fps / base),
        ]);
    }
    (points, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_mode_sweep_is_lossless_and_serialisable() {
        let json = runtime_mode_json(1_000, 16);
        assert!(json.contains("\"bench\": \"e20_runtime_mode\""));
        assert!(json.contains("\"driver\": \"Garnet(Fifo|Threaded)\""));
        assert!(json.contains("\"host_cores\""));
        assert!(json.contains("\"speedup_vs_1\""));
        assert!(json.contains("\"frames\": 1000"));
        // One FIFO point plus every threaded shard count.
        assert_eq!(json.matches("{\"shards\":").count(), 1 + THREADED_SHARDS.len());
    }
}
