//! Pluggable segment storage.
//!
//! A [`SegmentStore`] is the narrow waist the archive writes through:
//! numbered byte segments supporting append, whole-segment read,
//! truncate and remove. Keeping the surface this small is what makes
//! the [`crate::faulty::FaultyStore`] wrapper able to model every
//! storage failure the recovery scan must survive, and what lets tests
//! swap a real directory for an in-memory map without touching the
//! archive logic.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Identifies one append-only segment. Segments are strictly ordered:
/// the archive only ever appends to the highest id.
pub type SegmentId = u64;

/// A storage-backend failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The backend failed (I/O error text from the OS, or an injected
    /// fault description).
    Io(String),
    /// The backend refused the write — an injected stall or a wedged
    /// device. The archive counts the record as dropped and delivery
    /// continues.
    Stalled,
    /// The segment does not exist.
    MissingSegment(SegmentId),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage I/O failure: {e}"),
            StoreError::Stalled => write!(f, "storage stalled"),
            StoreError::MissingSegment(id) => write!(f, "segment {id} does not exist"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Append-only segment storage.
///
/// Reads take `&mut self` so fault-injecting implementations can
/// advance their deterministic fault stream on every operation, not
/// just on writes.
pub trait SegmentStore: Send + std::fmt::Debug {
    /// Appends `bytes` to `segment`, creating it if absent.
    fn append(&mut self, segment: SegmentId, bytes: &[u8]) -> Result<(), StoreError>;

    /// Reads a segment's full contents.
    fn read(&mut self, segment: SegmentId) -> Result<Vec<u8>, StoreError>;

    /// A segment's current length in bytes.
    fn len(&mut self, segment: SegmentId) -> Result<u64, StoreError>;

    /// Truncates a segment to `len` bytes (the recovery scan cutting a
    /// torn tail).
    fn truncate(&mut self, segment: SegmentId, len: u64) -> Result<(), StoreError>;

    /// Removes a segment entirely (the recovery scan dropping segments
    /// past the first corruption).
    fn remove(&mut self, segment: SegmentId) -> Result<(), StoreError>;

    /// Every existing segment id, ascending.
    fn segments(&mut self) -> Result<Vec<SegmentId>, StoreError>;

    /// Makes previous appends durable.
    fn sync(&mut self) -> Result<(), StoreError> {
        Ok(())
    }
}

/// In-memory backend: a map of segment id → bytes. The reference
/// implementation (and the replay tests' store of choice: recovery and
/// replay read back exactly what was appended, no filesystem between).
#[derive(Debug, Default)]
pub struct MemStore {
    segments: BTreeMap<SegmentId, Vec<u8>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

impl SegmentStore for MemStore {
    fn append(&mut self, segment: SegmentId, bytes: &[u8]) -> Result<(), StoreError> {
        self.segments.entry(segment).or_default().extend_from_slice(bytes);
        Ok(())
    }

    fn read(&mut self, segment: SegmentId) -> Result<Vec<u8>, StoreError> {
        self.segments.get(&segment).cloned().ok_or(StoreError::MissingSegment(segment))
    }

    fn len(&mut self, segment: SegmentId) -> Result<u64, StoreError> {
        self.segments
            .get(&segment)
            .map(|s| s.len() as u64)
            .ok_or(StoreError::MissingSegment(segment))
    }

    fn truncate(&mut self, segment: SegmentId, len: u64) -> Result<(), StoreError> {
        let seg = self.segments.get_mut(&segment).ok_or(StoreError::MissingSegment(segment))?;
        seg.truncate(len as usize);
        Ok(())
    }

    fn remove(&mut self, segment: SegmentId) -> Result<(), StoreError> {
        self.segments.remove(&segment).map(|_| ()).ok_or(StoreError::MissingSegment(segment))
    }

    fn segments(&mut self) -> Result<Vec<SegmentId>, StoreError> {
        Ok(self.segments.keys().copied().collect())
    }
}

/// Directory backend: one `segment-NNNNNNNNNNNNNNNNNNNN.log` file per
/// segment under a root directory.
#[derive(Debug)]
pub struct FileStore {
    root: PathBuf,
}

fn io_err(e: std::io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

impl FileStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<FileStore, StoreError> {
        let root = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&root).map_err(io_err)?;
        Ok(FileStore { root })
    }

    fn path(&self, segment: SegmentId) -> PathBuf {
        self.root.join(format!("segment-{segment:020}.log"))
    }
}

impl SegmentStore for FileStore {
    fn append(&mut self, segment: SegmentId, bytes: &[u8]) -> Result<(), StoreError> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.path(segment))
            .map_err(io_err)?;
        f.write_all(bytes).map_err(io_err)
    }

    fn read(&mut self, segment: SegmentId) -> Result<Vec<u8>, StoreError> {
        match std::fs::read(self.path(segment)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::MissingSegment(segment))
            }
            Err(e) => Err(io_err(e)),
        }
    }

    fn len(&mut self, segment: SegmentId) -> Result<u64, StoreError> {
        match std::fs::metadata(self.path(segment)) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::MissingSegment(segment))
            }
            Err(e) => Err(io_err(e)),
        }
    }

    fn truncate(&mut self, segment: SegmentId, len: u64) -> Result<(), StoreError> {
        let f =
            std::fs::OpenOptions::new().write(true).open(self.path(segment)).map_err(
                |e| match e.kind() {
                    std::io::ErrorKind::NotFound => StoreError::MissingSegment(segment),
                    _ => io_err(e),
                },
            )?;
        f.set_len(len).map_err(io_err)
    }

    fn remove(&mut self, segment: SegmentId) -> Result<(), StoreError> {
        match std::fs::remove_file(self.path(segment)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::MissingSegment(segment))
            }
            Err(e) => Err(io_err(e)),
        }
    }

    fn segments(&mut self) -> Result<Vec<SegmentId>, StoreError> {
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(&self.root).map_err(io_err)? {
            let name = entry.map_err(io_err)?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(digits) = name.strip_prefix("segment-").and_then(|r| r.strip_suffix(".log"))
            {
                if let Ok(id) = digits.parse::<SegmentId>() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        // Appends open/close the file per call, so data has already left
        // the process; flush the directory's file contents explicitly
        // for the crash-consistency story.
        for id in self.segments()? {
            if let Ok(f) = std::fs::File::open(self.path(id)) {
                f.sync_all().map_err(io_err)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn SegmentStore) {
        store.append(0, b"hello ").unwrap();
        store.append(0, b"world").unwrap();
        store.append(2, b"xyz").unwrap();
        assert_eq!(store.segments().unwrap(), vec![0, 2]);
        assert_eq!(store.read(0).unwrap(), b"hello world");
        assert_eq!(store.len(0).unwrap(), 11);
        store.truncate(0, 5).unwrap();
        assert_eq!(store.read(0).unwrap(), b"hello");
        store.remove(2).unwrap();
        assert_eq!(store.segments().unwrap(), vec![0]);
        assert_eq!(store.read(2), Err(StoreError::MissingSegment(2)));
        assert_eq!(store.len(9), Err(StoreError::MissingSegment(9)));
        store.sync().unwrap();
    }

    #[test]
    fn mem_store_contract() {
        exercise(&mut MemStore::new());
    }

    #[test]
    fn file_store_contract() {
        let dir =
            std::env::temp_dir().join(format!("garnet-store-test-{}-contract", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = FileStore::open(&dir).unwrap();
        exercise(&mut store);
        // Reopening sees the same state: durability across instances.
        let mut reopened = FileStore::open(&dir).unwrap();
        assert_eq!(reopened.read(0).unwrap(), b"hello");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
