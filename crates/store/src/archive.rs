//! The frame archive: segment-rolling writer, crash-recovery scan and
//! range replay.
//!
//! A [`FrameArchive`] owns a boxed [`SegmentStore`] and appends
//! [`ArchiveRecord`]s to the highest-numbered segment, rolling to a
//! fresh segment once the current one passes its size bound. Opening an
//! archive always runs the **recovery scan** first: segments are read
//! in ascending order and parsed record by record; at the first corrupt
//! or torn record the segment is truncated to its last valid byte and
//! every later segment is dropped — an acknowledged record is never
//! lost (it precedes any corruption by append order) and a torn record
//! is never resurrected (its bytes fail the CRC and are cut). The scan
//! also rebuilds the per-stream high-water marks, giving the runtime a
//! consistent `(StreamId, seq)` frontier to resume from.

use std::collections::BTreeMap;

use crate::record::{ArchiveRecord, RecordError};
use crate::segment::{SegmentId, SegmentStore, StoreError};

/// Where the recovery scan cut a segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Truncation {
    /// The segment that held the first corrupt record.
    pub segment: SegmentId,
    /// The segment's length after the cut (its valid prefix).
    pub valid_len: u64,
    /// Bytes discarded from this segment by the cut.
    pub lost_bytes: u64,
    /// Why the first invalid record failed to parse.
    pub error: RecordError,
}

/// What the recovery scan found and repaired.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// Valid records across all surviving segments.
    pub records: u64,
    /// …of which frame records.
    pub frames: u64,
    /// …of which tick records.
    pub ticks: u64,
    /// …of which ack records.
    pub acks: u64,
    /// The cut, when a corrupt record was found (`None` = clean log).
    pub truncation: Option<Truncation>,
    /// Segments dropped wholesale because they followed the cut.
    pub dropped_segments: Vec<SegmentId>,
    /// Surviving segments, ascending.
    pub segments: Vec<SegmentId>,
    /// Per-stream high-water mark: the last archived sequence number of
    /// each stream (raw stream id → seq), in append order — the frontier
    /// a restarted runtime resumes from.
    pub high_water: BTreeMap<u32, u16>,
}

/// Why a replay read failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayError {
    /// The backend failed.
    Store(StoreError),
    /// A record failed to parse (replay only walks recovered archives,
    /// so this means the store corrupted data *after* recovery — e.g. a
    /// short read or read-side bit flip).
    Record {
        /// The segment holding the bad record.
        segment: SegmentId,
        /// Byte offset of the record's start within the segment.
        offset: u64,
        /// The parse failure.
        error: RecordError,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Store(e) => write!(f, "replay read failed: {e}"),
            ReplayError::Record { segment, offset, error } => {
                write!(f, "corrupt record in segment {segment} at offset {offset}: {error}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<StoreError> for ReplayError {
    fn from(e: StoreError) -> Self {
        ReplayError::Store(e)
    }
}

/// Walks `bytes`, collecting valid records and the offset/error of the
/// first invalid one.
fn scan_records(bytes: &[u8]) -> (Vec<ArchiveRecord>, u64, Option<(u64, RecordError)>) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        match ArchiveRecord::decode(&bytes[offset..]) {
            Ok((rec, used)) => {
                records.push(rec);
                offset += used;
            }
            Err(e) => return (records, offset as u64, Some((offset as u64, e))),
        }
    }
    (records, offset as u64, None)
}

/// The segment-rolling archive writer/reader.
pub struct FrameArchive {
    store: Box<dyn SegmentStore>,
    segment_max_bytes: u64,
    current: SegmentId,
    current_len: u64,
    appended: u64,
}

impl std::fmt::Debug for FrameArchive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameArchive")
            .field("segment_max_bytes", &self.segment_max_bytes)
            .field("current", &self.current)
            .field("current_len", &self.current_len)
            .field("appended", &self.appended)
            .finish_non_exhaustive()
    }
}

impl FrameArchive {
    /// Opens an archive over `store`, running the recovery scan first.
    /// The writer resumes at the end of the last surviving segment.
    /// `segment_max_bytes` bounds a segment before the writer rolls to
    /// the next id (0 is treated as 1: every record gets its own
    /// segment).
    pub fn open(
        mut store: Box<dyn SegmentStore>,
        segment_max_bytes: u64,
    ) -> Result<(FrameArchive, RecoveryReport), StoreError> {
        let report = Self::recover(store.as_mut())?;
        let current = report.segments.last().copied().unwrap_or(0);
        let current_len = if report.segments.is_empty() { 0 } else { store.len(current)? };
        Ok((
            FrameArchive {
                store,
                segment_max_bytes: segment_max_bytes.max(1),
                current,
                current_len,
                appended: 0,
            },
            report,
        ))
    }

    /// The recovery scan: parses every segment in ascending order,
    /// truncates the first segment holding a corrupt record to its
    /// valid prefix, removes all later segments, and rebuilds the
    /// per-stream high-water marks from the surviving records.
    pub fn recover(store: &mut dyn SegmentStore) -> Result<RecoveryReport, StoreError> {
        let mut report = RecoveryReport::default();
        let ids = store.segments()?;
        let mut cut_at: Option<usize> = None;
        for (i, &id) in ids.iter().enumerate() {
            let bytes = store.read(id)?;
            let (records, valid_len, bad) = scan_records(&bytes);
            for rec in &records {
                report.records += 1;
                match rec {
                    ArchiveRecord::Frame { .. } => {
                        report.frames += 1;
                        if let (Some(stream), Some(seq)) = (rec.stream(), rec.seq()) {
                            report.high_water.insert(stream.to_raw(), seq);
                        }
                    }
                    ArchiveRecord::Tick { .. } => report.ticks += 1,
                    ArchiveRecord::Ack { .. } => report.acks += 1,
                }
            }
            if let Some((offset, error)) = bad {
                store.truncate(id, valid_len)?;
                report.truncation = Some(Truncation {
                    segment: id,
                    valid_len,
                    lost_bytes: bytes.len() as u64 - offset,
                    error,
                });
                report.segments.push(id);
                cut_at = Some(i + 1);
                break;
            }
            report.segments.push(id);
        }
        if let Some(from) = cut_at {
            for &id in &ids[from..] {
                store.remove(id)?;
                report.dropped_segments.push(id);
            }
        }
        Ok(report)
    }

    /// Appends one record, rolling to a new segment when the current
    /// one is full. A backend error leaves the archive usable: the
    /// caller counts the record dropped and delivery continues.
    pub fn append(&mut self, rec: &ArchiveRecord) -> Result<(), StoreError> {
        self.append_bytes(&rec.encode())
    }

    /// Appends one pre-encoded record (the archiver worker's hand-off
    /// format: the facade encodes on its own thread, so record bytes —
    /// and therefore the archive — are independent of worker timing).
    pub fn append_bytes(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        if self.current_len > 0 && self.current_len + bytes.len() as u64 > self.segment_max_bytes {
            self.current += 1;
            self.current_len = 0;
        }
        self.store.append(self.current, bytes)?;
        self.current_len += bytes.len() as u64;
        self.appended += 1;
        Ok(())
    }

    /// Flushes the backend.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.store.sync()
    }

    /// Records appended through this handle (not counting recovered
    /// history).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// The segment currently being appended to.
    pub fn current_segment(&self) -> SegmentId {
        self.current
    }

    /// Reads and decodes every record in the segment range
    /// `from..=to` (ascending; missing ids inside the range are
    /// skipped — segment ids need not be contiguous after recovery).
    pub fn read_range(
        &mut self,
        from: SegmentId,
        to: SegmentId,
    ) -> Result<Vec<ArchiveRecord>, ReplayError> {
        let ids: Vec<SegmentId> =
            self.store.segments()?.into_iter().filter(|id| (from..=to).contains(id)).collect();
        let mut out = Vec::new();
        for id in ids {
            let bytes = self.store.read(id)?;
            let (records, _, bad) = scan_records(&bytes);
            out.extend(records);
            if let Some((offset, error)) = bad {
                return Err(ReplayError::Record { segment: id, offset, error });
            }
        }
        Ok(out)
    }

    /// Every record in the archive, in append order.
    pub fn read_all(&mut self) -> Result<Vec<ArchiveRecord>, ReplayError> {
        self.read_range(SegmentId::MIN, SegmentId::MAX)
    }

    /// Gives the backend store back (to stash in a config slot or
    /// inspect after shutdown).
    pub fn into_store(self) -> Box<dyn SegmentStore> {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::MemStore;
    use garnet_simkit::SimTime;
    use garnet_wire::FrameBytes;

    fn frame_rec(stream_sensor: u32, seq: u16, at: u64) -> ArchiveRecord {
        use garnet_wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};
        let stream = StreamId::new(SensorId::new(stream_sensor).unwrap(), StreamIndex::new(0));
        let wire = DataMessage::builder(stream)
            .seq(SequenceNumber::new(seq))
            .payload(vec![seq as u8])
            .build()
            .unwrap()
            .encode_to_vec();
        ArchiveRecord::frame(0, -50.0, FrameBytes::from(wire), SimTime::from_micros(at))
    }

    fn open_mem(max: u64) -> FrameArchive {
        FrameArchive::open(Box::new(MemStore::new()), max).unwrap().0
    }

    #[test]
    fn append_read_back_round_trips_in_order() {
        let mut a = open_mem(1 << 20);
        let recs = vec![
            frame_rec(1, 0, 10),
            ArchiveRecord::Tick { at_us: 20 },
            frame_rec(1, 1, 30),
            ArchiveRecord::Ack {
                at_us: 40,
                request_id: 9,
                status: garnet_wire::AckStatus::Applied,
            },
        ];
        for r in &recs {
            a.append(r).unwrap();
        }
        assert_eq!(a.read_all().unwrap(), recs);
    }

    #[test]
    fn segments_roll_at_the_size_bound() {
        let mut a = open_mem(64);
        for seq in 0..20u16 {
            a.append(&frame_rec(1, seq, u64::from(seq))).unwrap();
        }
        assert!(a.current_segment() > 0, "64-byte segments must roll over 20 records");
        // The roll is invisible to readers: everything comes back in order.
        let all = a.read_all().unwrap();
        assert_eq!(all.len(), 20);
        let seqs: Vec<u16> = all.iter().map(|r| r.seq().unwrap()).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn recovery_truncates_at_first_corruption_and_drops_later_segments() {
        // Three hand-built segments of four records each; flip one byte
        // in the middle of segment 1.
        let mut store = MemStore::new();
        for seg in 0..3u64 {
            let mut buf = Vec::new();
            for i in 0..4u16 {
                frame_rec(1, seg as u16 * 4 + i, 0).encode_into(&mut buf);
            }
            if seg == 1 {
                let cut = buf.len() / 2;
                buf[cut] ^= 0x40;
            }
            store.append(seg, &buf).unwrap();
        }

        let report = FrameArchive::recover(&mut store).unwrap();
        let t = report.truncation.expect("corruption must be found");
        assert_eq!(t.segment, 1);
        assert_eq!(report.segments, vec![0, 1], "segments after the cut are gone");
        assert_eq!(report.dropped_segments, vec![2]);
        assert!(report.records >= 4, "segment 0 fully recovered");
        assert!(report.records < 12, "corrupt tail not resurrected");
        // Re-scan is clean and idempotent.
        let again = FrameArchive::recover(&mut store).unwrap();
        assert_eq!(again.truncation, None);
        assert_eq!(again.records, report.records);
    }

    #[test]
    fn high_water_marks_track_last_archived_seq_per_stream() {
        let mut store = MemStore::new();
        let mut buf = Vec::new();
        for (sensor, seq) in [(1u32, 0u16), (2, 5), (1, 1), (2, 6), (1, 2)] {
            frame_rec(sensor, seq, 0).encode_into(&mut buf);
        }
        store.append(0, &buf).unwrap();
        let report = FrameArchive::recover(&mut store).unwrap();
        let hw: Vec<u16> = report.high_water.values().copied().collect();
        assert_eq!(hw, vec![2, 6]);
        assert_eq!(report.frames, 5);
    }

    #[test]
    fn open_resumes_appending_after_recovery() {
        let mut store = MemStore::new();
        store.append(0, &frame_rec(1, 0, 0).encode()).unwrap();
        // A torn tail: half a record.
        let torn = frame_rec(1, 1, 1).encode();
        store.append(0, &torn[..torn.len() / 2]).unwrap();

        let (mut a, report) = FrameArchive::open(Box::new(store), 1 << 20).unwrap();
        assert_eq!(report.records, 1);
        assert!(report.truncation.is_some());
        a.append(&frame_rec(1, 1, 2)).unwrap();
        let all = a.read_all().unwrap();
        assert_eq!(all.len(), 2, "the re-sent record lands after the cut, no gap, no ghost");
        assert_eq!(all[1].seq(), Some(1));
    }
}
