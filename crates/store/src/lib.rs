//! # garnet-store
//!
//! The durable boundary behind the middleware: an append-only,
//! segmented, CRC-checked log of every frame and control event the
//! facade accepted, so a process crash no longer erases history and a
//! late joiner can be rebuilt from disk instead of the orphanage.
//!
//! The layering, bottom-up:
//!
//! * [`record`] — the record codec: one [`record::ArchiveRecord`] per
//!   boundary input (frame burst member, maintenance tick, standalone
//!   acknowledgement), length-prefixed and sealed with CRC-32.
//! * [`segment`] — the [`segment::SegmentStore`] trait (append / read /
//!   truncate / remove over numbered segments) with two backends: the
//!   in-memory [`segment::MemStore`] and the directory-backed
//!   [`segment::FileStore`].
//! * [`faulty`] — [`faulty::FaultyStore`], a deterministic
//!   fault-injection wrapper (torn writes, bit flips, short reads,
//!   write stalls) for crash-recovery and corruption-detection tests.
//! * [`archive`] — [`archive::FrameArchive`], the writer/reader that
//!   rolls segments, runs the recovery scan on open (truncating at the
//!   first corrupt record) and replays a segment range.
//!
//! The crate is deliberately runtime-free: no threads, no channels, no
//! clocks. `garnet-net` hosts the archiver worker thread and
//! `garnet-core` owns the facade tap; everything here is a pure state
//! machine over bytes, which is what makes recovery and replay
//! deterministic enough to assert bit-identity on.

pub mod archive;
pub mod faulty;
pub mod record;
pub mod segment;

pub use archive::{FrameArchive, RecoveryReport, ReplayError, Truncation};
pub use faulty::{FaultPlan, FaultyStore};
pub use record::{ArchiveRecord, RecordError};
pub use segment::{FileStore, MemStore, SegmentId, SegmentStore, StoreError};
