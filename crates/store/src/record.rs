//! The archive record codec.
//!
//! Every boundary input the facade accepts becomes one record:
//!
//! ```text
//!   ┌───────┬──────┬──────────┬────────────────┬─────────┐
//!   │ magic │ kind │ body len │ body           │ CRC-32  │
//!   │ 1 B   │ 1 B  │ 4 B LE   │ body-len bytes │ 4 B LE  │
//!   └───────┴──────┴──────────┴────────────────┴─────────┘
//! ```
//!
//! The CRC-32 (ISO-HDLC, shared with `garnet-wire`'s control messages)
//! covers everything before the trailer, so a torn write, a bit flip
//! or a short read anywhere in the record is detected on decode — a
//! corrupt record never surfaces as a decoded frame. Frame payloads are
//! stored as the exact wire bytes ([`FrameBytes`]), so replaying a
//! record re-offers the *identical* frame the radio delivered,
//! including its own CRC-16 trailer.

use garnet_simkit::SimTime;
use garnet_wire::crc::crc32;
use garnet_wire::{peek_seq, peek_stream, AckStatus, FrameBytes, RequestId, StreamId};

/// First byte of every record.
pub const RECORD_MAGIC: u8 = 0xA7;
/// Fixed prefix: magic, kind, body length.
pub const RECORD_HEADER_LEN: usize = 6;
/// CRC-32 trailer.
pub const RECORD_TRAILER_LEN: usize = 4;

const KIND_FRAME: u8 = 1;
const KIND_TICK: u8 = 2;
const KIND_ACK: u8 = 3;

/// Why a record failed to decode. Every variant means "stop here": the
/// recovery scan truncates the segment at the record's start offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordError {
    /// The buffer ends before the record does (torn write / short read).
    Truncated,
    /// The first byte is not [`RECORD_MAGIC`].
    BadMagic(u8),
    /// Unknown record kind.
    BadKind(u8),
    /// The CRC-32 trailer does not match the record bytes.
    BadCrc,
    /// The body length is inconsistent with the record kind.
    BadBody,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated => write!(f, "record truncated"),
            RecordError::BadMagic(b) => write!(f, "bad record magic 0x{b:02X}"),
            RecordError::BadKind(k) => write!(f, "unknown record kind {k}"),
            RecordError::BadCrc => write!(f, "record CRC mismatch"),
            RecordError::BadBody => write!(f, "record body inconsistent with its kind"),
        }
    }
}

impl std::error::Error for RecordError {}

/// One archived boundary input.
#[derive(Clone, Debug, PartialEq)]
pub enum ArchiveRecord {
    /// One frame of an admitted burst, with its arrival context — the
    /// exact arguments a replay feeds back into `Garnet::on_frames`.
    Frame {
        /// Simulated arrival time, µs.
        at_us: u64,
        /// The receiver that heard it (raw id).
        receiver: u32,
        /// Received signal strength, as IEEE-754 bits (exact round-trip).
        rssi_bits: u64,
        /// The encoded wire frame (shared slice; appending never copies).
        frame: FrameBytes,
    },
    /// One `Garnet::on_tick` maintenance call (reorder flushes and
    /// actuation retries change delivery order, so replay must repeat
    /// them at the same instants).
    Tick {
        /// Simulated time of the tick, µs.
        at_us: u64,
    },
    /// One standalone acknowledgement.
    Ack {
        /// Simulated arrival time, µs.
        at_us: u64,
        /// The acknowledged request.
        request_id: u32,
        /// How the sensor responded.
        status: AckStatus,
    },
}

fn ack_status_byte(status: AckStatus) -> u8 {
    match status {
        AckStatus::Applied => 0,
        AckStatus::Unsupported => 1,
        AckStatus::ConstraintViolation => 2,
        AckStatus::Deferred => 3,
    }
}

fn ack_status_from_byte(b: u8) -> Result<AckStatus, RecordError> {
    match b {
        0 => Ok(AckStatus::Applied),
        1 => Ok(AckStatus::Unsupported),
        2 => Ok(AckStatus::ConstraintViolation),
        3 => Ok(AckStatus::Deferred),
        _ => Err(RecordError::BadBody),
    }
}

impl ArchiveRecord {
    /// Builds a frame record from the facade's ingest arguments.
    pub fn frame(receiver: u32, rssi_dbm: f64, frame: FrameBytes, now: SimTime) -> ArchiveRecord {
        ArchiveRecord::Frame {
            at_us: now.as_micros(),
            receiver,
            rssi_bits: rssi_dbm.to_bits(),
            frame,
        }
    }

    /// Builds a tick record.
    pub fn tick(now: SimTime) -> ArchiveRecord {
        ArchiveRecord::Tick { at_us: now.as_micros() }
    }

    /// Builds a standalone-ack record.
    pub fn ack(request_id: RequestId, status: AckStatus, now: SimTime) -> ArchiveRecord {
        ArchiveRecord::Ack { at_us: now.as_micros(), request_id: request_id.as_u32(), status }
    }

    /// The record's simulated time, µs.
    pub fn at_us(&self) -> u64 {
        match self {
            ArchiveRecord::Frame { at_us, .. }
            | ArchiveRecord::Tick { at_us }
            | ArchiveRecord::Ack { at_us, .. } => *at_us,
        }
    }

    /// The archived frame's stream id, when this is a frame record whose
    /// header is peekable — the `(StreamId, seq)` key's first half.
    pub fn stream(&self) -> Option<StreamId> {
        match self {
            ArchiveRecord::Frame { frame, .. } => peek_stream(frame),
            _ => None,
        }
    }

    /// The archived frame's sequence number, when peekable — the key's
    /// second half.
    pub fn seq(&self) -> Option<u16> {
        match self {
            ArchiveRecord::Frame { frame, .. } => peek_seq(frame).map(|s| s.as_u16()),
            _ => None,
        }
    }

    fn kind(&self) -> u8 {
        match self {
            ArchiveRecord::Frame { .. } => KIND_FRAME,
            ArchiveRecord::Tick { .. } => KIND_TICK,
            ArchiveRecord::Ack { .. } => KIND_ACK,
        }
    }

    fn body_len(&self) -> usize {
        match self {
            ArchiveRecord::Frame { frame, .. } => 20 + frame.len(),
            ArchiveRecord::Tick { .. } => 8,
            ArchiveRecord::Ack { .. } => 13,
        }
    }

    /// The record's full encoded length, header and trailer included.
    pub fn encoded_len(&self) -> usize {
        RECORD_HEADER_LEN + self.body_len() + RECORD_TRAILER_LEN
    }

    /// Appends the encoded record to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.push(RECORD_MAGIC);
        out.push(self.kind());
        out.extend_from_slice(&(self.body_len() as u32).to_le_bytes());
        match self {
            ArchiveRecord::Frame { at_us, receiver, rssi_bits, frame } => {
                out.extend_from_slice(&at_us.to_le_bytes());
                out.extend_from_slice(&receiver.to_le_bytes());
                out.extend_from_slice(&rssi_bits.to_le_bytes());
                out.extend_from_slice(frame);
            }
            ArchiveRecord::Tick { at_us } => out.extend_from_slice(&at_us.to_le_bytes()),
            ArchiveRecord::Ack { at_us, request_id, status } => {
                out.extend_from_slice(&at_us.to_le_bytes());
                out.extend_from_slice(&request_id.to_le_bytes());
                out.push(ack_status_byte(*status));
            }
        }
        let crc = crc32(&out[start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// The encoded record as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Decodes one record from the front of `buf`, returning it and the
    /// number of bytes consumed. Any mismatch — truncation, bad magic,
    /// bad kind, bad CRC, a body inconsistent with its kind — is an
    /// error; no partial record ever decodes.
    pub fn decode(buf: &[u8]) -> Result<(ArchiveRecord, usize), RecordError> {
        if buf.len() < RECORD_HEADER_LEN {
            return Err(RecordError::Truncated);
        }
        if buf[0] != RECORD_MAGIC {
            return Err(RecordError::BadMagic(buf[0]));
        }
        let kind = buf[1];
        let body_len = u32::from_le_bytes([buf[2], buf[3], buf[4], buf[5]]) as usize;
        let total = RECORD_HEADER_LEN + body_len + RECORD_TRAILER_LEN;
        if buf.len() < total {
            return Err(RecordError::Truncated);
        }
        let crc_off = RECORD_HEADER_LEN + body_len;
        let stored = u32::from_le_bytes([
            buf[crc_off],
            buf[crc_off + 1],
            buf[crc_off + 2],
            buf[crc_off + 3],
        ]);
        if crc32(&buf[..crc_off]) != stored {
            return Err(RecordError::BadCrc);
        }
        let body = &buf[RECORD_HEADER_LEN..crc_off];
        let le8 = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("8-byte slice"));
        let le4 = |b: &[u8]| u32::from_le_bytes(b.try_into().expect("4-byte slice"));
        let rec = match kind {
            KIND_FRAME => {
                if body.len() < 20 {
                    return Err(RecordError::BadBody);
                }
                ArchiveRecord::Frame {
                    at_us: le8(&body[0..8]),
                    receiver: le4(&body[8..12]),
                    rssi_bits: le8(&body[12..20]),
                    frame: FrameBytes::copy_from_slice(&body[20..]),
                }
            }
            KIND_TICK => {
                if body.len() != 8 {
                    return Err(RecordError::BadBody);
                }
                ArchiveRecord::Tick { at_us: le8(&body[0..8]) }
            }
            KIND_ACK => {
                if body.len() != 13 {
                    return Err(RecordError::BadBody);
                }
                ArchiveRecord::Ack {
                    at_us: le8(&body[0..8]),
                    request_id: le4(&body[8..12]),
                    status: ack_status_from_byte(body[12])?,
                }
            }
            other => return Err(RecordError::BadKind(other)),
        };
        Ok((rec, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> ArchiveRecord {
        ArchiveRecord::Frame {
            at_us: 12_345,
            receiver: 3,
            rssi_bits: (-51.25f64).to_bits(),
            frame: FrameBytes::copy_from_slice(&[9, 8, 7, 6, 5]),
        }
    }

    #[test]
    fn all_kinds_round_trip() {
        for rec in [
            sample_frame(),
            ArchiveRecord::Tick { at_us: 99 },
            ArchiveRecord::Ack { at_us: 7, request_id: 42, status: AckStatus::Deferred },
        ] {
            let bytes = rec.encode();
            assert_eq!(bytes.len(), rec.encoded_len());
            let (back, used) = ArchiveRecord::decode(&bytes).unwrap();
            assert_eq!(back, rec);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample_frame().encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    ArchiveRecord::decode(&corrupt).is_err(),
                    "flip at byte {byte} bit {bit} decoded silently"
                );
            }
        }
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let bytes = sample_frame().encode();
        for cut in 0..bytes.len() {
            assert!(
                ArchiveRecord::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded silently"
            );
        }
    }

    #[test]
    fn decode_consumes_exactly_one_record_from_a_run() {
        let mut buf = sample_frame().encode();
        let second = ArchiveRecord::Tick { at_us: 1 };
        second.encode_into(&mut buf);
        let (first, used) = ArchiveRecord::decode(&buf).unwrap();
        assert_eq!(first, sample_frame());
        let (next, _) = ArchiveRecord::decode(&buf[used..]).unwrap();
        assert_eq!(next, second);
    }

    #[test]
    fn frame_key_peeks_stream_and_seq_from_wire_bytes() {
        use garnet_wire::{DataMessage, SensorId, SequenceNumber, StreamIndex};
        let stream = StreamId::new(SensorId::new(5).unwrap(), StreamIndex::new(1));
        let wire = DataMessage::builder(stream)
            .seq(SequenceNumber::new(77))
            .payload(vec![1])
            .build()
            .unwrap()
            .encode_to_vec();
        let rec = ArchiveRecord::frame(0, -40.0, FrameBytes::from(wire), SimTime::from_micros(10));
        assert_eq!(rec.stream(), Some(stream));
        assert_eq!(rec.seq(), Some(77));
        assert_eq!(ArchiveRecord::Tick { at_us: 0 }.stream(), None);
    }
}
