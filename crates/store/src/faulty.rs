//! Deterministic storage fault injection.
//!
//! [`FaultyStore`] wraps any [`SegmentStore`] and corrupts its traffic
//! according to a seeded [`FaultPlan`]: torn writes (only a prefix of
//! an append persists — the crash-mid-append case), bit flips (media
//! corruption), short reads (a reader racing a crash) and write stalls
//! (a wedged device). The fault stream is drawn from the simulation
//! kernel's [`SimRng`], so a given `(plan, operation sequence)` pair
//! injects exactly the same faults on every run — which is what lets
//! crash-recovery tests assert byte-exact truncation points.

use garnet_simkit::SimRng;
use rand::RngCore;

use crate::segment::{SegmentId, SegmentStore, StoreError};

/// What to inject, and how often. Rates are per-mille (0 = never,
/// 1000 = every operation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Per-mille chance an append persists only a strict prefix.
    pub torn_write_per_mille: u16,
    /// Per-mille chance an append lands with one bit flipped.
    pub bit_flip_per_mille: u16,
    /// Per-mille chance a read returns a strict prefix of the segment.
    pub short_read_per_mille: u16,
    /// After this many successful appends, every further append fails
    /// with [`StoreError::Stalled`] (`None` = never stalls).
    pub stall_after_appends: Option<u64>,
    /// Wall-clock sleep injected into each stalled append, to wedge an
    /// archiver worker for flush-timeout tests (`None` = fail fast).
    pub stall_sleep: Option<std::time::Duration>,
}

impl FaultPlan {
    /// A plan that injects nothing (wrap-through baseline).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }
}

/// Running totals of the faults actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultLedger {
    /// Appends persisted as a strict prefix.
    pub torn_writes: u64,
    /// Appends (or reads) corrupted by one flipped bit.
    pub bit_flips: u64,
    /// Reads returned as a strict prefix.
    pub short_reads: u64,
    /// Appends refused with [`StoreError::Stalled`].
    pub stalls: u64,
}

impl FaultLedger {
    /// Total injected faults of every kind.
    pub fn total(&self) -> u64 {
        self.torn_writes + self.bit_flips + self.short_reads + self.stalls
    }
}

/// A [`SegmentStore`] that injects storage faults deterministically.
#[derive(Debug)]
pub struct FaultyStore<S> {
    inner: S,
    plan: FaultPlan,
    rng: SimRng,
    appends: u64,
    ledger: FaultLedger,
}

impl<S: SegmentStore> FaultyStore<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> FaultyStore<S> {
        FaultyStore {
            inner,
            plan,
            rng: SimRng::seed(plan.seed),
            appends: 0,
            ledger: FaultLedger::default(),
        }
    }

    /// The faults injected so far.
    pub fn ledger(&self) -> FaultLedger {
        self.ledger
    }

    /// The wrapped store (to inspect or recover after a simulated
    /// crash).
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn roll(&mut self, per_mille: u16) -> bool {
        // Draw unconditionally so the fault stream advances one step per
        // decision regardless of the rates — changing one rate does not
        // shift every later fault.
        let draw = self.rng.next_u64() % 1000;
        per_mille > 0 && draw < u64::from(per_mille)
    }

    /// Picks a cut in `0..len`: the surviving prefix is strictly
    /// shorter than the original (at least one byte is lost).
    fn cut_point(&mut self, len: usize) -> usize {
        (self.rng.next_u64() as usize) % len
    }

    fn flip_one_bit(&mut self, bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        let byte = (self.rng.next_u64() as usize) % bytes.len();
        let bit = (self.rng.next_u64() % 8) as u8;
        bytes[byte] ^= 1 << bit;
    }
}

impl<S: SegmentStore> SegmentStore for FaultyStore<S> {
    fn append(&mut self, segment: SegmentId, bytes: &[u8]) -> Result<(), StoreError> {
        if self.plan.stall_after_appends.is_some_and(|n| self.appends >= n) {
            self.ledger.stalls += 1;
            if let Some(d) = self.plan.stall_sleep {
                std::thread::sleep(d);
            }
            return Err(StoreError::Stalled);
        }
        self.appends += 1;
        let torn = self.roll(self.plan.torn_write_per_mille);
        let flip = self.roll(self.plan.bit_flip_per_mille);
        if !torn && !flip {
            return self.inner.append(segment, bytes);
        }
        let mut mutated = bytes.to_vec();
        if torn && !mutated.is_empty() {
            let cut = self.cut_point(mutated.len());
            mutated.truncate(cut);
            self.ledger.torn_writes += 1;
        }
        if flip {
            self.flip_one_bit(&mut mutated);
            if !mutated.is_empty() {
                self.ledger.bit_flips += 1;
            }
        }
        self.inner.append(segment, &mutated)
    }

    fn read(&mut self, segment: SegmentId) -> Result<Vec<u8>, StoreError> {
        let mut bytes = self.inner.read(segment)?;
        if self.roll(self.plan.short_read_per_mille) && !bytes.is_empty() {
            let cut = self.cut_point(bytes.len());
            bytes.truncate(cut);
            self.ledger.short_reads += 1;
        }
        Ok(bytes)
    }

    fn len(&mut self, segment: SegmentId) -> Result<u64, StoreError> {
        self.inner.len(segment)
    }

    fn truncate(&mut self, segment: SegmentId, len: u64) -> Result<(), StoreError> {
        self.inner.truncate(segment, len)
    }

    fn remove(&mut self, segment: SegmentId) -> Result<(), StoreError> {
        self.inner.remove(segment)
    }

    fn segments(&mut self) -> Result<Vec<SegmentId>, StoreError> {
        self.inner.segments()
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        if self.plan.stall_after_appends.is_some_and(|n| self.appends >= n) {
            return Err(StoreError::Stalled);
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::MemStore;

    #[test]
    fn no_faults_is_a_transparent_wrapper() {
        let mut s = FaultyStore::new(MemStore::new(), FaultPlan::none());
        s.append(0, b"abc").unwrap();
        assert_eq!(s.read(0).unwrap(), b"abc");
        assert_eq!(s.ledger().total(), 0);
    }

    #[test]
    fn fault_stream_is_deterministic() {
        let plan = FaultPlan {
            seed: 7,
            torn_write_per_mille: 400,
            bit_flip_per_mille: 300,
            ..FaultPlan::default()
        };
        let run = |plan| {
            let mut s = FaultyStore::new(MemStore::new(), plan);
            for i in 0..50u8 {
                s.append(0, &[i; 16]).unwrap();
            }
            (s.ledger(), s.into_inner().read(0).unwrap())
        };
        let (l1, bytes1) = run(plan);
        let (l2, bytes2) = run(plan);
        assert_eq!(l1, l2);
        assert_eq!(bytes1, bytes2);
        assert!(l1.torn_writes > 0, "seed 7 at 40% must tear at least once");
        assert!(l1.bit_flips > 0);
    }

    #[test]
    fn stall_cuts_appends_and_sync_but_not_reads() {
        let plan = FaultPlan { stall_after_appends: Some(2), ..FaultPlan::default() };
        let mut s = FaultyStore::new(MemStore::new(), plan);
        s.append(0, b"a").unwrap();
        s.append(0, b"b").unwrap();
        assert_eq!(s.append(0, b"c"), Err(StoreError::Stalled));
        assert_eq!(s.sync(), Err(StoreError::Stalled));
        assert_eq!(s.read(0).unwrap(), b"ab", "pre-stall appends survive");
        assert_eq!(s.ledger().stalls, 1);
    }

    #[test]
    fn torn_write_loses_at_least_one_byte() {
        let plan = FaultPlan { seed: 3, torn_write_per_mille: 1000, ..FaultPlan::default() };
        let mut s = FaultyStore::new(MemStore::new(), plan);
        s.append(0, &[0xFF; 32]).unwrap();
        assert!(s.into_inner().read(0).unwrap().len() < 32);
    }
}
