//! No silent data corruption: every fault the [`FaultyStore`] injects —
//! torn writes, bit flips on the write path, short reads and bit flips
//! on the read path — is caught by the record CRC/length checks before
//! a decoded frame can escape. A corrupt byte stream either truncates
//! cleanly at the recovery scan or fails a replay read loudly; it never
//! round-trips into an [`ArchiveRecord`] that differs from an appended
//! one.

use garnet_simkit::SimTime;
use garnet_store::{
    ArchiveRecord, FaultPlan, FaultyStore, FrameArchive, MemStore, SegmentStore, StoreError,
};
use garnet_wire::{DataMessage, FrameBytes, SensorId, SequenceNumber, StreamId, StreamIndex};
use proptest::prelude::*;

fn frame_rec(sensor: u32, seq: u16, at: u64) -> ArchiveRecord {
    let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0));
    let wire = DataMessage::builder(stream)
        .seq(SequenceNumber::new(seq))
        .payload(vec![seq as u8, sensor as u8])
        .build()
        .unwrap()
        .encode_to_vec();
    ArchiveRecord::frame(0, -50.0, FrameBytes::from(wire), SimTime::from_micros(at))
}

/// Appends `n` frame records through a fault-injecting store, then
/// recovers and replays. Returns (appended cleanly, recovered records,
/// injected fault total).
fn run_faulty(
    seed: u64,
    n: u16,
    plan: FaultPlan,
    segment_max: u64,
) -> (Vec<ArchiveRecord>, Vec<ArchiveRecord>, u64) {
    let mut store = FaultyStore::new(MemStore::new(), FaultPlan { seed, ..plan });
    let mut appended = Vec::new();
    {
        let mut current: u64 = 0;
        let mut current_len: u64 = 0;
        for seq in 0..n {
            let rec = frame_rec(1 + u32::from(seq % 3), seq, u64::from(seq) * 10);
            let bytes = rec.encode();
            if current_len > 0 && current_len + bytes.len() as u64 > segment_max {
                current += 1;
                current_len = 0;
            }
            match store.append(current, &bytes) {
                Ok(()) => {
                    current_len += bytes.len() as u64;
                    appended.push(rec);
                }
                Err(StoreError::Stalled) => break,
                Err(e) => panic!("unexpected store error: {e}"),
            }
        }
    }
    let injected = store.ledger().total();
    // Recovery runs on the *clean* inner store (the crash-consistent
    // bytes actually on "disk"), then replay reads back through it.
    let mut inner = store.into_inner();
    let report = FrameArchive::recover(&mut inner).unwrap();
    let (mut archive, reopened) = FrameArchive::open(Box::new(inner), segment_max).unwrap();
    assert_eq!(reopened.records, report.records, "recovery is idempotent");
    let recovered = archive.read_all().expect("recovered log replays cleanly");
    (appended, recovered, injected)
}

proptest! {
    /// Write-path faults: whatever the fault mix, every recovered
    /// record is byte-identical to a record that was actually appended,
    /// in appended order (a prefix, possibly with one corrupted-segment
    /// gap cut) — torn or flipped records are truncated away, never
    /// decoded.
    #[test]
    fn write_faults_never_surface_as_decoded_frames(
        seed in 0u64..1000,
        torn in 0u16..300,
        flip in 0u16..300,
        n in 10u16..60,
    ) {
        let plan = FaultPlan {
            torn_write_per_mille: torn,
            bit_flip_per_mille: flip,
            ..FaultPlan::default()
        };
        let (appended, recovered, injected) = run_faulty(seed, n, plan, 256);
        // Every recovered record is one of the appended ones, and the
        // sequence is order-preserving (a subsequence of the appends).
        let mut cursor = 0usize;
        for rec in &recovered {
            let pos = appended[cursor..].iter().position(|a| a == rec);
            prop_assert!(
                pos.is_some(),
                "recovered record not among the (remaining) appended ones: {rec:?}"
            );
            cursor += pos.unwrap() + 1;
        }
        if injected == 0 {
            prop_assert_eq!(recovered.len(), appended.len(), "clean run loses nothing");
        }
    }

    /// Read-path faults: a short read or read-side bit flip makes
    /// replay fail loudly (or, when the cut luckily lands on a record
    /// boundary, yields a clean prefix) — never a record that was not
    /// appended.
    #[test]
    fn read_faults_fail_loudly_or_yield_a_clean_prefix(
        seed in 0u64..1000,
        short in 200u16..1000,
        n in 5u16..40,
    ) {
        // Clean write path…
        let mut store = MemStore::new();
        let mut appended = Vec::new();
        let mut buf = Vec::new();
        for seq in 0..n {
            let rec = frame_rec(1, seq, u64::from(seq));
            rec.encode_into(&mut buf);
            appended.push(rec);
        }
        store.append(0, &buf).unwrap();
        // …faulty read path.
        let plan = FaultPlan { seed, short_read_per_mille: short, ..FaultPlan::default() };
        let (mut archive, _) =
            FrameArchive::open(Box::new(FaultyStore::new(store, plan)), 1 << 20).unwrap();
        match archive.read_range(0, 0) {
            Ok(records) => {
                prop_assert!(records.len() <= appended.len());
                prop_assert_eq!(&records[..], &appended[..records.len()],
                    "a successful read is a byte-identical prefix");
            }
            Err(e) => {
                // Loud failure is the expected path for a mid-record cut.
                let msg = e.to_string();
                prop_assert!(!msg.is_empty());
            }
        }
    }
}

/// Exhaustive single-fault check: one torn append at every possible cut
/// point is always detected — the archive never resurrects the torn
/// record, and never loses the acknowledged ones before it.
#[test]
fn every_torn_tail_is_cut_exactly_at_the_last_acknowledged_record() {
    let good: Vec<ArchiveRecord> = (0..3u16).map(|s| frame_rec(1, s, u64::from(s))).collect();
    let torn = frame_rec(1, 3, 3).encode();
    for cut in 0..torn.len() {
        let mut store = MemStore::new();
        let mut buf = Vec::new();
        for rec in &good {
            rec.encode_into(&mut buf);
        }
        buf.extend_from_slice(&torn[..cut]);
        store.append(0, &buf).unwrap();
        let report = FrameArchive::recover(&mut store).unwrap();
        assert_eq!(report.records, 3, "cut at {cut}: acknowledged records survive");
        assert_eq!(report.truncation.is_some(), cut > 0, "cut at {cut}");
        let (mut archive, _) = FrameArchive::open(Box::new(store), 1 << 20).unwrap();
        assert_eq!(archive.read_all().unwrap(), good, "cut at {cut}: torn record resurrected");
    }
}
