//! The Message Replicator: area-targeted downlink transmission.
//!
//! "The Message Replicator determines the expected location area of the
//! target sensor. Based on the location area, the appropriate set of
//! Transmitters broadcast the request" (§4.2). This is where inferred
//! location pays for itself (§5: location "is a refinement which is
//! required to reduce transmission costs when forwarding control
//! messages"): with a good estimate only the transmitters covering the
//! target's disk fire; with none, the replicator floods every
//! transmitter. Experiment E9 measures the saving.

use garnet_radio::geometry::Disk;
use garnet_radio::{Transmitter, TransmitterId};
use garnet_simkit::SimTime;
use garnet_wire::{ActuationTarget, StreamUpdateRequest, TargetArea};

use crate::location::LocationService;

/// A replication plan: which transmitters broadcast a request.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplicationPlan {
    /// The request to broadcast.
    pub request: StreamUpdateRequest,
    /// The chosen transmitters (name-ordered by id).
    pub transmitters: Vec<TransmitterId>,
    /// True when the plan fell back to flooding (no usable location).
    pub flooded: bool,
}

/// The Message Replicator.
///
/// # Example
///
/// ```
/// use garnet_core::replicator::MessageReplicator;
/// use garnet_radio::{geometry::Point, Transmitter, TransmitterId};
///
/// let transmitters = Transmitter::grid(Point::ORIGIN, 3, 3, 100.0, 80.0);
/// let replicator = MessageReplicator::new(transmitters);
/// assert_eq!(replicator.transmitter_count(), 9);
/// ```
#[derive(Debug)]
pub struct MessageReplicator {
    transmitters: Vec<Transmitter>,
    targeted: u64,
    flooded: u64,
    broadcasts: u64,
}

impl MessageReplicator {
    /// Creates a replicator over the installed transmitter array.
    pub fn new(mut transmitters: Vec<Transmitter>) -> Self {
        transmitters.sort_by_key(|t| t.id().as_u32());
        MessageReplicator { transmitters, targeted: 0, flooded: 0, broadcasts: 0 }
    }

    /// Number of installed transmitters.
    pub fn transmitter_count(&self) -> usize {
        self.transmitters.len()
    }

    /// The installed transmitters (id order).
    pub fn transmitters(&self) -> &[Transmitter] {
        &self.transmitters
    }

    fn covering(&self, area: Disk) -> Vec<TransmitterId> {
        self.transmitters
            .iter()
            .filter(|t| t.coverage().intersects(&area))
            .map(|t| t.id())
            .collect()
    }

    fn all(&self) -> Vec<TransmitterId> {
        self.transmitters.iter().map(|t| t.id()).collect()
    }

    /// Plans the broadcast of `request`. Sensor- and stream-targeted
    /// requests consult the Location Service; area-targeted requests use
    /// their explicit area. A missing or empty-coverage estimate floods.
    pub fn plan(
        &mut self,
        request: StreamUpdateRequest,
        location: &LocationService,
        now: SimTime,
    ) -> ReplicationPlan {
        let estimate = match request.target {
            ActuationTarget::Area(_) => None,
            ActuationTarget::Sensor(sensor) => location.estimate(sensor, now),
            ActuationTarget::Stream(stream) => location.estimate(stream.sensor(), now),
        };
        self.plan_with_estimate(request, estimate)
    }

    /// Plans the broadcast of `request` from an already-resolved location
    /// estimate (sans-io entry point: the event router looks the estimate
    /// up and passes it in, so the replicator needs no reference to the
    /// Location Service). Area-targeted requests ignore `estimate` and
    /// use their explicit area.
    pub fn plan_with_estimate(
        &mut self,
        request: StreamUpdateRequest,
        estimate: Option<crate::location::LocationEstimate>,
    ) -> ReplicationPlan {
        let area: Option<Disk> = match request.target {
            ActuationTarget::Area(TargetArea { x, y, radius }) => Some(Disk::new(
                garnet_radio::geometry::Point::new(f64::from(x), f64::from(y)),
                f64::from(radius),
            )),
            ActuationTarget::Sensor(_) | ActuationTarget::Stream(_) => {
                estimate.map(|e| Disk::new(e.position, e.radius_m))
            }
        };

        let (transmitters, flooded) = match area {
            Some(disk) => {
                let covering = self.covering(disk);
                if covering.is_empty() {
                    (self.all(), true)
                } else {
                    (covering, false)
                }
            }
            None => (self.all(), true),
        };

        if flooded {
            self.flooded += 1;
        } else {
            self.targeted += 1;
        }
        self.broadcasts += transmitters.len() as u64;
        ReplicationPlan { request, transmitters, flooded }
    }

    /// Requests that used a targeted (non-flood) plan.
    pub fn targeted_count(&self) -> u64 {
        self.targeted
    }

    /// Requests that fell back to flooding.
    pub fn flooded_count(&self) -> u64 {
        self.flooded
    }

    /// Total transmitter activations (the downlink cost metric of E9).
    pub fn broadcast_count(&self) -> u64 {
        self.broadcasts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filtering::Observation;
    use crate::location::LocationConfig;
    use garnet_radio::geometry::Point;
    use garnet_radio::{Receiver, ReceiverId};
    use garnet_wire::{RequestId, SensorCommand, SensorId};

    fn request(target: ActuationTarget) -> StreamUpdateRequest {
        StreamUpdateRequest {
            request_id: RequestId::new(1),
            target,
            command: SensorCommand::Ping,
            issued_at_us: 0,
            priority: 0,
        }
    }

    fn setup() -> (MessageReplicator, LocationService) {
        // 3x3 transmitter grid, spacing 100, range 80 (disjoint disks).
        let transmitters = Transmitter::grid(Point::ORIGIN, 3, 3, 100.0, 80.0);
        let receivers = Receiver::grid(Point::ORIGIN, 3, 3, 100.0, 150.0);
        let replicator = MessageReplicator::new(transmitters);
        let location = LocationService::new(LocationConfig::default(), &receivers);
        (replicator, location)
    }

    #[test]
    fn unknown_sensor_floods() {
        let (mut r, loc) = setup();
        let plan = r.plan(
            request(ActuationTarget::Sensor(SensorId::new(7).unwrap())),
            &loc,
            SimTime::ZERO,
        );
        assert!(plan.flooded);
        assert_eq!(plan.transmitters.len(), 9);
        assert_eq!(r.flooded_count(), 1);
        assert_eq!(r.broadcast_count(), 9);
    }

    #[test]
    fn located_sensor_targets_few_transmitters() {
        let (mut r, mut loc) = setup();
        let sensor = SensorId::new(7).unwrap();
        // Strong sighting at receiver 0 (corner): the estimate is near
        // (0,0) with a modest radius.
        for _ in 0..4 {
            loc.observe(&Observation {
                sensor,
                receiver: ReceiverId::new(0),
                rssi_dbm: -45.0,
                at: SimTime::ZERO,
            });
        }
        let plan = r.plan(request(ActuationTarget::Sensor(sensor)), &loc, SimTime::ZERO);
        assert!(!plan.flooded);
        assert!(
            plan.transmitters.len() < 9,
            "targeted plan used {} transmitters",
            plan.transmitters.len()
        );
        assert!(plan.transmitters.contains(&TransmitterId::new(0)));
        assert_eq!(r.targeted_count(), 1);
    }

    #[test]
    fn area_target_uses_explicit_disk() {
        let (mut r, loc) = setup();
        // Small disk around the centre transmitter at (100, 100).
        let plan = r.plan(
            request(ActuationTarget::Area(TargetArea::new(100.0, 100.0, 10.0))),
            &loc,
            SimTime::ZERO,
        );
        assert!(!plan.flooded);
        assert_eq!(plan.transmitters, vec![TransmitterId::new(4)]);
    }

    #[test]
    fn area_outside_coverage_floods() {
        let (mut r, loc) = setup();
        let plan = r.plan(
            request(ActuationTarget::Area(TargetArea::new(10_000.0, 10_000.0, 5.0))),
            &loc,
            SimTime::ZERO,
        );
        assert!(plan.flooded);
        assert_eq!(plan.transmitters.len(), 9);
    }

    #[test]
    fn stream_target_resolves_via_sensor() {
        let (mut r, mut loc) = setup();
        let sensor = SensorId::new(8).unwrap();
        loc.hint(sensor, Point::new(200.0, 200.0), 5.0, SimTime::ZERO);
        let stream = garnet_wire::StreamId::new(sensor, garnet_wire::StreamIndex::new(0));
        let plan = r.plan(request(ActuationTarget::Stream(stream)), &loc, SimTime::ZERO);
        assert!(!plan.flooded);
        assert!(
            plan.transmitters.contains(&TransmitterId::new(8)),
            "corner transmitter at (200,200)"
        );
    }

    #[test]
    fn transmitters_sorted_by_id() {
        let mut ts = Transmitter::grid(Point::ORIGIN, 2, 2, 100.0, 300.0);
        ts.reverse();
        let mut r = MessageReplicator::new(ts);
        let loc = LocationService::new(LocationConfig::default(), &[]);
        let plan = r.plan(
            request(ActuationTarget::Area(TargetArea::new(50.0, 50.0, 10.0))),
            &loc,
            SimTime::ZERO,
        );
        let ids: Vec<u32> = plan.transmitters.iter().map(|t| t.as_u32()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }
}
