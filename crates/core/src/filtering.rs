//! The Filtering Service: duplicate elimination and stream
//! reconstruction.
//!
//! "The Filtering Service reconstructs the data streams by eliminating
//! duplicate data messages. Filtered data is then forwarded to the
//! Dispatching Service" (§4.2). Input is raw frames from the receiver
//! array — the same transmission may arrive several times through
//! overlapping receivers, corrupted frames fail their CRC, and frames can
//! arrive out of order through differing receiver latencies.
//!
//! Per stream the service maintains the last-delivered sequence number
//! and a small reorder buffer. In serial-number order
//! ([`garnet_wire::SequenceNumber`]):
//!
//! * a frame at or before the last delivered sequence is a **duplicate or
//!   stale retransmit** → dropped;
//! * the immediate successor is delivered at once, then any buffered
//!   successors drain;
//! * a frame further ahead is **buffered** until either the gap fills or
//!   a reorder timeout expires, at which point the stream accepts the gap
//!   (the missing message was lost in the air) and moves on.
//!
//! Every CRC-valid reception — including duplicates — also yields an
//! [`Observation`] for the Location Service: duplicates are useless to
//! consumers but golden for trilateration.

use std::collections::BTreeMap;

use garnet_radio::ReceiverId;
use garnet_simkit::{Counter, SimDuration, SimTime};
use garnet_wire::{DataMessage, FrameBytes, FrameHeader, SensorId, SequenceNumber, WireError};

/// Tuning of the filtering service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FilterConfig {
    /// How long an out-of-order message may wait for its gap to fill.
    pub reorder_timeout: SimDuration,
    /// Upper bound on buffered messages per stream; beyond it the oldest
    /// buffered message is force-delivered (back-pressure guard).
    pub max_buffered_per_stream: usize,
    /// A frame more than this far ahead of the last delivered sequence is
    /// treated as a stream restart rather than buffered (the sensor
    /// rebooted or we lost half the window).
    pub restart_distance: u16,
    /// Fault-injection hook: a decoded frame whose payload equals this
    /// marker panics the filtering worker. Only meaningful under the
    /// threaded driver, where the panic kills a shard mid-batch and the
    /// supervision policy restarts it — failure-injection tests use it
    /// to prove the admission ledger stays exact across a poisoned
    /// shard. `None` (the default) disables the hook.
    pub fail_marker: Option<[u8; 4]>,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            reorder_timeout: SimDuration::from_millis(50),
            max_buffered_per_stream: 256,
            restart_distance: 4096,
            fail_marker: None,
        }
    }
}

/// A reconstructed, deduplicated message leaving the filtering service.
#[derive(Clone, Debug, PartialEq)]
pub struct Delivery {
    /// The decoded message.
    pub msg: DataMessage,
    /// When its first copy reached any receiver.
    pub first_received_at: SimTime,
    /// When the filtering service released it downstream.
    pub delivered_at: SimTime,
}

/// A location-relevant sighting: receiver R heard sensor S at RSSI x.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Observation {
    /// The sensor that transmitted.
    pub sensor: SensorId,
    /// The receiver that heard it.
    pub receiver: ReceiverId,
    /// Received signal strength (dBm).
    pub rssi_dbm: f64,
    /// Arrival instant.
    pub at: SimTime,
}

/// One raw frame of a batch handed to [`FilteringService::on_batch`].
#[derive(Clone, Debug)]
pub struct FrameArrival {
    /// The receiver that heard it.
    pub receiver: ReceiverId,
    /// Received signal strength (dBm).
    pub rssi_dbm: f64,
    /// The encoded frame (shared view of the arrival buffer).
    pub frame: FrameBytes,
    /// Arrival instant.
    pub at: SimTime,
}

/// Outcome of feeding one frame to the service.
#[derive(Debug, Default)]
pub struct FilterResult {
    /// Messages released downstream (possibly several: a gap fill can
    /// drain the buffer).
    pub deliveries: Vec<Delivery>,
    /// The location observation, for any CRC-valid frame.
    pub observation: Option<Observation>,
    /// Set when the frame failed to decode.
    pub error: Option<WireError>,
}

#[derive(Debug)]
struct Buffered {
    msg: DataMessage,
    first_received_at: SimTime,
    deadline: SimTime,
}

#[derive(Debug, Default)]
struct StreamFilter {
    last_delivered: Option<SequenceNumber>,
    /// Sorted in serial order (ascending from `last_delivered`).
    buffer: Vec<Buffered>,
}

impl StreamFilter {
    fn is_stale(&self, seq: SequenceNumber) -> bool {
        match self.last_delivered {
            Some(last) => !seq.is_after(last),
            None => false,
        }
    }

    fn is_buffered(&self, seq: SequenceNumber) -> bool {
        self.buffer.iter().any(|b| b.msg.seq() == seq)
    }

    fn insert_buffered(&mut self, entry: Buffered) {
        let seq = entry.msg.seq();
        let pos = self
            .buffer
            .iter()
            .position(|b| seq.distance_to(b.msg.seq()) > 0)
            .unwrap_or(self.buffer.len());
        self.buffer.insert(pos, entry);
    }

    /// Drains every buffered message that is now in order (no gap before
    /// it), returning deliveries.
    fn drain_ready(&mut self, now: SimTime, out: &mut Vec<Delivery>) {
        while let Some(head) = self.buffer.first() {
            let expected = self
                .last_delivered
                .map(SequenceNumber::next)
                .expect("buffer is only used once a first message was delivered");
            if head.msg.seq() != expected {
                break;
            }
            let b = self.buffer.remove(0);
            self.last_delivered = Some(b.msg.seq());
            out.push(Delivery {
                msg: b.msg,
                first_received_at: b.first_received_at,
                delivered_at: now,
            });
        }
    }

    /// Force-delivers the buffer head (gap accepted), then drains.
    fn force_head(&mut self, now: SimTime, out: &mut Vec<Delivery>) {
        if self.buffer.is_empty() {
            return;
        }
        let b = self.buffer.remove(0);
        self.last_delivered = Some(b.msg.seq());
        out.push(Delivery {
            msg: b.msg,
            first_received_at: b.first_received_at,
            delivered_at: now,
        });
        self.drain_ready(now, out);
    }
}

/// The Filtering Service.
///
/// # Example
///
/// ```
/// use garnet_core::filtering::FilteringService;
/// use garnet_radio::ReceiverId;
/// use garnet_simkit::SimTime;
/// use garnet_wire::{DataMessage, StreamId};
///
/// let mut filter = FilteringService::new(Default::default());
/// let msg = DataMessage::builder(StreamId::from_raw(0x0100)).build()?;
/// let frame: garnet_wire::FrameBytes = msg.encode_to_vec().into();
///
/// // The same frame through two overlapping receivers:
/// let r1 = filter.on_frame(ReceiverId::new(0), -40.0, &frame, SimTime::ZERO);
/// let r2 = filter.on_frame(ReceiverId::new(1), -55.0, &frame, SimTime::ZERO);
/// assert_eq!(r1.deliveries.len(), 1); // first copy delivered
/// assert_eq!(r2.deliveries.len(), 0); // duplicate eliminated
/// assert!(r2.observation.is_some()); // but still a location sighting
/// # Ok::<(), garnet_wire::WireError>(())
/// ```
#[derive(Debug)]
pub struct FilteringService {
    config: FilterConfig,
    streams: BTreeMap<u32, StreamFilter>,
    delivered: Counter,
    duplicates: Counter,
    crc_failures: Counter,
    reordered: Counter,
    gaps_accepted: Counter,
    restarts: Counter,
}

impl FilteringService {
    /// Creates a filtering service.
    pub fn new(config: FilterConfig) -> Self {
        FilteringService {
            config,
            streams: BTreeMap::new(),
            delivered: Counter::new(),
            duplicates: Counter::new(),
            crc_failures: Counter::new(),
            reordered: Counter::new(),
            gaps_accepted: Counter::new(),
            restarts: Counter::new(),
        }
    }

    /// Feeds one raw frame as heard by `receiver` at `now`.
    pub fn on_frame(
        &mut self,
        receiver: ReceiverId,
        rssi_dbm: f64,
        frame: &FrameBytes,
        now: SimTime,
    ) -> FilterResult {
        match FrameHeader::parse(frame) {
            Ok(hdr) => self.apply(receiver, rssi_dbm, frame, &hdr, now),
            Err(e) => {
                self.crc_failures.incr();
                FilterResult { error: Some(e), ..FilterResult::default() }
            }
        }
    }

    /// Feeds a burst of frames, each `(receiver, rssi_dbm, frame, at)`.
    ///
    /// Equivalent to calling [`FilteringService::on_frame`] once per
    /// entry in order — same deliveries, same counters — but the fixed
    /// headers are validated in one struct-of-arrays prepass over the
    /// whole batch before any stream state is touched, so per-frame
    /// dynamic dispatch and repeated header re-validation are amortised.
    pub fn on_batch(&mut self, frames: &[FrameArrival]) -> Vec<FilterResult> {
        // SoA prepass: parse every fixed header (stream id, seq, payload
        // bounds) up front. Parsing is pure, so doing it batch-first
        // cannot change what `apply` observes per frame.
        let headers: Vec<Result<FrameHeader, WireError>> =
            frames.iter().map(|f| FrameHeader::parse(&f.frame)).collect();
        frames
            .iter()
            .zip(headers)
            .map(|(f, hdr)| match hdr {
                Ok(hdr) => self.apply(f.receiver, f.rssi_dbm, &f.frame, &hdr, f.at),
                Err(e) => {
                    self.crc_failures.incr();
                    FilterResult { error: Some(e), ..FilterResult::default() }
                }
            })
            .collect()
    }

    /// Feeds one frame whose fixed header was already validated (the
    /// zero-copy fast path: only the CRC remains to check, and the
    /// payload is sliced out of `frame` without copying).
    fn apply(
        &mut self,
        receiver: ReceiverId,
        rssi_dbm: f64,
        frame: &FrameBytes,
        hdr: &FrameHeader,
        now: SimTime,
    ) -> FilterResult {
        let mut result = FilterResult::default();
        let msg = match DataMessage::decode_validated(frame, hdr) {
            Ok(msg) => msg,
            Err(e) => {
                self.crc_failures.incr();
                result.error = Some(e);
                return result;
            }
        };
        if let Some(marker) = self.config.fail_marker {
            if msg.payload().as_ref() == marker {
                panic!("injected filter fault: poison payload {marker:?}");
            }
        }
        result.observation =
            Some(Observation { sensor: msg.stream().sensor(), receiver, rssi_dbm, at: now });

        let state = self.streams.entry(msg.stream().to_raw()).or_default();
        let seq = msg.seq();

        if state.is_stale(seq) || state.is_buffered(seq) {
            self.duplicates.incr();
            return result;
        }

        match state.last_delivered {
            None => {
                // First message of the stream: deliver whatever seq it has.
                state.last_delivered = Some(seq);
                result.deliveries.push(Delivery { msg, first_received_at: now, delivered_at: now });
                state.drain_ready(now, &mut result.deliveries);
            }
            Some(last) => {
                let expected = last.next();
                if seq == expected {
                    state.last_delivered = Some(seq);
                    result.deliveries.push(Delivery {
                        msg,
                        first_received_at: now,
                        delivered_at: now,
                    });
                    state.drain_ready(now, &mut result.deliveries);
                } else if last.distance_to(seq) > 0
                    && last.distance_to(seq) as u32 > u32::from(self.config.restart_distance)
                {
                    // Far ahead: treat as a restarted stream.
                    self.restarts.incr();
                    state.buffer.clear();
                    state.last_delivered = Some(seq);
                    result.deliveries.push(Delivery {
                        msg,
                        first_received_at: now,
                        delivered_at: now,
                    });
                } else {
                    // A gap: hold for reordering.
                    self.reordered.incr();
                    state.insert_buffered(Buffered {
                        msg,
                        first_received_at: now,
                        deadline: now.saturating_add(self.config.reorder_timeout),
                    });
                    if state.buffer.len() > self.config.max_buffered_per_stream {
                        self.gaps_accepted.incr();
                        state.force_head(now, &mut result.deliveries);
                    }
                }
            }
        }
        self.delivered.add(result.deliveries.len() as u64);
        result
    }

    /// Releases buffered messages whose reorder deadline has passed,
    /// accepting the gaps before them.
    ///
    /// Streams flush in ascending stream-id order. That order is load
    /// bearing: the sharded ingest stage merges per-shard flushes by
    /// re-sorting on stream id, which reproduces this sequence exactly —
    /// a sharded pipeline is bit-identical to an unsharded one.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Delivery> {
        let mut out = Vec::new();
        for state in self.streams.values_mut() {
            while state.buffer.first().is_some_and(|b| b.deadline <= now) {
                self.gaps_accepted.incr();
                state.force_head(now, &mut out);
            }
        }
        self.delivered.add(out.len() as u64);
        out
    }

    /// The earliest buffered-message deadline, for scheduling the next
    /// [`FilteringService::on_tick`].
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.streams.values().filter_map(|s| s.buffer.first().map(|b| b.deadline)).min()
    }

    /// Messages released downstream.
    pub fn delivered_count(&self) -> u64 {
        self.delivered.get()
    }

    /// Duplicate frames eliminated.
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates.get()
    }

    /// Frames rejected by CRC/decode.
    pub fn crc_failure_count(&self) -> u64 {
        self.crc_failures.get()
    }

    /// Frames that arrived out of order and were buffered.
    pub fn reordered_count(&self) -> u64 {
        self.reordered.get()
    }

    /// Gaps accepted (messages given up as lost).
    pub fn gap_count(&self) -> u64 {
        self.gaps_accepted.get()
    }

    /// Stream restarts detected.
    pub fn restart_count(&self) -> u64 {
        self.restarts.get()
    }

    /// Number of streams currently tracked.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garnet_wire::{StreamId, StreamIndex};

    fn svc() -> FilteringService {
        FilteringService::new(FilterConfig::default())
    }

    fn stream() -> StreamId {
        StreamId::new(SensorId::new(7).unwrap(), StreamIndex::new(0))
    }

    fn frame_vec(seq: u16) -> Vec<u8> {
        DataMessage::builder(stream())
            .seq(SequenceNumber::new(seq))
            .payload(vec![seq as u8])
            .build()
            .unwrap()
            .encode_to_vec()
    }

    fn frame(seq: u16) -> FrameBytes {
        FrameBytes::from(frame_vec(seq))
    }

    fn rx(n: u32) -> ReceiverId {
        ReceiverId::new(n)
    }

    #[test]
    fn in_order_stream_passes_through() {
        let mut f = svc();
        for i in 0..10u16 {
            let r = f.on_frame(rx(0), -40.0, &frame(i), SimTime::from_millis(i as u64));
            assert_eq!(r.deliveries.len(), 1, "seq {i}");
            assert_eq!(r.deliveries[0].msg.seq().as_u16(), i);
        }
        assert_eq!(f.delivered_count(), 10);
        assert_eq!(f.duplicate_count(), 0);
    }

    #[test]
    fn duplicates_from_overlapping_receivers_eliminated() {
        let mut f = svc();
        let fr = frame(0);
        assert_eq!(f.on_frame(rx(0), -40.0, &fr, SimTime::ZERO).deliveries.len(), 1);
        for r in 1..5u32 {
            let res = f.on_frame(rx(r), -50.0, &fr, SimTime::from_micros(r as u64));
            assert!(res.deliveries.is_empty());
            assert!(res.observation.is_some(), "duplicates still feed location");
        }
        assert_eq!(f.duplicate_count(), 4);
        assert_eq!(f.delivered_count(), 1);
    }

    #[test]
    fn corrupted_frame_rejected_without_observation() {
        let mut f = svc();
        let mut fr = frame_vec(0);
        let last = fr.len() - 1;
        fr[last] ^= 0xFF;
        let r = f.on_frame(rx(0), -40.0, &fr.into(), SimTime::ZERO);
        assert!(r.deliveries.is_empty());
        assert!(r.observation.is_none());
        assert!(r.error.is_some());
        assert_eq!(f.crc_failure_count(), 1);
    }

    #[test]
    fn out_of_order_within_timeout_reordered() {
        let mut f = svc();
        f.on_frame(rx(0), -40.0, &frame(0), SimTime::ZERO);
        // 2 arrives before 1.
        let r2 = f.on_frame(rx(0), -40.0, &frame(2), SimTime::from_millis(1));
        assert!(r2.deliveries.is_empty());
        let r1 = f.on_frame(rx(0), -40.0, &frame(1), SimTime::from_millis(2));
        let seqs: Vec<u16> = r1.deliveries.iter().map(|d| d.msg.seq().as_u16()).collect();
        assert_eq!(seqs, vec![1, 2], "gap fill drains the buffer in order");
        assert_eq!(f.reordered_count(), 1);
        assert_eq!(f.gap_count(), 0);
    }

    #[test]
    fn gap_accepted_after_timeout() {
        let mut f = svc();
        f.on_frame(rx(0), -40.0, &frame(0), SimTime::ZERO);
        f.on_frame(rx(0), -40.0, &frame(2), SimTime::from_millis(1)); // 1 lost
        assert_eq!(f.next_deadline(), Some(SimTime::from_millis(51)));
        assert!(f.on_tick(SimTime::from_millis(50)).is_empty(), "not due yet");
        let out = f.on_tick(SimTime::from_millis(51));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg.seq().as_u16(), 2);
        assert_eq!(f.gap_count(), 1);
        // Late arrival of 1 is now stale.
        let late = f.on_frame(rx(0), -40.0, &frame(1), SimTime::from_millis(60));
        assert!(late.deliveries.is_empty());
        assert_eq!(f.duplicate_count(), 1);
    }

    #[test]
    fn delivery_keeps_first_arrival_time() {
        let mut f = svc();
        f.on_frame(rx(0), -40.0, &frame(0), SimTime::ZERO);
        f.on_frame(rx(0), -40.0, &frame(2), SimTime::from_millis(5));
        let out = f.on_tick(SimTime::from_millis(60));
        assert_eq!(out[0].first_received_at, SimTime::from_millis(5));
        assert_eq!(out[0].delivered_at, SimTime::from_millis(60));
    }

    #[test]
    fn sequence_wraparound_is_seamless() {
        let mut f = svc();
        for i in 0..10u32 {
            let seq = 65_530u16.wrapping_add(i as u16);
            let r = f.on_frame(rx(0), -40.0, &frame(seq), SimTime::from_millis(u64::from(i)));
            assert_eq!(r.deliveries.len(), 1, "seq {seq}");
        }
        assert_eq!(f.delivered_count(), 10);
        assert_eq!(f.duplicate_count(), 0);
        assert_eq!(f.restart_count(), 0);
    }

    #[test]
    fn reorder_across_wraparound() {
        let mut f = svc();
        f.on_frame(rx(0), -40.0, &frame(65_535), SimTime::ZERO);
        // 1 arrives before 0 (both after the wrap).
        let r = f.on_frame(rx(0), -40.0, &frame(1), SimTime::from_millis(1));
        assert!(r.deliveries.is_empty());
        let r = f.on_frame(rx(0), -40.0, &frame(0), SimTime::from_millis(2));
        let seqs: Vec<u16> = r.deliveries.iter().map(|d| d.msg.seq().as_u16()).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn distant_jump_is_a_restart() {
        let mut f = svc();
        f.on_frame(rx(0), -40.0, &frame(0), SimTime::ZERO);
        let r = f.on_frame(rx(0), -40.0, &frame(10_000), SimTime::from_millis(1));
        assert_eq!(r.deliveries.len(), 1);
        assert_eq!(f.restart_count(), 1);
        // Stream continues from the new position.
        let r = f.on_frame(rx(0), -40.0, &frame(10_001), SimTime::from_millis(2));
        assert_eq!(r.deliveries.len(), 1);
    }

    #[test]
    fn buffer_overflow_forces_progress() {
        let mut f = FilteringService::new(FilterConfig {
            max_buffered_per_stream: 4,
            ..FilterConfig::default()
        });
        f.on_frame(rx(0), -40.0, &frame(0), SimTime::ZERO);
        // Leave a gap at 1, then pile on 2..=6: the fifth buffered
        // message exceeds the cap and forces the head out.
        let mut forced = Vec::new();
        for i in 2..=6u16 {
            let r = f.on_frame(rx(0), -40.0, &frame(i), SimTime::from_millis(i as u64));
            forced.extend(r.deliveries);
        }
        assert!(!forced.is_empty());
        assert_eq!(forced[0].msg.seq().as_u16(), 2);
        assert!(f.gap_count() >= 1);
    }

    #[test]
    fn streams_are_independent() {
        let mut f = svc();
        let other = StreamId::new(SensorId::new(8).unwrap(), StreamIndex::new(0));
        let m1: FrameBytes = DataMessage::builder(other)
            .seq(SequenceNumber::new(0))
            .build()
            .unwrap()
            .encode_to_vec()
            .into();
        f.on_frame(rx(0), -40.0, &frame(0), SimTime::ZERO);
        let r = f.on_frame(rx(0), -40.0, &m1, SimTime::ZERO);
        assert_eq!(r.deliveries.len(), 1, "same seq on a different stream is not a dup");
        assert_eq!(f.stream_count(), 2);
        assert_eq!(f.duplicate_count(), 0);
    }

    #[test]
    fn observation_carries_receiver_and_rssi() {
        let mut f = svc();
        let r = f.on_frame(rx(3), -62.5, &frame(0), SimTime::from_millis(9));
        let obs = r.observation.unwrap();
        assert_eq!(obs.receiver, rx(3));
        assert_eq!(obs.rssi_dbm, -62.5);
        assert_eq!(obs.sensor.as_u32(), 7);
        assert_eq!(obs.at, SimTime::from_millis(9));
    }

    #[test]
    fn batch_matches_per_frame() {
        // A messy burst — duplicates, a reorder gap, a corrupt frame —
        // produces the same per-frame results and the same counters
        // whether fed through `on_batch` or `on_frame` one at a time.
        let mut corrupt = frame_vec(9);
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        let arrivals: Vec<FrameArrival> = [frame(0), frame(0), frame(2), corrupt.into(), frame(1)]
            .into_iter()
            .enumerate()
            .map(|(i, fr)| FrameArrival {
                receiver: rx(i as u32 % 2),
                rssi_dbm: -40.0 - i as f64,
                frame: fr,
                at: SimTime::from_millis(i as u64),
            })
            .collect();

        let mut batched = svc();
        let batch_results = batched.on_batch(&arrivals);

        let mut single = svc();
        let frame_results: Vec<FilterResult> = arrivals
            .iter()
            .map(|a| single.on_frame(a.receiver, a.rssi_dbm, &a.frame, a.at))
            .collect();

        assert_eq!(batch_results.len(), frame_results.len());
        for (i, (b, s)) in batch_results.iter().zip(&frame_results).enumerate() {
            let project = |r: &FilterResult| {
                (
                    r.deliveries
                        .iter()
                        .map(|d| (d.msg.seq().as_u16(), d.msg.payload().to_vec()))
                        .collect::<Vec<_>>(),
                    r.observation.map(|o| (o.receiver, o.sensor.as_u32())),
                    r.error.is_some(),
                )
            };
            assert_eq!(project(b), project(s), "frame {i} diverged");
        }
        assert_eq!(batched.delivered_count(), single.delivered_count());
        assert_eq!(batched.duplicate_count(), single.duplicate_count());
        assert_eq!(batched.crc_failure_count(), single.crc_failure_count());
        assert_eq!(batched.reordered_count(), single.reordered_count());
        assert_eq!(batched.gap_count(), single.gap_count());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use garnet_wire::{StreamId, StreamIndex};
    use proptest::prelude::*;

    // Simulate receiver duplication/reordering of an in-order source and
    // verify exactly-once, in-order delivery of everything that arrives
    // in some copy.
    proptest! {
        #[test]
        fn exactly_once_in_order(
            n in 1u16..80,
            dup_mask in proptest::collection::vec(0u8..3, 80),
            swap_mask in proptest::collection::vec(proptest::bool::ANY, 80),
        ) {
            let stream = StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0));
            // Build the arrival schedule: each message may appear 1-3
            // times; adjacent pairs may swap.
            let mut arrivals: Vec<u16> = Vec::new();
            for i in 0..n {
                for _ in 0..=(dup_mask[i as usize] % 3) {
                    arrivals.push(i);
                }
            }
            let mut k = 0;
            while k + 1 < arrivals.len() {
                if swap_mask[k % swap_mask.len()] {
                    arrivals.swap(k, k + 1);
                }
                k += 2;
            }

            let arrivals_first = arrivals[0];
            let mut f = FilteringService::new(FilterConfig::default());
            let mut delivered: Vec<u16> = Vec::new();
            let mut t = SimTime::ZERO;
            for seq in arrivals {
                let fr: FrameBytes = DataMessage::builder(stream)
                    .seq(SequenceNumber::new(seq))
                    .build()
                    .unwrap()
                    .encode_to_vec()
                    .into();
                t += garnet_simkit::SimDuration::from_micros(100);
                for d in f.on_frame(ReceiverId::new(0), -40.0, &fr, t).deliveries {
                    delivered.push(d.msg.seq().as_u16());
                }
            }
            // Flush whatever is still buffered.
            for d in f.on_tick(SimTime::from_secs(3600)) {
                delivered.push(d.msg.seq().as_u16());
            }
            // Every message delivered exactly once…
            let mut sorted = delivered.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), delivered.len(), "duplicate delivery: {:?}", delivered);
            // …in serial order…
            for w in delivered.windows(2) {
                prop_assert!(
                    SequenceNumber::new(w[1]).is_after(SequenceNumber::new(w[0])),
                    "out of order: {:?}", delivered
                );
            }
            // …and complete *from the first-delivered sequence on*: a
            // message reordered ahead of the true stream start defines
            // the start, and anything serially before it is
            // indistinguishable from a stale retransmit and is dropped.
            let first = arrivals_first;
            prop_assert_eq!(delivered.len() as u16, n - first);
            prop_assert_eq!(delivered[0], first);
        }
    }
}
