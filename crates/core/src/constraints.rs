//! The sensor-constraint expression language.
//!
//! §8 of the paper names "codification of sensor constraints via the
//! development of an expressive language" as a key extension, one that
//! "would facilitate the operation of the resource manager in
//! automatically enforcing such limits". This module implements that
//! language: a small,
//! total, side-effect-free expression grammar over the attributes of an
//! actuation request, evaluated by the Resource Manager before any
//! command is approved.
//!
//! # Grammar
//!
//! ```text
//! expr   := or
//! or     := and ( '||' and )*
//! and    := not ( '&&' not )*
//! not    := '!' not | cmp
//! cmp    := sum ( ('<'|'<='|'>'|'>='|'=='|'!=') sum )?
//! sum    := term ( ('+'|'-') term )*
//! term   := unary ( ('*'|'/') unary )*
//! unary  := '-' unary | atom
//! atom   := NUMBER | 'true' | 'false' | IDENT
//!         | IDENT '(' expr (',' expr)* ')'        (built-in call)
//!         | '(' expr ')'
//! ```
//!
//! Built-in functions: `min(a, b)`, `max(a, b)`, `abs(x)` and
//! `clamp(x, lo, hi)` — enough to express duty/rate envelopes like
//! `rate_hz <= min(20, 1000 / interval_floor_ms)` without hard-coding
//! the arithmetic in the Resource Manager.
//!
//! Identifiers are bound by the evaluation environment; the Resource
//! Manager provides `interval_ms`, `rate_hz`, `duty_permille`,
//! `stream`, `priority` and friends (see `resource`). Unknown
//! identifiers and type confusion are *errors*, not silently false —
//! a mis-spelled constraint must fail loudly at registration.
//!
//! # Example
//!
//! ```
//! use garnet_core::constraints::{Constraint, Env, Value};
//!
//! let c = Constraint::parse("rate_hz <= 10 && duty_permille <= 500")?;
//! let mut env = Env::new();
//! env.set("rate_hz", Value::Num(4.0));
//! env.set("duty_permille", Value::Num(250.0));
//! assert!(c.check(&env)?);
//! # Ok::<(), garnet_core::constraints::ConstraintError>(())
//! ```

use std::collections::BTreeMap;

use core::fmt;

/// A runtime value: numbers (all arithmetic is `f64`) or booleans.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// A numeric value.
    Num(f64),
    /// A boolean value.
    Bool(bool),
}

impl Value {
    fn type_name(self) -> &'static str {
        match self {
            Value::Num(_) => "number",
            Value::Bool(_) => "boolean",
        }
    }

    fn as_num(self) -> Result<f64, ConstraintError> {
        match self {
            Value::Num(n) => Ok(n),
            Value::Bool(_) => {
                Err(ConstraintError::TypeMismatch { expected: "number", found: "boolean" })
            }
        }
    }

    fn as_bool(self) -> Result<bool, ConstraintError> {
        match self {
            Value::Bool(b) => Ok(b),
            Value::Num(_) => {
                Err(ConstraintError::TypeMismatch { expected: "boolean", found: "number" })
            }
        }
    }
}

/// The evaluation environment: identifier bindings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Env {
    vars: BTreeMap<String, Value>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `name` to `value`, replacing any previous binding.
    pub fn set(&mut self, name: &str, value: Value) -> &mut Self {
        self.vars.insert(name.to_owned(), value);
        self
    }

    /// Reads a binding.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.vars.get(name).copied()
    }
}

/// Errors from parsing or evaluating a constraint.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ConstraintError {
    /// Lexical error at a byte offset.
    BadToken {
        /// Byte offset into the source.
        at: usize,
        /// The offending character.
        found: char,
    },
    /// The parser expected something else.
    UnexpectedToken {
        /// Byte offset into the source.
        at: usize,
        /// Human description of what was found.
        found: String,
        /// What the grammar wanted.
        expected: &'static str,
    },
    /// Input ended mid-expression.
    UnexpectedEnd,
    /// An identifier with no binding in the environment.
    UnknownIdentifier(String),
    /// Operator applied to the wrong type.
    TypeMismatch {
        /// Required type.
        expected: &'static str,
        /// Provided type.
        found: &'static str,
    },
    /// Division by zero during evaluation.
    DivisionByZero,
    /// A call to a function the language does not define.
    UnknownFunction(String),
    /// A built-in called with the wrong number of arguments.
    WrongArity {
        /// The function.
        function: &'static str,
        /// Arguments it takes.
        expected: usize,
        /// Arguments provided.
        found: usize,
    },
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::BadToken { at, found } => {
                write!(f, "unexpected character {found:?} at offset {at}")
            }
            ConstraintError::UnexpectedToken { at, found, expected } => {
                write!(f, "expected {expected} at offset {at}, found {found}")
            }
            ConstraintError::UnexpectedEnd => write!(f, "unexpected end of expression"),
            ConstraintError::UnknownIdentifier(name) => {
                write!(f, "unknown identifier {name:?}")
            }
            ConstraintError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ConstraintError::DivisionByZero => write!(f, "division by zero"),
            ConstraintError::UnknownFunction(name) => {
                write!(f, "unknown function {name:?}")
            }
            ConstraintError::WrongArity { function, expected, found } => {
                write!(f, "{function} takes {expected} argument(s), found {found}")
            }
        }
    }
}

impl std::error::Error for ConstraintError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    True,
    False,
    Plus,
    Minus,
    Star,
    Slash,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Bang,
    LParen,
    RParen,
    Comma,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ConstraintError> {
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                out.push((i, Tok::Plus));
                i += 1;
            }
            '-' => {
                out.push((i, Tok::Minus));
                i += 1;
            }
            '*' => {
                out.push((i, Tok::Star));
                i += 1;
            }
            '/' => {
                out.push((i, Tok::Slash));
                i += 1;
            }
            '(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            ',' => {
                out.push((i, Tok::Comma));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Le));
                    i += 2;
                } else {
                    out.push((i, Tok::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Ge));
                    i += 2;
                } else {
                    out.push((i, Tok::Gt));
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::EqEq));
                    i += 2;
                } else {
                    return Err(ConstraintError::BadToken { at: i, found: '=' });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Ne));
                    i += 2;
                } else {
                    out.push((i, Tok::Bang));
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push((i, Tok::AndAnd));
                    i += 2;
                } else {
                    return Err(ConstraintError::BadToken { at: i, found: '&' });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push((i, Tok::OrOr));
                    i += 2;
                } else {
                    return Err(ConstraintError::BadToken { at: i, found: '|' });
                }
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                let text = &src[start..i];
                let n: f64 =
                    text.parse().map_err(|_| ConstraintError::BadToken { at: start, found: c })?;
                out.push((start, Tok::Num(n)));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                out.push((
                    start,
                    match word {
                        "true" => Tok::True,
                        "false" => Tok::False,
                        _ => Tok::Ident(word.to_owned()),
                    },
                ));
            }
            other => return Err(ConstraintError::BadToken { at: i, found: other }),
        }
    }
    Ok(out)
}

/// Parsed expression tree.
#[derive(Clone, Debug, PartialEq)]
enum Expr {
    Num(f64),
    Bool(bool),
    Var(String),
    Neg(Box<Expr>),
    Not(Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Call(Builtin, Vec<Expr>),
}

/// The built-in function set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Builtin {
    Min,
    Max,
    Abs,
    Clamp,
}

impl Builtin {
    fn lookup(name: &str) -> Option<Builtin> {
        match name {
            "min" => Some(Builtin::Min),
            "max" => Some(Builtin::Max),
            "abs" => Some(Builtin::Abs),
            "clamp" => Some(Builtin::Clamp),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Builtin::Min => "min",
            Builtin::Max => "max",
            Builtin::Abs => "abs",
            Builtin::Clamp => "clamp",
        }
    }

    fn arity(self) -> usize {
        match self {
            Builtin::Min | Builtin::Max => 2,
            Builtin::Abs => 1,
            Builtin::Clamp => 3,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<(usize, Tok)> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_rparen(&mut self) -> Result<(), ConstraintError> {
        match self.next() {
            Some((_, Tok::RParen)) => Ok(()),
            Some((at, t)) => Err(ConstraintError::UnexpectedToken {
                at,
                found: format!("{t:?}"),
                expected: "')'",
            }),
            None => Err(ConstraintError::UnexpectedEnd),
        }
    }

    fn parse_or(&mut self) -> Result<Expr, ConstraintError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Tok::OrOr) {
            self.next();
            let rhs = self.parse_and()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ConstraintError> {
        let mut lhs = self.parse_not()?;
        while self.peek() == Some(&Tok::AndAnd) {
            self.next();
            let rhs = self.parse_not()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr, ConstraintError> {
        if self.peek() == Some(&Tok::Bang) {
            self.next();
            Ok(Expr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_cmp()
        }
    }

    fn parse_cmp(&mut self) -> Result<Expr, ConstraintError> {
        let lhs = self.parse_sum()?;
        let op = match self.peek() {
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            Some(Tok::EqEq) => Some(BinOp::Eq),
            Some(Tok::Ne) => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let rhs = self.parse_sum()?;
            Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn parse_sum(&mut self) -> Result<Expr, ConstraintError> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.parse_term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Expr, ConstraintError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.parse_unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ConstraintError> {
        if self.peek() == Some(&Tok::Minus) {
            self.next();
            Ok(Expr::Neg(Box::new(self.parse_unary()?)))
        } else {
            self.parse_atom()
        }
    }

    fn parse_atom(&mut self) -> Result<Expr, ConstraintError> {
        match self.next() {
            Some((_, Tok::Num(n))) => Ok(Expr::Num(n)),
            Some((_, Tok::True)) => Ok(Expr::Bool(true)),
            Some((_, Tok::False)) => Ok(Expr::Bool(false)),
            Some((at, Tok::Ident(name))) => {
                if self.peek() == Some(&Tok::LParen) {
                    let Some(builtin) = Builtin::lookup(&name) else {
                        return Err(ConstraintError::UnknownFunction(name));
                    };
                    self.next(); // consume '('
                    let mut args = vec![self.parse_or()?];
                    while self.peek() == Some(&Tok::Comma) {
                        self.next();
                        args.push(self.parse_or()?);
                    }
                    self.expect_rparen()?;
                    if args.len() != builtin.arity() {
                        return Err(ConstraintError::WrongArity {
                            function: builtin.name(),
                            expected: builtin.arity(),
                            found: args.len(),
                        });
                    }
                    let _ = at;
                    Ok(Expr::Call(builtin, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some((_, Tok::LParen)) => {
                let inner = self.parse_or()?;
                self.expect_rparen()?;
                Ok(inner)
            }
            Some((at, t)) => Err(ConstraintError::UnexpectedToken {
                at,
                found: format!("{t:?}"),
                expected: "a value, identifier or '('",
            }),
            None => Err(ConstraintError::UnexpectedEnd),
        }
    }
}

impl Expr {
    fn eval(&self, env: &Env) -> Result<Value, ConstraintError> {
        match self {
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Var(name) => {
                env.get(name).ok_or_else(|| ConstraintError::UnknownIdentifier(name.clone()))
            }
            Expr::Neg(inner) => Ok(Value::Num(-inner.eval(env)?.as_num()?)),
            Expr::Not(inner) => Ok(Value::Bool(!inner.eval(env)?.as_bool()?)),
            Expr::Call(builtin, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(env)?.as_num()?);
                }
                Ok(Value::Num(match builtin {
                    Builtin::Min => vals[0].min(vals[1]),
                    Builtin::Max => vals[0].max(vals[1]),
                    Builtin::Abs => vals[0].abs(),
                    Builtin::Clamp => vals[0].clamp(vals[1].min(vals[2]), vals[2].max(vals[1])),
                }))
            }
            Expr::Bin(op, lhs, rhs) => {
                // Short-circuit logicals.
                match op {
                    BinOp::And => {
                        return Ok(Value::Bool(
                            lhs.eval(env)?.as_bool()? && rhs.eval(env)?.as_bool()?,
                        ))
                    }
                    BinOp::Or => {
                        return Ok(Value::Bool(
                            lhs.eval(env)?.as_bool()? || rhs.eval(env)?.as_bool()?,
                        ))
                    }
                    _ => {}
                }
                let l = lhs.eval(env)?;
                let r = rhs.eval(env)?;
                match op {
                    BinOp::Add => Ok(Value::Num(l.as_num()? + r.as_num()?)),
                    BinOp::Sub => Ok(Value::Num(l.as_num()? - r.as_num()?)),
                    BinOp::Mul => Ok(Value::Num(l.as_num()? * r.as_num()?)),
                    BinOp::Div => {
                        let d = r.as_num()?;
                        if d == 0.0 {
                            Err(ConstraintError::DivisionByZero)
                        } else {
                            Ok(Value::Num(l.as_num()? / d))
                        }
                    }
                    BinOp::Lt => Ok(Value::Bool(l.as_num()? < r.as_num()?)),
                    BinOp::Le => Ok(Value::Bool(l.as_num()? <= r.as_num()?)),
                    BinOp::Gt => Ok(Value::Bool(l.as_num()? > r.as_num()?)),
                    BinOp::Ge => Ok(Value::Bool(l.as_num()? >= r.as_num()?)),
                    BinOp::Eq => Ok(Value::Bool(match (l, r) {
                        (Value::Num(a), Value::Num(b)) => a == b,
                        (Value::Bool(a), Value::Bool(b)) => a == b,
                        (a, b) => {
                            return Err(ConstraintError::TypeMismatch {
                                expected: a.type_name(),
                                found: b.type_name(),
                            })
                        }
                    })),
                    BinOp::Ne => Ok(Value::Bool(match (l, r) {
                        (Value::Num(a), Value::Num(b)) => a != b,
                        (Value::Bool(a), Value::Bool(b)) => a != b,
                        (a, b) => {
                            return Err(ConstraintError::TypeMismatch {
                                expected: a.type_name(),
                                found: b.type_name(),
                            })
                        }
                    })),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
        }
    }

    fn write(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(n) => write!(f, "{n}"),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Var(name) => f.write_str(name),
            Expr::Neg(inner) => {
                write!(f, "-(")?;
                inner.write(f)?;
                write!(f, ")")
            }
            Expr::Not(inner) => {
                write!(f, "!(")?;
                inner.write(f)?;
                write!(f, ")")
            }
            Expr::Bin(op, lhs, rhs) => {
                write!(f, "(")?;
                lhs.write(f)?;
                write!(f, " {} ", op.symbol())?;
                rhs.write(f)?;
                write!(f, ")")
            }
            Expr::Call(builtin, args) => {
                write!(f, "{}(", builtin.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    a.write(f)?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A parsed, reusable constraint expression.
#[derive(Clone, Debug, PartialEq)]
pub struct Constraint {
    source: String,
    expr: Expr,
}

impl Constraint {
    /// Parses a constraint from source text.
    ///
    /// # Errors
    ///
    /// Lexical or syntax errors, with byte offsets for diagnostics.
    pub fn parse(source: &str) -> Result<Constraint, ConstraintError> {
        let toks = lex(source)?;
        let mut parser = Parser { toks, pos: 0 };
        let expr = parser.parse_or()?;
        if let Some((at, t)) = parser.next() {
            return Err(ConstraintError::UnexpectedToken {
                at,
                found: format!("{t:?}"),
                expected: "end of expression",
            });
        }
        Ok(Constraint { source: source.to_owned(), expr })
    }

    /// Evaluates to a boolean verdict.
    ///
    /// # Errors
    ///
    /// Unknown identifiers, type mismatches, division by zero, or a
    /// top-level numeric result (a constraint must be a predicate).
    pub fn check(&self, env: &Env) -> Result<bool, ConstraintError> {
        self.expr.eval(env)?.as_bool()
    }

    /// Evaluates to any value (for testing sub-expressions).
    pub fn eval(&self, env: &Env) -> Result<Value, ConstraintError> {
        self.expr.eval(env)
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }
}

impl fmt::Display for Constraint {
    /// Renders a fully parenthesised canonical form (not the original
    /// source); `parse(display(c))` produces an equivalent constraint.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.expr.write(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Env {
        let mut e = Env::new();
        e.set("rate_hz", Value::Num(5.0))
            .set("interval_ms", Value::Num(200.0))
            .set("duty_permille", Value::Num(300.0))
            .set("priority", Value::Num(2.0))
            .set("encrypted", Value::Bool(true));
        e
    }

    fn check(src: &str) -> bool {
        Constraint::parse(src).unwrap().check(&env()).unwrap()
    }

    #[test]
    fn comparisons() {
        assert!(check("rate_hz <= 10"));
        assert!(!check("rate_hz > 10"));
        assert!(check("interval_ms >= 200"));
        assert!(check("interval_ms == 200"));
        assert!(check("interval_ms != 100"));
        assert!(check("rate_hz < 5.5"));
    }

    #[test]
    fn boolean_composition() {
        assert!(check("rate_hz <= 10 && duty_permille <= 500"));
        assert!(!check("rate_hz <= 10 && duty_permille <= 100"));
        assert!(check("rate_hz > 100 || encrypted"));
        assert!(check("!(rate_hz > 100)"));
        assert!(check("!false"));
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert!(check("rate_hz * 2 == 10"));
        assert!(check("1 + 2 * 3 == 7"));
        assert!(check("(1 + 2) * 3 == 9"));
        assert!(check("10 - 4 - 3 == 3"), "subtraction is left-associative");
        assert!(check("8 / 2 / 2 == 2"));
        assert!(check("-rate_hz == -5"));
        assert!(check("1000 / interval_ms == rate_hz"));
    }

    #[test]
    fn comparison_binds_looser_than_arithmetic() {
        assert!(check("rate_hz + 1 <= 6"));
        assert!(check("2 < 1 + 2"));
    }

    #[test]
    fn and_binds_tighter_than_or() {
        // false && false || true → (false && false) || true → true
        assert!(check("false && false || true"));
        assert!(!check("false && (false || true)"));
    }

    #[test]
    fn bool_equality() {
        assert!(check("encrypted == true"));
        assert!(check("encrypted != false"));
    }

    #[test]
    fn unknown_identifier_is_error() {
        let c = Constraint::parse("bogus_var < 5").unwrap();
        assert_eq!(c.check(&env()), Err(ConstraintError::UnknownIdentifier("bogus_var".into())));
    }

    #[test]
    fn type_mismatch_is_error() {
        let c = Constraint::parse("encrypted + 1 > 0").unwrap();
        assert!(matches!(c.check(&env()), Err(ConstraintError::TypeMismatch { .. })));
        let c = Constraint::parse("rate_hz && true").unwrap();
        assert!(matches!(c.check(&env()), Err(ConstraintError::TypeMismatch { .. })));
        let c = Constraint::parse("encrypted == 1").unwrap();
        assert!(matches!(c.check(&env()), Err(ConstraintError::TypeMismatch { .. })));
    }

    #[test]
    fn numeric_top_level_is_error() {
        let c = Constraint::parse("1 + 1").unwrap();
        assert!(matches!(c.check(&env()), Err(ConstraintError::TypeMismatch { .. })));
    }

    #[test]
    fn division_by_zero_is_error() {
        let c = Constraint::parse("1 / 0 > 0").unwrap();
        assert_eq!(c.check(&env()), Err(ConstraintError::DivisionByZero));
    }

    #[test]
    fn short_circuit_avoids_errors() {
        // Right side would divide by zero, but the left decides.
        assert!(check("true || 1 / 0 > 0"));
        assert!(!check("false && 1 / 0 > 0"));
    }

    #[test]
    fn syntax_errors_reported_with_position() {
        assert!(matches!(Constraint::parse("rate_hz <"), Err(ConstraintError::UnexpectedEnd)));
        assert!(matches!(
            Constraint::parse("rate_hz # 5"),
            Err(ConstraintError::BadToken { found: '#', .. })
        ));
        assert!(matches!(
            Constraint::parse("1 = 2"),
            Err(ConstraintError::BadToken { found: '=', .. })
        ));
        assert!(matches!(Constraint::parse("(1 < 2"), Err(ConstraintError::UnexpectedEnd)));
        assert!(matches!(
            Constraint::parse("1 < 2 extra"),
            Err(ConstraintError::UnexpectedToken { .. })
        ));
        assert!(matches!(Constraint::parse(""), Err(ConstraintError::UnexpectedEnd)));
        assert!(matches!(
            Constraint::parse("a & b"),
            Err(ConstraintError::BadToken { found: '&', .. })
        ));
    }

    #[test]
    fn display_round_trips_semantically() {
        let sources = [
            "rate_hz <= 10 && duty_permille <= 500",
            "1 + 2 * 3 == 7 || !encrypted",
            "-(rate_hz) < 0",
            "(rate_hz + 1) * 2 >= interval_ms / 100",
        ];
        for src in sources {
            let c1 = Constraint::parse(src).unwrap();
            let printed = c1.to_string();
            let c2 = Constraint::parse(&printed).unwrap();
            assert_eq!(
                c1.check(&env()),
                c2.check(&env()),
                "round trip changed meaning: {src} → {printed}"
            );
            // Fixpoint: printing the reparsed form is stable.
            assert_eq!(printed, c2.to_string());
        }
    }

    #[test]
    fn source_is_retained() {
        let c = Constraint::parse("rate_hz<=10").unwrap();
        assert_eq!(c.source(), "rate_hz<=10");
    }

    #[test]
    fn builtin_functions() {
        assert!(check("min(rate_hz, 3) == 3"));
        assert!(check("max(rate_hz, 3) == 5"));
        assert!(check("abs(0 - rate_hz) == 5"));
        assert!(check("clamp(rate_hz, 0, 4) == 4"));
        assert!(check("clamp(rate_hz, 6, 10) == 6"));
        assert!(check("rate_hz <= min(20, 1000 / interval_ms * 2)"));
        // Nested calls.
        assert!(check("min(max(rate_hz, 1), 10) == 5"));
    }

    #[test]
    fn builtin_errors() {
        assert!(matches!(
            Constraint::parse("sqrt(4) > 1"),
            Err(ConstraintError::UnknownFunction(name)) if name == "sqrt"
        ));
        assert!(matches!(
            Constraint::parse("min(1) > 0"),
            Err(ConstraintError::WrongArity { function: "min", expected: 2, found: 1 })
        ));
        assert!(matches!(
            Constraint::parse("abs(1, 2) > 0"),
            Err(ConstraintError::WrongArity { function: "abs", .. })
        ));
        assert!(matches!(Constraint::parse("min(1,"), Err(ConstraintError::UnexpectedEnd)));
        // Type errors inside calls surface.
        let c = Constraint::parse("min(true, 1) > 0").unwrap();
        assert!(matches!(c.check(&env()), Err(ConstraintError::TypeMismatch { .. })));
        // A bare comma outside a call is a syntax error.
        assert!(Constraint::parse("1 , 2").is_err());
    }

    #[test]
    fn builtin_display_round_trips() {
        let c1 = Constraint::parse("clamp(rate_hz, 0, min(10, 20)) <= 10").unwrap();
        let printed = c1.to_string();
        let c2 = Constraint::parse(&printed).unwrap();
        assert_eq!(c1.check(&env()).unwrap(), c2.check(&env()).unwrap());
        assert_eq!(printed, c2.to_string());
    }

    #[test]
    fn realistic_sensor_profile() {
        // A battery-powered acoustic sensor: max 2 Hz reporting, duty
        // cycle at most 20%, and high-rate requests only from
        // high-priority consumers.
        let c = Constraint::parse(
            "rate_hz <= 2 && duty_permille <= 200 && (rate_hz <= 0.5 || priority >= 3)",
        )
        .unwrap();
        let mut e = Env::new();
        e.set("rate_hz", Value::Num(0.2))
            .set("duty_permille", Value::Num(100.0))
            .set("priority", Value::Num(0.0));
        assert!(c.check(&e).unwrap());
        e.set("rate_hz", Value::Num(1.0));
        assert!(!c.check(&e).unwrap(), "1 Hz needs priority >= 3");
        e.set("priority", Value::Num(3.0));
        assert!(c.check(&e).unwrap());
        e.set("rate_hz", Value::Num(4.0));
        assert!(!c.check(&e).unwrap(), "4 Hz is over the hard cap");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_expr(depth: u32) -> BoxedStrategy<String> {
        if depth == 0 {
            prop_oneof![
                (0u32..100).prop_map(|n| n.to_string()),
                Just("x".to_owned()),
                Just("y".to_owned()),
            ]
            .boxed()
        } else {
            let sub = arb_expr(depth - 1);
            prop_oneof![
                (sub.clone(), prop_oneof![Just("+"), Just("-"), Just("*")], sub.clone())
                    .prop_map(|(a, op, b)| format!("({a} {op} {b})")),
                sub.clone().prop_map(|a| format!("-({a})")),
                sub,
            ]
            .boxed()
        }
    }

    proptest! {
        #[test]
        fn print_parse_fixpoint(src in arb_expr(3), cmp in prop_oneof![Just("<"), Just(">="), Just("==")], rhs in arb_expr(2)) {
            let full = format!("{src} {cmp} {rhs}");
            let c1 = Constraint::parse(&full).unwrap();
            let printed = c1.to_string();
            let c2 = Constraint::parse(&printed).unwrap();
            prop_assert_eq!(printed.clone(), c2.to_string());

            let mut env = Env::new();
            env.set("x", Value::Num(3.0)).set("y", Value::Num(-7.0));
            prop_assert_eq!(c1.check(&env).unwrap(), c2.check(&env).unwrap());
        }

        #[test]
        fn parser_never_panics_on_arbitrary_input(src in "\\PC{0,64}") {
            // Any garbage string must produce Ok or a structured error —
            // never a panic (constraints arrive from operators at
            // runtime).
            let _ = Constraint::parse(&src);
        }

        #[test]
        fn parser_never_panics_on_token_shaped_garbage(
            parts in proptest::collection::vec(
                prop_oneof![
                    Just("&&".to_owned()), Just("||".to_owned()), Just("!".to_owned()),
                    Just("<=".to_owned()), Just("==".to_owned()), Just("(".to_owned()),
                    Just(")".to_owned()), Just("-".to_owned()), Just("/".to_owned()),
                    Just("rate_hz".to_owned()), Just("true".to_owned()),
                    (0u32..1000).prop_map(|n| n.to_string()),
                    Just(".".to_owned()), Just("..".to_owned()),
                ],
                0..16,
            )
        ) {
            let src = parts.join(" ");
            if let Ok(c) = Constraint::parse(&src) {
                // Whatever parsed must also evaluate without panicking.
                let mut env = Env::new();
                env.set("rate_hz", Value::Num(1.0));
                let _ = c.check(&env);
                // And its canonical form must re-parse.
                prop_assert!(Constraint::parse(&c.to_string()).is_ok());
            }
        }

        #[test]
        fn evaluator_is_total_on_numeric_exprs(src in arb_expr(4), x in -100.0f64..100.0, y in -100.0f64..100.0) {
            let c = Constraint::parse(&src).unwrap();
            let mut env = Env::new();
            env.set("x", Value::Num(x)).set("y", Value::Num(y));
            // No division in the generator, so evaluation must succeed
            // and produce a number.
            let v = c.eval(&env).unwrap();
            prop_assert!(matches!(v, Value::Num(_)));
        }
    }
}
