//! The Orphanage: default consumer for unclaimed data.
//!
//! "The Orphanage is a default consumer process which receives
//! un-configured data. There, data messages are analysed and potentially
//! stored" (§4.2). Sensors are plug-and-play (§5): a freshly deployed
//! node starts transmitting before anyone has subscribed, and its data
//! must neither vanish nor crash the pipeline. The orphanage keeps a
//! bounded ring of recent messages per unclaimed stream plus running
//! statistics, and when a consumer later claims the stream it receives
//! the retained backlog (experiment E12).

use std::collections::{HashMap, VecDeque};

use garnet_simkit::{SimDuration, SimTime};
use garnet_wire::{DataMessage, StreamId};

use crate::filtering::Delivery;

/// Orphanage tuning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrphanageConfig {
    /// Messages retained per unclaimed stream.
    pub retain_per_stream: usize,
    /// Streams tracked before the least-recently-active is evicted.
    pub max_streams: usize,
}

impl Default for OrphanageConfig {
    fn default() -> Self {
        OrphanageConfig { retain_per_stream: 128, max_streams: 4096 }
    }
}

/// Summary of one unclaimed stream — what an operator console would show
/// when asking "what is transmitting that nobody listens to?".
#[derive(Clone, Debug, PartialEq)]
pub struct OrphanStats {
    /// The stream.
    pub stream: StreamId,
    /// Messages seen since tracking began.
    pub messages_seen: u64,
    /// Messages currently retained.
    pub retained: usize,
    /// First and most recent arrival.
    pub first_seen: SimTime,
    /// Most recent arrival.
    pub last_seen: SimTime,
    /// Mean payload size (bytes).
    pub mean_payload_len: f64,
    /// Estimated message interval, if at least two messages arrived.
    pub estimated_interval: Option<SimDuration>,
}

#[derive(Debug)]
struct OrphanStream {
    ring: VecDeque<DataMessage>,
    messages_seen: u64,
    payload_total: u64,
    first_seen: SimTime,
    last_seen: SimTime,
}

/// The Orphanage service.
///
/// # Example
///
/// ```
/// use garnet_core::orphanage::Orphanage;
/// use garnet_core::filtering::Delivery;
/// use garnet_simkit::SimTime;
/// use garnet_wire::{DataMessage, StreamId};
///
/// let mut orphanage = Orphanage::new(Default::default());
/// let msg = DataMessage::builder(StreamId::from_raw(0x0500)).build()?;
/// orphanage.take_in(&Delivery {
///     msg: msg.clone(),
///     first_received_at: SimTime::ZERO,
///     delivered_at: SimTime::ZERO,
/// });
/// // A consumer subscribes later and claims the backlog:
/// let backlog = orphanage.claim(msg.stream());
/// assert_eq!(backlog.len(), 1);
/// # Ok::<(), garnet_wire::WireError>(())
/// ```
#[derive(Debug)]
pub struct Orphanage {
    config: OrphanageConfig,
    streams: HashMap<u32, OrphanStream>,
    total_taken: u64,
    total_evicted: u64,
}

impl Orphanage {
    /// Creates an orphanage.
    pub fn new(config: OrphanageConfig) -> Self {
        Orphanage { config, streams: HashMap::new(), total_taken: 0, total_evicted: 0 }
    }

    /// Stores an unclaimed delivery.
    pub fn take_in(&mut self, delivery: &Delivery) {
        let raw = delivery.msg.stream().to_raw();
        if !self.streams.contains_key(&raw) && self.streams.len() >= self.config.max_streams {
            self.evict_stalest();
        }
        let entry = self.streams.entry(raw).or_insert_with(|| OrphanStream {
            ring: VecDeque::with_capacity(self.config.retain_per_stream.min(64)),
            messages_seen: 0,
            payload_total: 0,
            first_seen: delivery.delivered_at,
            last_seen: delivery.delivered_at,
        });
        entry.messages_seen += 1;
        entry.payload_total += delivery.msg.payload().len() as u64;
        entry.last_seen = delivery.delivered_at;
        if entry.ring.len() == self.config.retain_per_stream {
            entry.ring.pop_front();
        }
        entry.ring.push_back(delivery.msg.clone());
        self.total_taken += 1;
    }

    fn evict_stalest(&mut self) {
        if let Some((&raw, _)) =
            self.streams.iter().min_by_key(|(_, s)| (s.last_seen, s.first_seen))
        {
            self.streams.remove(&raw);
            self.total_evicted += 1;
        }
    }

    /// A consumer has claimed `stream`: returns and forgets the retained
    /// backlog (oldest first).
    pub fn claim(&mut self, stream: StreamId) -> Vec<DataMessage> {
        self.streams
            .remove(&stream.to_raw())
            .map(|s| s.ring.into_iter().collect())
            .unwrap_or_default()
    }

    /// Statistics for one unclaimed stream.
    pub fn stats(&self, stream: StreamId) -> Option<OrphanStats> {
        self.streams.get(&stream.to_raw()).map(|s| OrphanStats {
            stream,
            messages_seen: s.messages_seen,
            retained: s.ring.len(),
            first_seen: s.first_seen,
            last_seen: s.last_seen,
            mean_payload_len: if s.messages_seen == 0 {
                0.0
            } else {
                s.payload_total as f64 / s.messages_seen as f64
            },
            estimated_interval: (s.messages_seen >= 2)
                .then(|| s.last_seen.saturating_since(s.first_seen) / (s.messages_seen - 1)),
        })
    }

    /// Every unclaimed stream, ordered by raw id (deterministic).
    pub fn unclaimed_streams(&self) -> Vec<StreamId> {
        let mut raws: Vec<u32> = self.streams.keys().copied().collect();
        raws.sort_unstable();
        raws.into_iter().map(StreamId::from_raw).collect()
    }

    /// Total messages ever taken in.
    pub fn total_taken(&self) -> u64 {
        self.total_taken
    }

    /// Streams evicted under memory pressure.
    pub fn total_evicted(&self) -> u64 {
        self.total_evicted
    }

    /// Number of streams currently tracked.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garnet_wire::{SensorId, SequenceNumber, StreamIndex};

    fn delivery(sensor: u32, idx: u8, seq: u16, at_ms: u64, payload: usize) -> Delivery {
        let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(idx));
        Delivery {
            msg: DataMessage::builder(stream)
                .seq(SequenceNumber::new(seq))
                .payload(vec![0u8; payload])
                .build()
                .unwrap(),
            first_received_at: SimTime::from_millis(at_ms),
            delivered_at: SimTime::from_millis(at_ms),
        }
    }

    #[test]
    fn take_in_and_claim_replays_in_order() {
        let mut o = Orphanage::new(OrphanageConfig::default());
        for seq in 0..5u16 {
            o.take_in(&delivery(1, 0, seq, seq as u64, 4));
        }
        let stream = StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0));
        let backlog = o.claim(stream);
        let seqs: Vec<u16> = backlog.iter().map(|m| m.seq().as_u16()).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(o.stream_count(), 0, "claimed stream is forgotten");
        assert!(o.claim(stream).is_empty(), "second claim yields nothing");
    }

    #[test]
    fn ring_bounds_retention() {
        let mut o = Orphanage::new(OrphanageConfig { retain_per_stream: 3, max_streams: 10 });
        for seq in 0..10u16 {
            o.take_in(&delivery(1, 0, seq, seq as u64, 4));
        }
        let stream = StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0));
        let stats = o.stats(stream).unwrap();
        assert_eq!(stats.messages_seen, 10);
        assert_eq!(stats.retained, 3);
        let backlog = o.claim(stream);
        let seqs: Vec<u16> = backlog.iter().map(|m| m.seq().as_u16()).collect();
        assert_eq!(seqs, vec![7, 8, 9], "oldest dropped first");
    }

    #[test]
    fn stats_estimate_rate_and_payload() {
        let mut o = Orphanage::new(OrphanageConfig::default());
        for i in 0..5u16 {
            o.take_in(&delivery(2, 1, i, i as u64 * 1000, 10 + i as usize));
        }
        let stream = StreamId::new(SensorId::new(2).unwrap(), StreamIndex::new(1));
        let s = o.stats(stream).unwrap();
        assert_eq!(s.first_seen, SimTime::ZERO);
        assert_eq!(s.last_seen, SimTime::from_secs(4));
        assert_eq!(s.estimated_interval, Some(SimDuration::from_secs(1)));
        assert!((s.mean_payload_len - 12.0).abs() < 1e-9);
    }

    #[test]
    fn stats_absent_for_unknown_stream() {
        let o = Orphanage::new(OrphanageConfig::default());
        assert!(o.stats(StreamId::from_raw(1)).is_none());
    }

    #[test]
    fn single_message_has_no_interval_estimate() {
        let mut o = Orphanage::new(OrphanageConfig::default());
        o.take_in(&delivery(1, 0, 0, 0, 4));
        let stream = StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0));
        assert_eq!(o.stats(stream).unwrap().estimated_interval, None);
    }

    #[test]
    fn stream_cap_evicts_stalest() {
        let mut o = Orphanage::new(OrphanageConfig { retain_per_stream: 4, max_streams: 2 });
        o.take_in(&delivery(1, 0, 0, 0, 4)); // stalest
        o.take_in(&delivery(2, 0, 0, 10, 4));
        o.take_in(&delivery(3, 0, 0, 20, 4)); // triggers eviction of sensor 1
        assert_eq!(o.stream_count(), 2);
        assert_eq!(o.total_evicted(), 1);
        let remaining = o.unclaimed_streams();
        let sensors: Vec<u32> = remaining.iter().map(|s| s.sensor().as_u32()).collect();
        assert_eq!(sensors, vec![2, 3]);
    }

    #[test]
    fn unclaimed_streams_sorted() {
        let mut o = Orphanage::new(OrphanageConfig::default());
        o.take_in(&delivery(9, 1, 0, 0, 1));
        o.take_in(&delivery(2, 0, 0, 0, 1));
        o.take_in(&delivery(9, 0, 0, 0, 1));
        let raws: Vec<u32> = o.unclaimed_streams().iter().map(|s| s.to_raw()).collect();
        let mut sorted = raws.clone();
        sorted.sort_unstable();
        assert_eq!(raws, sorted);
        assert_eq!(o.total_taken(), 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use garnet_wire::{SensorId, SequenceNumber, StreamIndex};
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn retention_bounds_always_hold(
            events in proptest::collection::vec((0u32..40, 0u8..3, any::<u16>()), 0..400),
            retain in 1usize..16,
            max_streams in 1usize..12,
        ) {
            let mut o = Orphanage::new(OrphanageConfig {
                retain_per_stream: retain,
                max_streams,
            });
            let mut at = 0u64;
            for (sensor, idx, seq) in events {
                at += 1;
                let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(idx));
                let msg = garnet_wire::DataMessage::builder(stream)
                    .seq(SequenceNumber::new(seq))
                    .build()
                    .unwrap();
                o.take_in(&Delivery {
                    msg,
                    first_received_at: SimTime::from_millis(at),
                    delivered_at: SimTime::from_millis(at),
                });
                // Invariants after every insertion:
                prop_assert!(o.stream_count() <= max_streams);
                for s in o.unclaimed_streams() {
                    let stats = o.stats(s).unwrap();
                    prop_assert!(stats.retained <= retain);
                    prop_assert!(stats.retained as u64 <= stats.messages_seen);
                }
            }
            // Claims drain completely.
            for s in o.unclaimed_streams() {
                let backlog = o.claim(s);
                prop_assert!(backlog.len() <= retain);
            }
            prop_assert_eq!(o.stream_count(), 0);
        }
    }
}
