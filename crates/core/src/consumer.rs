//! The consumer-process framework.
//!
//! Consumers are the applications Garnet exists for: "mutually unaware"
//! processes that subscribe to streams, may "generate further derived
//! data streams by performing additional processing on received data"
//! (multi-level consumption, §4.2), may attempt to influence sensors
//! through the actuation path, and — if trusted — report state changes
//! to the Super Coordinator.
//!
//! A consumer implements [`Consumer`]; everything it wants to *do* goes
//! through the [`ConsumerCtx`] handed to each callback, so the framework
//! (not the consumer) enforces authorisation, mediation and loop limits.

use garnet_radio::geometry::Point;
use garnet_simkit::SimTime;
use garnet_wire::{ActuationTarget, SensorCommand, SensorId, StreamIndex};

use crate::coordinator::ConsumerStateId;
use crate::filtering::Delivery;

/// An action a consumer asked the middleware to perform.
#[derive(Clone, Debug, PartialEq)]
pub enum ConsumerAction {
    /// Publish a message on one of the consumer's derived streams.
    PublishDerived {
        /// Which derived stream (index within the consumer's virtual
        /// sensor).
        index: StreamIndex,
        /// The payload.
        payload: Vec<u8>,
    },
    /// Request a change to sensor behaviour (goes through the Resource
    /// Manager).
    RequestActuation {
        /// Where.
        target: ActuationTarget,
        /// What.
        command: SensorCommand,
    },
    /// Report a state change to the Super Coordinator.
    ReportState(ConsumerStateId),
    /// Supply a location hint for a sensor.
    LocationHint {
        /// The sensor.
        sensor: SensorId,
        /// Where the consumer believes it is.
        position: Point,
        /// Hint weight (see `LocationService::hint`).
        confidence: f64,
    },
}

/// The capability surface consumers act through.
///
/// # Example
///
/// ```
/// use garnet_core::consumer::{Consumer, ConsumerCtx};
/// use garnet_core::filtering::Delivery;
/// use garnet_wire::StreamIndex;
///
/// /// Re-publishes every payload on derived stream 0 (a multi-level
/// /// consumer in miniature).
/// struct Echo;
/// impl Consumer for Echo {
///     fn name(&self) -> &str { "echo" }
///     fn on_data(&mut self, d: &Delivery, ctx: &mut ConsumerCtx) {
///         ctx.publish_derived(StreamIndex::new(0), d.msg.payload().to_vec());
///     }
/// }
/// ```
#[derive(Debug)]
pub struct ConsumerCtx {
    now: SimTime,
    actions: Vec<ConsumerAction>,
}

impl ConsumerCtx {
    /// Creates a context for one callback invocation (middleware
    /// internal; exposed for testing custom consumers).
    pub fn new(now: SimTime) -> Self {
        ConsumerCtx { now, actions: Vec::new() }
    }

    /// The current middleware time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Publishes a message on the consumer's derived stream `index`.
    pub fn publish_derived(&mut self, index: StreamIndex, payload: Vec<u8>) {
        self.actions.push(ConsumerAction::PublishDerived { index, payload });
    }

    /// Asks the middleware to change sensor behaviour.
    pub fn request_actuation(&mut self, target: ActuationTarget, command: SensorCommand) {
        self.actions.push(ConsumerAction::RequestActuation { target, command });
    }

    /// Reports a state change to the Super Coordinator.
    pub fn report_state(&mut self, state: ConsumerStateId) {
        self.actions.push(ConsumerAction::ReportState(state));
    }

    /// Supplies a location hint.
    pub fn location_hint(&mut self, sensor: SensorId, position: Point, confidence: f64) {
        self.actions.push(ConsumerAction::LocationHint { sensor, position, confidence });
    }

    /// Drains the collected actions (middleware internal).
    pub fn take_actions(&mut self) -> Vec<ConsumerAction> {
        std::mem::take(&mut self.actions)
    }
}

/// A consumer process.
///
/// Implementations should be cheap per message; heavy analysis belongs in
/// derived-stream consumers further up the hierarchy (§4.2's multi-level
/// model).
pub trait Consumer {
    /// Stable display name (used in diagnostics and the service
    /// registry).
    fn name(&self) -> &str;

    /// Called for every delivered message the consumer subscribed to.
    fn on_data(&mut self, delivery: &Delivery, ctx: &mut ConsumerCtx);
}

/// A trivial consumer that counts deliveries — useful as the terminal
/// stage of pipelines in tests, benches and examples.
#[derive(Debug, Default)]
pub struct CountingConsumer {
    name: String,
    count: u64,
    last_seen: Option<SimTime>,
}

impl CountingConsumer {
    /// Creates a counting consumer.
    pub fn new(name: impl Into<String>) -> Self {
        CountingConsumer { name: name.into(), count: 0, last_seen: None }
    }

    /// Deliveries received.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Time of the most recent delivery.
    pub fn last_seen(&self) -> Option<SimTime> {
        self.last_seen
    }
}

impl Consumer for CountingConsumer {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_data(&mut self, delivery: &Delivery, _ctx: &mut ConsumerCtx) {
        self.count += 1;
        self.last_seen = Some(delivery.delivered_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garnet_wire::{DataMessage, StreamId};

    fn delivery() -> Delivery {
        Delivery {
            msg: DataMessage::builder(StreamId::from_raw(0x0100)).build().unwrap(),
            first_received_at: SimTime::from_millis(1),
            delivered_at: SimTime::from_millis(2),
        }
    }

    #[test]
    fn ctx_collects_actions_in_order() {
        let mut ctx = ConsumerCtx::new(SimTime::from_secs(1));
        assert_eq!(ctx.now(), SimTime::from_secs(1));
        ctx.publish_derived(StreamIndex::new(0), vec![1]);
        ctx.report_state(7);
        ctx.request_actuation(
            ActuationTarget::Sensor(SensorId::new(1).unwrap()),
            SensorCommand::Ping,
        );
        ctx.location_hint(SensorId::new(2).unwrap(), Point::new(1.0, 2.0), 0.5);
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 4);
        assert!(matches!(actions[0], ConsumerAction::PublishDerived { .. }));
        assert!(matches!(actions[1], ConsumerAction::ReportState(7)));
        assert!(matches!(actions[2], ConsumerAction::RequestActuation { .. }));
        assert!(matches!(actions[3], ConsumerAction::LocationHint { .. }));
        assert!(ctx.take_actions().is_empty(), "drained");
    }

    #[test]
    fn counting_consumer_counts() {
        let mut c = CountingConsumer::new("test");
        assert_eq!(c.name(), "test");
        assert_eq!(c.count(), 0);
        let mut ctx = ConsumerCtx::new(SimTime::ZERO);
        c.on_data(&delivery(), &mut ctx);
        c.on_data(&delivery(), &mut ctx);
        assert_eq!(c.count(), 2);
        assert_eq!(c.last_seen(), Some(SimTime::from_millis(2)));
        assert!(ctx.take_actions().is_empty());
    }
}
