//! Glue between the service graph and the `garnet-simkit` flight
//! recorder: event→record mapping and the per-root trace buffers the
//! threaded driver merges back into canonical order.
//!
//! Everything here is feature-gated: with `trace` off the module
//! exports only the zero-sized [`RootTag`] alias, and every call site
//! in the routers is behind `#[cfg(feature = "trace")]` (or goes
//! through the no-op `Tracer`), so the hot path pays nothing.
//!
//! The canonical record order for one boundary event (the order the
//! single-threaded FIFO `Router` produces when that event is pumped to
//! quiescence, and the order [`RootTrace::emit`] reconstructs for the
//! threaded driver) is:
//!
//! 1. the boundary hop itself (`Frame` / `FlushReorder` / a tick's
//!    first control event),
//! 2. ingest-origin control hops (`Observed`, `AckReceived`) in
//!    emission order,
//! 3. `Filtered` dispatch hops in delivery order,
//! 4. dispatch-origin control hops (`Orphaned`) and the rest of the
//!    control cascade in FIFO order.
//!
//! This holds because no pre-dispatch control event ever cascades
//! (location, orphanage and ack handlers emit nothing), which is the
//! same property that makes the threaded `ControlGraph` worker
//! bit-identical to the single-threaded router.

/// The root-sequence tag carried by every queued event in the
/// single-threaded `Router` so trace records can attribute hops to the
/// boundary event they descend from. A real sequence number only when
/// tracing is compiled in; a zero-sized unit otherwise, so the queue
/// layout (and the hot path) is unchanged.
#[cfg(feature = "trace")]
pub(crate) type RootTag = u64;

/// Zero-sized twin of the root tag (the `trace` feature is off).
#[cfg(not(feature = "trace"))]
pub(crate) type RootTag = ();

#[cfg(feature = "trace")]
pub(crate) use imp::{event_record, RootTrace};

#[cfg(feature = "trace")]
mod imp {
    use std::collections::VecDeque;

    use garnet_simkit::trace::{TraceEventKind, TraceOutcome, TraceRecord, TraceStage, Tracer};
    use garnet_simkit::SimTime;
    use garnet_wire::{peek_stream, ActuationTarget};

    use crate::filtering::Delivery;
    use crate::service::ServiceEvent;

    fn target_ids(target: &ActuationTarget) -> (Option<u32>, Option<u32>) {
        match target {
            ActuationTarget::Sensor(s) => (None, Some(s.as_u32())),
            ActuationTarget::Stream(st) => (Some(st.to_raw()), Some(st.sensor().as_u32())),
            ActuationTarget::Area(_) => (None, None),
        }
    }

    fn delivery_record(
        stage: TraceStage,
        kind: TraceEventKind,
        delivery: &Delivery,
        now: SimTime,
    ) -> TraceRecord {
        TraceRecord {
            stream: Some(delivery.msg.stream().to_raw()),
            sensor: Some(delivery.msg.stream().sensor().as_u32()),
            age_us: now.saturating_since(delivery.first_received_at).as_micros(),
            ..TraceRecord::new(now.as_micros(), stage, kind, TraceOutcome::Delivered)
        }
    }

    /// The canonical record for one event hop. Pure on the event, so a
    /// single-threaded pop and a threaded worker produce the same bytes
    /// for the same event at the same simulated time.
    pub(crate) fn event_record(ev: &ServiceEvent, now: SimTime, root: Option<u64>) -> TraceRecord {
        use ServiceEvent::*;
        let at = now.as_micros();
        let base = |stage, kind| TraceRecord::new(at, stage, kind, TraceOutcome::Delivered);
        let mut rec = match ev {
            Frame { frame, .. } => {
                let stream = peek_stream(frame);
                TraceRecord {
                    stream: stream.map(|s| s.to_raw()),
                    sensor: stream.map(|s| s.sensor().as_u32()),
                    ..base(TraceStage::Filtering, TraceEventKind::Frame)
                }
            }
            // Batches never reach the queue on the hot path (admission
            // splits them into per-frame entries so each hop gets its
            // own record); an externally enqueued batch is attributed
            // to its first frame's stream.
            FrameBatch(frames) => {
                let stream = frames.first().and_then(|f| peek_stream(&f.frame));
                TraceRecord {
                    stream: stream.map(|s| s.to_raw()),
                    sensor: stream.map(|s| s.sensor().as_u32()),
                    ..base(TraceStage::Filtering, TraceEventKind::Frame)
                }
            }
            FlushReorder => base(TraceStage::Filtering, TraceEventKind::FlushReorder),
            Filtered { delivery, .. } => {
                delivery_record(TraceStage::Dispatch, TraceEventKind::Filtered, delivery, now)
            }
            Orphaned(delivery) => {
                delivery_record(TraceStage::Orphanage, TraceEventKind::Orphaned, delivery, now)
            }
            Observed(obs) => TraceRecord {
                sensor: Some(obs.sensor.as_u32()),
                ..base(TraceStage::Control, TraceEventKind::Observed)
            },
            Hint { sensor, .. } => TraceRecord {
                sensor: Some(sensor.as_u32()),
                ..base(TraceStage::Control, TraceEventKind::Hint)
            },
            AckReceived { .. } => base(TraceStage::Actuation, TraceEventKind::AckReceived),
            ActuationRequested { target, .. } => {
                let (stream, sensor) = target_ids(target);
                TraceRecord {
                    stream,
                    sensor,
                    ..base(TraceStage::Control, TraceEventKind::ActuationRequested)
                }
            }
            Submit { target, .. } => {
                let (stream, sensor) = target_ids(target);
                TraceRecord {
                    stream,
                    sensor,
                    ..base(TraceStage::Actuation, TraceEventKind::Submit)
                }
            }
            Replicate { request, .. } => {
                let (stream, sensor) = target_ids(&request.target);
                TraceRecord {
                    stream,
                    sensor,
                    ..base(TraceStage::Control, TraceEventKind::Replicate)
                }
            }
            ActuationTick => base(TraceStage::Actuation, TraceEventKind::ActuationTick),
            StateReported { .. } => base(TraceStage::Control, TraceEventKind::StateReported),
        };
        rec.root = root;
        rec
    }

    /// One root's trace, buffered while its work is spread across the
    /// threaded driver's edges and emitted in canonical order when the
    /// root is released (so a threaded trace is comparable to the
    /// single-threaded one, modulo shard ids).
    #[derive(Debug, Default)]
    pub(crate) struct RootTrace {
        /// The boundary hop (frame or flush), recorded at entry.
        pre: Vec<TraceRecord>,
        /// Dispatch hops submitted but not yet completed by the B edge.
        dispatch_pending: VecDeque<TraceRecord>,
        /// Dispatch hops in completion order (== submission order per
        /// root).
        dispatch: Vec<TraceRecord>,
        /// The control worker's records, in its FIFO order.
        control: Vec<TraceRecord>,
        /// How many control events were queued before dispatch ran
        /// (the split point for canonical-order reconstruction).
        pre_c: usize,
    }

    impl RootTrace {
        /// Records the boundary hop itself.
        pub(crate) fn push_pre(&mut self, rec: TraceRecord) {
            self.pre.push(rec);
        }

        /// Marks the boundary hop lost to a worker failure.
        pub(crate) fn fail_pre(&mut self) {
            if let Some(rec) = self.pre.last_mut() {
                rec.outcome = TraceOutcome::Failed;
            }
        }

        /// Fixes the pre-dispatch control-event count once the root's
        /// filtering work has fully landed.
        pub(crate) fn set_pre_c(&mut self, n: usize) {
            self.pre_c = n;
        }

        /// Records a dispatch hop at B-submission time; completion (or
        /// failure) stamps its outcome in arrival order.
        pub(crate) fn push_dispatch(&mut self, rec: TraceRecord) {
            self.dispatch_pending.push_back(rec);
        }

        /// One dispatch job landed (`ok`) or was lost to a worker
        /// failure. `rebuilt` marks that the dispatch shard's match
        /// cache (re)built the hop's match set, which appends a
        /// `CacheRebuild` record right after the `Filtered` one — the
        /// same adjacency the single-threaded router produces.
        pub(crate) fn complete_dispatch(&mut self, ok: bool, rebuilt: bool) {
            if let Some(mut rec) = self.dispatch_pending.pop_front() {
                if !ok {
                    rec.outcome = TraceOutcome::Failed;
                }
                self.dispatch.push(rec);
                if ok && rebuilt {
                    self.dispatch.push(TraceRecord { kind: TraceEventKind::CacheRebuild, ..rec });
                }
            }
        }

        /// Adopts the control worker's records for this root.
        pub(crate) fn set_control(&mut self, recs: Vec<TraceRecord>) {
            self.control = recs;
        }

        /// Emits the root's records in canonical order (module docs),
        /// stamping every record with the root sequence number and
        /// feeding per-stage occupancy with the driver's in-flight root
        /// count (timing-dependent; excluded from determinism claims).
        pub(crate) fn emit(mut self, root: u64, in_flight: u64, tracer: &mut Tracer) {
            // Jobs that never completed (shouldn't happen: failures
            // complete them) still surface rather than vanish.
            while let Some(mut rec) = self.dispatch_pending.pop_front() {
                rec.outcome = TraceOutcome::Failed;
                self.dispatch.push(rec);
            }
            let split = self.pre_c.min(self.control.len());
            let post = self.control.split_off(split);
            for mut rec in self.pre.into_iter().chain(self.control).chain(self.dispatch).chain(post)
            {
                rec.root = Some(root);
                tracer.note_occupancy(rec.stage, in_flight);
                tracer.record(|| rec);
            }
        }
    }
}
