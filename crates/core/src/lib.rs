//! Garnet: data-stream-centric middleware for wireless sensor networks.
//!
//! This crate is the paper's primary contribution — the middleware layer
//! of Figure 1. Data flows up from the receiver array through the
//! [`filtering`] service (duplicate elimination and stream
//! reconstruction) to the [`dispatching`] service, which delivers it to
//! mutually-unaware consumer processes; unclaimed data lands in the
//! [`orphanage`]. Control flows back down: consumer actuation requests
//! are vetted by the [`resource`] manager against per-sensor
//! [`constraints`], stamped by the [`actuation`] service, and targeted by
//! the [`replicator`] using positions inferred by the [`location`]
//! service. The [`coordinator`] (Super Coordinator) watches consumer
//! state changes and can *anticipate* needs, invoking resource-manager
//! policy ahead of demand.
//!
//! All services are sans-io state machines implementing the
//! [`service::GarnetService`] trait; the [`router::Router`] threads
//! typed events between them over a FIFO queue, and
//! [`middleware::Garnet`] is a thin facade that drives a pluggable
//! execution engine (the [`driver::RouterDriver`] axis: the FIFO
//! router, or the threaded graph, selected by
//! [`driver::DriverKind`]) and hosts the consumers. The filtering hot
//! path is partitioned by
//! sensor id into [`router::ShardedIngest`] shards, and the dispatch
//! stage into [`router::ShardedDispatch`] shards by the same hash, each
//! with a deterministic merge — so any shard count produces
//! bit-identical outputs under the simulation driver, while
//! [`router::ThreadedIngest`] runs the ingest shards on real threads
//! and [`router::ThreadedRouter`] runs the *entire* service graph
//! (filtering → dispatch → control) on per-stage workers with
//! sequence-merged, equally deterministic output.
//! [`pipeline::PipelineSim`] closes the loop with the simulated radio
//! field for experiments.
//!
//! # Quickstart
//!
//! ```
//! use garnet_core::middleware::{Garnet, GarnetConfig};
//! use garnet_core::consumer::{Consumer, ConsumerCtx};
//! use garnet_core::filtering::Delivery;
//! use garnet_net::TopicFilter;
//! use garnet_wire::SensorId;
//!
//! struct Printer(u64);
//! impl Consumer for Printer {
//!     fn name(&self) -> &str { "printer" }
//!     fn on_data(&mut self, _d: &Delivery, _ctx: &mut ConsumerCtx) { self.0 += 1; }
//! }
//!
//! let mut garnet = Garnet::new(GarnetConfig::default());
//! let token = garnet.issue_default_token("printer");
//! let id = garnet.register_consumer(Box::new(Printer(0)), &token, 0).unwrap();
//! garnet.subscribe(id, TopicFilter::Sensor(SensorId::new(1).unwrap()), &token).unwrap();
//! ```

pub mod actuation;
pub mod archive;
pub mod constraints;
pub mod consumer;
pub mod coordinator;
pub mod dispatching;
pub mod driver;
pub mod filtering;
pub mod location;
pub mod middleware;
pub mod orphanage;
pub mod pipeline;
pub mod qos;
pub mod replicator;
pub mod resource;
pub mod router;
pub mod service;
pub mod stream;
pub mod telemetry;
mod trace;

pub use archive::{store_slot, ArchiveBackend, ArchiveConfig, ArchiveLedger, StoreSlot};
pub use consumer::{Consumer, ConsumerCtx};
pub use driver::{
    DispatchStats, DriverKind, FifoDriver, FilterStats, RouterDriver, ThreadedDriver,
};
pub use filtering::{Delivery, FilterConfig, FilteringService, Observation};
pub use middleware::{Garnet, GarnetConfig, OverloadStats, StepOutput};
pub use pipeline::{PipelineConfig, PipelineSim};
pub use qos::{
    ClassLedger, ClassLedgers, DeliverySchedule, FrameOffer, PriorityClass, QosConfig, QosMode,
    QosScheduler, Release,
};
pub use router::{
    ControlGraph, DispatchStage, FrameAdmission, IngestBatch, IngestReport, OverloadConfig,
    OverloadPolicy, OverloadTotals, RootOutput, Router, Services, ShardedDispatch, ShardedIngest,
    ThreadedIngest, ThreadedRouter, ThreadedRouterParts, ThreadedRouterReport,
};
pub use service::{GarnetService, ServiceEvent, ServiceOutput};
pub use telemetry::{
    HealthReport, HealthState, HealthThresholds, PipelineSpans, QueueDepthGauges, TelemetryConfig,
    TelemetrySnapshot,
};
