//! The sans-io service protocol: typed events between Figure 1's boxes.
//!
//! Every middleware service is a state machine that consumes
//! [`ServiceEvent`]s and produces [`ServiceOutput`]s — either further
//! events for sibling services ([`ServiceOutput::Emit`]) or effects the
//! facade must carry out (deliver to a consumer, transmit a plan). The
//! [`GarnetService`] trait is the whole contract; no service calls
//! another directly, so the event [`crate::router::Router`] is the only
//! place the paper's arrows exist in code, and any stage can be swapped
//! for a sharded or threaded implementation without the others noticing.
//!
//! The facade (`Garnet`) remains the *driver*: it owns the router, pumps
//! it to quiescence after every external input, runs consumer callbacks
//! when a [`ServiceOutput::Deliver`] surfaces, and interprets
//! [`ServiceOutput::Planned`]/[`ServiceOutput::Denied`] according to the
//! [`ActuationOrigin`] stamped on the chain's first event.

use garnet_net::SubscriberId;
use garnet_radio::geometry::Point;
use garnet_radio::ReceiverId;
use garnet_simkit::SimTime;
use garnet_wire::{
    AckStatus, ActuationTarget, FrameBytes, RequestId, SensorCommand, SensorId, StreamUpdateRequest,
};

use crate::actuation::ActuationService;
use crate::coordinator::{ConsumerStateId, SuperCoordinator};
use crate::filtering::{Delivery, Observation};
use crate::location::{LocationEstimate, LocationService};
use crate::orphanage::Orphanage;
use crate::replicator::{MessageReplicator, ReplicationPlan};
use crate::resource::{Decision, DenyReason, ResourceManager};

/// Reserved subscriber identity for actions the middleware itself
/// originates (Super Coordinator policies, quiescence sweeps).
pub const SYSTEM_SUBSCRIBER: SubscriberId = SubscriberId::new(u32::MAX);

/// Priority used for coordinator-originated actuations.
pub const SYSTEM_PRIORITY: u8 = 200;

/// Who started an actuation chain, and therefore what the facade does
/// with its terminal [`ServiceOutput::Planned`]/[`ServiceOutput::Denied`]:
/// return it to an API caller, transmit it, count a denial, or mark a
/// stream quiesced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActuationOrigin {
    /// `Garnet::request_actuation` — the outcome is returned to the
    /// caller, not queued for transmission.
    Api,
    /// A consumer's `ConsumerCtx::request_actuation` during delivery —
    /// grants transmit, denials count against the consumer.
    Consumer,
    /// A Super Coordinator policy action — grants transmit, denials
    /// count as denied actions.
    Coordinator,
    /// The demand-driven quiescence sweep slowing an idle stream.
    Quiesce,
    /// Restoring a quiesced stream on new demand.
    Restore,
    /// An actuation-service retransmission (no adjudication step).
    Retry,
}

/// An event routed between services.
#[derive(Clone, Debug)]
pub enum ServiceEvent {
    /// A raw frame heard by the receiver array → ingest (filtering).
    Frame {
        /// The receiver that heard it.
        receiver: ReceiverId,
        /// Received signal strength (dBm).
        rssi_dbm: f64,
        /// The encoded frame bytes — a shared view of the arrival
        /// buffer; cloning this event never copies the frame.
        frame: FrameBytes,
    },
    /// A burst of raw frames admitted as one unit → ingest (filtering).
    ///
    /// Semantically identical to the member frames arriving as
    /// consecutive [`ServiceEvent::Frame`] events in order; the batch
    /// form exists so the routers can amortise queueing, header
    /// validation and shard hand-off over the burst. The preferred
    /// ingest entry (`Garnet::on_frames`) produces these.
    FrameBatch(Vec<BatchedFrame>),
    /// Flush reorder buffers whose deadline passed → ingest.
    FlushReorder,
    /// A reconstructed message leaving the ingest stage → dispatch.
    Filtered {
        /// The deduplicated message.
        delivery: Delivery,
        /// Derived-stream depth (0 = straight off the air).
        depth: u32,
    },
    /// A message that matched no subscription → orphanage.
    Orphaned(Delivery),
    /// A location-relevant sighting → location service.
    Observed(Observation),
    /// A consumer-supplied position hint → location service.
    Hint {
        /// The sensor.
        sensor: SensorId,
        /// Claimed position.
        position: Point,
        /// Hint weight.
        confidence: f64,
    },
    /// A stream-update acknowledgement (piggy-backed or standalone) →
    /// actuation service.
    AckReceived {
        /// Correlates with the submitted request.
        request_id: RequestId,
        /// How the sensor responded.
        status: AckStatus,
    },
    /// An actuation request entering adjudication → resource manager.
    ActuationRequested {
        /// Which chain this is (determines effect interpretation).
        origin: ActuationOrigin,
        /// On whose behalf.
        requester: SubscriberId,
        /// Mediation priority.
        priority: u8,
        /// Where.
        target: ActuationTarget,
        /// What.
        command: SensorCommand,
    },
    /// A granted command to stamp and track → actuation service.
    Submit {
        /// The chain.
        origin: ActuationOrigin,
        /// On whose behalf.
        requester: SubscriberId,
        /// Mediation priority.
        priority: u8,
        /// Where.
        target: ActuationTarget,
        /// The *effective* command after mediation.
        command: SensorCommand,
    },
    /// A tracked request to broadcast → replicator. The router enriches
    /// `estimate` with the target sensor's location before delivery (the
    /// location service is a read-dependency of the replicator, made
    /// explicit in the event payload).
    Replicate {
        /// The chain.
        origin: ActuationOrigin,
        /// On whose behalf.
        requester: SubscriberId,
        /// The stamped request.
        request: StreamUpdateRequest,
        /// Target location estimate, filled in by the router.
        estimate: Option<LocationEstimate>,
    },
    /// Retransmit/expire sweep is due → actuation service.
    ActuationTick,
    /// A consumer state change → super coordinator.
    StateReported {
        /// The reporting consumer.
        reporter: SubscriberId,
        /// The state entered.
        state: ConsumerStateId,
    },
}

/// One frame of a [`ServiceEvent::FrameBatch`].
#[derive(Clone, Debug)]
pub struct BatchedFrame {
    /// The receiver that heard it.
    pub receiver: ReceiverId,
    /// Received signal strength (dBm).
    pub rssi_dbm: f64,
    /// The encoded frame bytes (shared view of the arrival buffer).
    pub frame: FrameBytes,
}

/// What a service produced: an event for a sibling, or an effect for
/// the facade.
#[derive(Clone, Debug)]
pub enum ServiceOutput {
    /// Route this event onward (the router re-enqueues it).
    Emit(ServiceEvent),
    /// Run a consumer callback (facade effect: consumers live outside
    /// the service graph).
    Deliver {
        /// The subscriber.
        recipient: SubscriberId,
        /// The message.
        delivery: Delivery,
        /// Derived-stream depth of the message.
        depth: u32,
    },
    /// An actuation chain ended in a broadcast plan.
    Planned {
        /// The chain.
        origin: ActuationOrigin,
        /// On whose behalf it ran.
        requester: SubscriberId,
        /// The plan to transmit.
        plan: ReplicationPlan,
    },
    /// An actuation chain was refused by the resource manager.
    Denied {
        /// The chain.
        origin: ActuationOrigin,
        /// On whose behalf it ran.
        requester: SubscriberId,
        /// Why.
        reason: DenyReason,
    },
    /// A tracked request exhausted its retries.
    Expired(StreamUpdateRequest),
}

/// A sans-io middleware service: consumes events, emits outputs, and
/// optionally asks to be woken at a deadline.
pub trait GarnetService {
    /// Handles one event addressed to this service. Events a service
    /// does not own are ignored (the router never misroutes; this keeps
    /// the contract total).
    fn handle(&mut self, ev: ServiceEvent, now: SimTime) -> Vec<ServiceOutput>;

    /// The earliest instant this service has time-driven work, if any.
    fn next_deadline(&self) -> Option<SimTime> {
        None
    }
}

impl GarnetService for Orphanage {
    fn handle(&mut self, ev: ServiceEvent, _now: SimTime) -> Vec<ServiceOutput> {
        if let ServiceEvent::Orphaned(delivery) = ev {
            self.take_in(&delivery);
        }
        Vec::new()
    }
}

impl GarnetService for LocationService {
    fn handle(&mut self, ev: ServiceEvent, now: SimTime) -> Vec<ServiceOutput> {
        match ev {
            ServiceEvent::Observed(obs) => self.observe(&obs),
            ServiceEvent::Hint { sensor, position, confidence } => {
                self.hint(sensor, position, confidence, now)
            }
            _ => {}
        }
        Vec::new()
    }
}

impl GarnetService for ResourceManager {
    fn handle(&mut self, ev: ServiceEvent, _now: SimTime) -> Vec<ServiceOutput> {
        let ServiceEvent::ActuationRequested { origin, requester, priority, target, command } = ev
        else {
            return Vec::new();
        };
        match self.request(requester, priority, &target, &command) {
            Decision::Granted { effective } => vec![ServiceOutput::Emit(ServiceEvent::Submit {
                origin,
                requester,
                priority,
                target,
                command: effective,
            })],
            Decision::Denied { reason } => {
                vec![ServiceOutput::Denied { origin, requester, reason }]
            }
        }
    }
}

impl GarnetService for ActuationService {
    fn handle(&mut self, ev: ServiceEvent, now: SimTime) -> Vec<ServiceOutput> {
        match ev {
            ServiceEvent::Submit { origin, requester, priority, target, command } => {
                let request = self.submit(target, command, priority, now);
                vec![ServiceOutput::Emit(ServiceEvent::Replicate {
                    origin,
                    requester,
                    request,
                    estimate: None,
                })]
            }
            ServiceEvent::AckReceived { request_id, status } => {
                self.on_ack(request_id, status, now);
                Vec::new()
            }
            ServiceEvent::ActuationTick => {
                let (retransmit, expired) = self.on_tick(now);
                let mut out: Vec<ServiceOutput> = retransmit
                    .into_iter()
                    .map(|request| {
                        ServiceOutput::Emit(ServiceEvent::Replicate {
                            origin: ActuationOrigin::Retry,
                            requester: SYSTEM_SUBSCRIBER,
                            request,
                            estimate: None,
                        })
                    })
                    .collect();
                out.extend(expired.into_iter().map(ServiceOutput::Expired));
                out
            }
            _ => Vec::new(),
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        ActuationService::next_deadline(self)
    }
}

impl GarnetService for MessageReplicator {
    fn handle(&mut self, ev: ServiceEvent, _now: SimTime) -> Vec<ServiceOutput> {
        let ServiceEvent::Replicate { origin, requester, request, estimate } = ev else {
            return Vec::new();
        };
        let plan = self.plan_with_estimate(request, estimate);
        vec![ServiceOutput::Planned { origin, requester, plan }]
    }
}

impl GarnetService for SuperCoordinator {
    fn handle(&mut self, ev: ServiceEvent, now: SimTime) -> Vec<ServiceOutput> {
        let ServiceEvent::StateReported { reporter, state } = ev else {
            return Vec::new();
        };
        self.report_state(reporter.as_u32(), state, now)
            .into_iter()
            .map(|a| {
                ServiceOutput::Emit(ServiceEvent::ActuationRequested {
                    origin: ActuationOrigin::Coordinator,
                    requester: SYSTEM_SUBSCRIBER,
                    priority: a.action.priority.max(SYSTEM_PRIORITY),
                    target: a.action.target,
                    command: a.action.command,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuation::ActuationConfig;
    use crate::resource::MediationPolicy;
    use garnet_wire::{StreamId, StreamIndex};

    fn target() -> ActuationTarget {
        ActuationTarget::Sensor(SensorId::new(7).unwrap())
    }

    fn command() -> SensorCommand {
        SensorCommand::SetReportInterval { stream: StreamIndex::new(0), interval_ms: 500 }
    }

    #[test]
    fn resource_grant_emits_submit() {
        let mut r = ResourceManager::new(MediationPolicy::MergeMax);
        let out = r.handle(
            ServiceEvent::ActuationRequested {
                origin: ActuationOrigin::Api,
                requester: SubscriberId::new(3),
                priority: 10,
                target: target(),
                command: command(),
            },
            SimTime::ZERO,
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(
            &out[0],
            ServiceOutput::Emit(ServiceEvent::Submit { origin: ActuationOrigin::Api, .. })
        ));
    }

    #[test]
    fn actuation_submit_emits_replicate_and_tracks() {
        let mut a = ActuationService::new(ActuationConfig::default());
        let out = a.handle(
            ServiceEvent::Submit {
                origin: ActuationOrigin::Consumer,
                requester: SubscriberId::new(1),
                priority: 5,
                target: target(),
                command: command(),
            },
            SimTime::ZERO,
        );
        assert_eq!(a.in_flight(), 1);
        let ServiceOutput::Emit(ServiceEvent::Replicate { request, estimate, .. }) = &out[0] else {
            panic!("expected replicate: {out:?}");
        };
        assert!(estimate.is_none(), "router fills the estimate at routing time");
        // Ack closes the loop through the same entry point.
        let request_id = request.request_id;
        a.handle(
            ServiceEvent::AckReceived { request_id, status: AckStatus::Applied },
            SimTime::from_millis(3),
        );
        assert_eq!(a.in_flight(), 0);
        assert_eq!(a.acknowledged_count(), 1);
    }

    #[test]
    fn unowned_events_are_ignored() {
        let mut o = Orphanage::new(Default::default());
        assert!(o.handle(ServiceEvent::FlushReorder, SimTime::ZERO).is_empty());
        let mut l = LocationService::new(Default::default(), &[]);
        assert!(l.handle(ServiceEvent::ActuationTick, SimTime::ZERO).is_empty());
    }

    #[test]
    fn orphanage_takes_in_orphaned_deliveries() {
        let mut o = Orphanage::new(Default::default());
        let msg = garnet_wire::DataMessage::builder(StreamId::from_raw(0x0700)).build().unwrap();
        o.handle(
            ServiceEvent::Orphaned(Delivery {
                msg,
                first_received_at: SimTime::ZERO,
                delivered_at: SimTime::ZERO,
            }),
            SimTime::ZERO,
        );
        assert_eq!(o.total_taken(), 1);
    }
}
