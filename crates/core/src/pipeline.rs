//! The closed-loop experiment harness: simulated radio field + Garnet.
//!
//! [`PipelineSim`] drives the whole of Figure 1 on the deterministic
//! event queue: sensors sample their environment and transmit; the
//! medium loses, duplicates and delays frames on the way to the receiver
//! array; every reception enters the middleware; control plans leaving
//! the middleware are broadcast through the chosen transmitters and —
//! propagation permitting — reach receive-capable sensors, closing the
//! actuation loop.
//!
//! Every experiment, integration test and example builds on this
//! harness; it is the "deployment" a downstream user would start from.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use garnet_radio::field::DynField;
use garnet_radio::{Medium, Receiver, SensorNode, Transmitter};
use garnet_simkit::{Histogram, SimRng, SimTime, Simulation};
use garnet_wire::StreamUpdateRequest;
use parking_lot::Mutex;

use crate::consumer::{Consumer, ConsumerCtx};
use crate::filtering::Delivery;
use crate::middleware::{Garnet, GarnetConfig, StepOutput};
use crate::replicator::ReplicationPlan;

/// Pipeline configuration. The receiver/transmitter installation lives
/// in [`GarnetConfig`]; the pipeline reads it from there so the
/// middleware's location service and the physical simulation always
/// agree on the antenna plan.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Seed for all physical-layer randomness.
    pub seed: u64,
    /// The wireless medium model.
    pub medium: Medium,
    /// Middleware configuration (including antennas).
    pub garnet: GarnetConfig,
    /// Sensor-to-sensor overhearing range (m) for §8 multi-hop
    /// relaying. `None` disables the peer path entirely (the default:
    /// single-hop deployments pay nothing for the feature).
    pub peer_range_m: Option<f64>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            seed: 0x6A72_6E74,
            medium: Medium::ideal(garnet_radio::Propagation::UnitDisk { range_m: 150.0 }),
            garnet: GarnetConfig::default(),
            peer_range_m: None,
        }
    }
}

/// Events flowing through the closed loop.
#[derive(Debug)]
enum PipelineEvent {
    /// A sensor may have a transmission due.
    SensorPoll(usize),
    /// A frame arrives at a receiver.
    Reception(garnet_radio::Reception),
    /// A control request reaches a sensor's radio.
    ControlDeliver { sensor: usize, request: StreamUpdateRequest },
    /// A peer sensor's frame reaches a potential relay.
    Overhear { sensor: usize, frame: bytes::Bytes },
    /// Middleware maintenance is due.
    MiddlewareTick,
}

/// The closed-loop simulator.
pub struct PipelineSim {
    sim: Simulation<PipelineEvent>,
    garnet: Garnet,
    sensors: Vec<SensorNode>,
    field: DynField,
    medium: Medium,
    receivers: Vec<Receiver>,
    transmitters: Vec<Transmitter>,
    rng: SimRng,
    tick_scheduled: Option<SimTime>,
    peer_range_m: Option<f64>,
    transmissions: u64,
    receptions: u64,
    control_deliveries: u64,
    relayed_transmissions: u64,
}

impl std::fmt::Debug for PipelineSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineSim")
            .field("now", &self.sim.now())
            .field("sensors", &self.sensors.len())
            .field("transmissions", &self.transmissions)
            .field("receptions", &self.receptions)
            .finish()
    }
}

impl PipelineSim {
    /// Builds the harness over an environmental field.
    pub fn new(config: PipelineConfig, field: DynField) -> PipelineSim {
        let receivers = config.garnet.receivers.clone();
        let transmitters = config.garnet.transmitters.clone();
        PipelineSim {
            sim: Simulation::new(),
            garnet: Garnet::new(config.garnet),
            sensors: Vec::new(),
            field,
            medium: config.medium,
            receivers,
            transmitters,
            rng: SimRng::seed(config.seed),
            tick_scheduled: None,
            peer_range_m: config.peer_range_m,
            transmissions: 0,
            receptions: 0,
            control_deliveries: 0,
            relayed_transmissions: 0,
        }
    }

    /// Deploys a sensor into the field; it begins transmitting on its
    /// own schedule. Returns its index.
    pub fn add_sensor(&mut self, sensor: SensorNode) -> usize {
        let idx = self.sensors.len();
        let due = sensor.next_due();
        self.sensors.push(sensor);
        if let Some(at) = due {
            self.sim.schedule_at(at, PipelineEvent::SensorPoll(idx));
        }
        idx
    }

    /// The middleware, for registration/subscription/actuation calls.
    pub fn garnet_mut(&mut self) -> &mut Garnet {
        &mut self.garnet
    }

    /// The middleware, read-only (statistics).
    pub fn garnet(&self) -> &Garnet {
        &self.garnet
    }

    /// The deployed sensors.
    pub fn sensors(&self) -> &[SensorNode] {
        &self.sensors
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Frames transmitted by sensors.
    pub fn transmission_count(&self) -> u64 {
        self.transmissions
    }

    /// Frame copies that reached some receiver.
    pub fn reception_count(&self) -> u64 {
        self.receptions
    }

    /// Control requests that reached a sensor radio.
    pub fn control_delivery_count(&self) -> u64 {
        self.control_deliveries
    }

    /// Frames re-broadcast by relay-capable sensors.
    pub fn relayed_transmission_count(&self) -> u64 {
        self.relayed_transmissions
    }

    /// Injects an externally produced step output (e.g. from a direct
    /// `garnet_mut()` actuation call) so its control plans actually
    /// transmit.
    pub fn carry_out(&mut self, output: StepOutput) {
        let now = self.sim.now();
        for plan in output.control {
            self.transmit_plan(&plan, now);
        }
        self.ensure_tick();
    }

    /// Broadcasts one replication plan through its chosen transmitters.
    fn transmit_plan(&mut self, plan: &ReplicationPlan, now: SimTime) {
        let positions: Vec<garnet_radio::geometry::Point> =
            self.sensors.iter().map(|s| s.position(now)).collect();
        for tid in &plan.transmitters {
            let Some(tx) = self.transmitters.iter().find(|t| t.id() == *tid) else {
                continue;
            };
            for (idx, arrive_at) in self.medium.downlink(tx, &positions, now, &mut self.rng) {
                self.sim.schedule_at(
                    arrive_at,
                    PipelineEvent::ControlDeliver { sensor: idx, request: plan.request },
                );
            }
        }
    }

    /// Sends one sensor transmission into the air: to the receiver
    /// array, and — when peer overhearing is enabled — to nearby relay
    /// candidates.
    fn propagate_uplink(
        &mut self,
        sender: usize,
        t: &garnet_radio::sensor::Transmission,
        now: SimTime,
    ) {
        let hits = self.medium.uplink(t.origin, &t.frame, &self.receivers, now, &mut self.rng);
        for rec in hits {
            let at = rec.received_at;
            self.sim.schedule_at(at, PipelineEvent::Reception(rec));
        }
        if let Some(range) = self.peer_range_m {
            let positions: Vec<garnet_radio::geometry::Point> =
                self.sensors.iter().map(|s| s.position(now)).collect();
            for (peer, at) in
                self.medium.overhear(t.origin, sender, &positions, range, now, &mut self.rng)
            {
                if self.sensors[peer].caps().relay_capable {
                    self.sim.schedule_at(
                        at,
                        PipelineEvent::Overhear { sensor: peer, frame: t.frame.clone() },
                    );
                }
            }
        }
    }

    fn ensure_tick(&mut self) {
        if let Some(deadline) = self.garnet.next_deadline() {
            let need = match self.tick_scheduled {
                Some(t) => deadline < t,
                None => true,
            };
            if need {
                self.sim.schedule_at(deadline, PipelineEvent::MiddlewareTick);
                self.tick_scheduled = Some(deadline.max(self.sim.now()));
            }
        }
    }

    fn handle(&mut self, now: SimTime, event: PipelineEvent) {
        match event {
            PipelineEvent::SensorPoll(idx) => {
                let Some(due) = self.sensors[idx].next_due() else {
                    return; // disabled or battery-dead
                };
                if due > now {
                    // Stale poll; re-arm at the real due time.
                    self.sim.schedule_at(due, PipelineEvent::SensorPoll(idx));
                    return;
                }
                let txs = self.sensors[idx].poll(now, &self.field);
                for t in txs {
                    self.transmissions += 1;
                    self.propagate_uplink(idx, &t, now);
                }
                if let Some(next) = self.sensors[idx].next_due() {
                    self.sim.schedule_at(next, PipelineEvent::SensorPoll(idx));
                }
            }
            PipelineEvent::Reception(rec) => {
                self.receptions += 1;
                // The reception's frame is already a shared-slice
                // handle; hand it over without copying the payload.
                let out = self.garnet.on_frames(vec![(rec.receiver, rec.rssi_dbm, rec.frame)], now);
                for plan in &out.control {
                    self.transmit_plan(plan, now);
                }
                self.ensure_tick();
            }
            PipelineEvent::ControlDeliver { sensor, request } => {
                self.control_deliveries += 1;
                self.sensors[sensor].handle_request(&request, now);
                if let Some(next) = self.sensors[sensor].next_due() {
                    self.sim.schedule_at(next, PipelineEvent::SensorPoll(sensor));
                }
            }
            PipelineEvent::Overhear { sensor, frame } => {
                if let Some(tx) = self.sensors[sensor].maybe_relay(&frame, now) {
                    self.relayed_transmissions += 1;
                    // Relayed copies go up to the fixed network but are
                    // not re-relayed (maybe_relay rejects RELAYED frames,
                    // so skipping the peer path here just saves events).
                    let hits = self.medium.uplink(
                        tx.origin,
                        &tx.frame,
                        &self.receivers,
                        now,
                        &mut self.rng,
                    );
                    for rec in hits {
                        let at = rec.received_at;
                        self.sim.schedule_at(at, PipelineEvent::Reception(rec));
                    }
                }
            }
            PipelineEvent::MiddlewareTick => {
                self.tick_scheduled = None;
                let out = self.garnet.on_tick(now);
                for plan in &out.control {
                    self.transmit_plan(plan, now);
                }
                self.ensure_tick();
            }
        }
    }

    /// Runs the closed loop until `deadline` (inclusive).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.sim.peek_time() {
            if t > deadline {
                break;
            }
            let (now, ev) = self.sim.next_event().expect("peeked event exists");
            self.handle(now, ev);
        }
    }
}

/// A consumer that measures end-to-end latency (sensing instant →
/// middleware delivery) for plaintext [`garnet_radio::Reading`]
/// payloads. Results are read through the shared histogram handle.
#[derive(Debug)]
pub struct LatencyProbe {
    name: String,
    hist: Arc<Mutex<Histogram>>,
}

impl LatencyProbe {
    /// Creates a probe and the handle its results are read through.
    pub fn new(name: impl Into<String>) -> (LatencyProbe, Arc<Mutex<Histogram>>) {
        let hist = Arc::new(Mutex::new(Histogram::new()));
        (LatencyProbe { name: name.into(), hist: Arc::clone(&hist) }, hist)
    }
}

impl Consumer for LatencyProbe {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_data(&mut self, delivery: &Delivery, _ctx: &mut ConsumerCtx) {
        if let Some(reading) = garnet_radio::Reading::decode(delivery.msg.payload()) {
            let latency = delivery.delivered_at.saturating_since(reading.sensed_at()).as_micros();
            self.hist.lock().record(latency);
        }
    }
}

/// A consumer that counts deliveries into a shared atomic — readable
/// from outside the middleware without downcasting.
#[derive(Debug)]
pub struct SharedCountConsumer {
    name: String,
    count: Arc<AtomicU64>,
}

impl SharedCountConsumer {
    /// Creates a counting consumer and its shared counter handle.
    pub fn new(name: impl Into<String>) -> (SharedCountConsumer, Arc<AtomicU64>) {
        let count = Arc::new(AtomicU64::new(0));
        (SharedCountConsumer { name: name.into(), count: Arc::clone(&count) }, count)
    }
}

impl Consumer for SharedCountConsumer {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_data(&mut self, _delivery: &Delivery, _ctx: &mut ConsumerCtx) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garnet_net::TopicFilter;
    use garnet_radio::field::Uniform;
    use garnet_radio::geometry::Point;
    use garnet_radio::{Propagation, SensorCaps, StreamConfig};
    use garnet_simkit::SimDuration;
    use garnet_wire::{ActuationTarget, SensorCommand, SensorId, StreamIndex};

    fn config() -> PipelineConfig {
        let receivers = Receiver::grid(Point::ORIGIN, 2, 2, 100.0, 150.0);
        let transmitters = Transmitter::grid(Point::ORIGIN, 2, 2, 100.0, 150.0);
        PipelineConfig {
            seed: 7,
            medium: Medium::ideal(Propagation::UnitDisk { range_m: 150.0 }),
            garnet: GarnetConfig { receivers, transmitters, ..GarnetConfig::default() },
            peer_range_m: None,
        }
    }

    fn sensor(id: u32, pos: Point) -> SensorNode {
        SensorNode::new(SensorId::new(id).unwrap(), pos)
            .with_stream(StreamIndex::new(0), StreamConfig::every(SimDuration::from_secs(1)))
    }

    #[test]
    fn sensor_data_reaches_consumer_end_to_end() {
        let mut sim = PipelineSim::new(config(), Box::new(Uniform(20.0)));
        sim.add_sensor(sensor(1, Point::new(50.0, 50.0)));
        let token = sim.garnet_mut().issue_default_token("t");
        let (probe, hist) = LatencyProbe::new("probe");
        let id = sim.garnet_mut().register_consumer(Box::new(probe), &token, 0).unwrap();
        sim.garnet_mut()
            .subscribe(id, TopicFilter::Sensor(SensorId::new(1).unwrap()), &token)
            .unwrap();

        sim.run_until(SimTime::from_secs(10));
        let h = hist.lock();
        assert!(h.count() >= 9, "delivered {} messages", h.count());
        // Latency = medium base latency (500µs) since reordering never kicks in.
        assert!(h.p50() >= 500, "p50={}", h.p50());
        assert!(h.max() < 100_000, "max={}", h.max());
    }

    #[test]
    fn overlapping_receivers_duplicate_and_filter_removes() {
        let mut sim = PipelineSim::new(config(), Box::new(Uniform(0.0)));
        // At (50,50) all four grid receivers (range 150) hear everything.
        sim.add_sensor(sensor(1, Point::new(50.0, 50.0)));
        sim.run_until(SimTime::from_secs(5));
        // Drain in-flight receptions of the final transmission without
        // triggering another sensor poll (next poll is at t=6s).
        sim.run_until(SimTime::from_millis(5_100));
        assert!(sim.reception_count() > sim.transmission_count(), "duplication happened");
        assert_eq!(
            sim.garnet().filtering().delivered_count() + sim.garnet().filtering().duplicate_count(),
            sim.reception_count()
        );
        assert_eq!(sim.garnet().filtering().delivered_count(), sim.transmission_count());
    }

    #[test]
    fn actuation_round_trip_changes_sensor_rate() {
        let mut sim = PipelineSim::new(config(), Box::new(Uniform(0.0)));
        let s = sensor(1, Point::new(50.0, 50.0)).with_caps(SensorCaps::sophisticated());
        sim.add_sensor(s);
        let token = sim.garnet_mut().issue_default_token("t");
        let (counter, count) = SharedCountConsumer::new("c");
        let id = sim.garnet_mut().register_consumer(Box::new(counter), &token, 0).unwrap();
        sim.garnet_mut()
            .subscribe(id, TopicFilter::Sensor(SensorId::new(1).unwrap()), &token)
            .unwrap();

        // Let it run at 1 Hz for 5s, then ask for 4 Hz.
        sim.run_until(SimTime::from_secs(5));
        let baseline = count.load(Ordering::Relaxed);
        let now = sim.now();
        let outcome = sim
            .garnet_mut()
            .request_actuation(
                id,
                &token,
                ActuationTarget::Sensor(SensorId::new(1).unwrap()),
                SensorCommand::SetReportInterval { stream: StreamIndex::new(0), interval_ms: 250 },
                now,
            )
            .unwrap();
        let plan = match outcome {
            crate::middleware::ActuationOutcome::Granted { plan, .. } => plan,
            other => panic!("expected grant: {other:?}"),
        };
        sim.carry_out(StepOutput { control: vec![plan], ..StepOutput::default() });
        sim.run_until(SimTime::from_secs(15));
        let after = count.load(Ordering::Relaxed) - baseline;
        assert!(after >= 30, "rate change should ~4x deliveries in 10s, got {after}");
        // The ack made it back (piggy-backed on a data message).
        assert_eq!(sim.garnet().actuation().acknowledged_count(), 1);
        assert!(sim.control_delivery_count() >= 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed: u64| {
            let mut cfg = config();
            cfg.seed = seed;
            cfg.medium = Medium::wifi_outdoor();
            let mut sim = PipelineSim::new(cfg, Box::new(Uniform(1.0)));
            for i in 0..5 {
                sim.add_sensor(sensor(i + 1, Point::new(20.0 * i as f64, 30.0)));
            }
            sim.run_until(SimTime::from_secs(20));
            (
                sim.transmission_count(),
                sim.reception_count(),
                sim.garnet().filtering().delivered_count(),
                sim.garnet().filtering().duplicate_count(),
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn relay_extends_coverage_to_out_of_range_sensor() {
        use garnet_radio::SensorCaps;
        // One receiver at the origin with 100 m range; the source sensor
        // sits at 180 m (unreachable); a relay sits at 90 m, within
        // overhearing range (120 m) of the source and within receiver
        // range itself.
        let receivers = vec![Receiver::new(garnet_radio::ReceiverId::new(0), Point::ORIGIN, 100.0)];
        let run = |peer_range: Option<f64>| {
            let cfg = PipelineConfig {
                seed: 3,
                medium: Medium::ideal(Propagation::UnitDisk { range_m: 400.0 }),
                garnet: GarnetConfig { receivers: receivers.clone(), ..GarnetConfig::default() },
                peer_range_m: peer_range,
            };
            let mut sim = PipelineSim::new(cfg, Box::new(Uniform(5.0)));
            sim.add_sensor(sensor(1, Point::new(180.0, 0.0)));
            sim.add_sensor(
                SensorNode::new(SensorId::new(2).unwrap(), Point::new(90.0, 0.0))
                    .with_caps(SensorCaps::relay()),
            );
            sim.run_until(SimTime::from_secs(20));
            (sim.garnet().filtering().delivered_count(), sim.relayed_transmission_count())
        };

        let (without, relayed_off) = run(None);
        assert_eq!(without, 0, "source is out of receiver range");
        assert_eq!(relayed_off, 0);

        let (with, relayed_on) = run(Some(120.0));
        assert!(with >= 19, "relay carries the stream in: delivered={with}");
        assert!(relayed_on >= 19);
    }

    #[test]
    fn relayed_deliveries_carry_multihop_tags_and_dedup_against_direct() {
        use garnet_radio::SensorCaps;
        use garnet_wire::HeaderFlags;
        // Source *in* range AND near a relay: the middleware hears both
        // the direct copy and the relayed copy; exactly one is delivered.
        let receivers = vec![Receiver::new(garnet_radio::ReceiverId::new(0), Point::ORIGIN, 200.0)];
        let cfg = PipelineConfig {
            seed: 4,
            medium: Medium::ideal(Propagation::UnitDisk { range_m: 400.0 }),
            garnet: GarnetConfig { receivers, ..GarnetConfig::default() },
            peer_range_m: Some(120.0),
        };
        let mut sim = PipelineSim::new(cfg, Box::new(Uniform(5.0)));
        sim.add_sensor(sensor(1, Point::new(100.0, 0.0)));
        sim.add_sensor(
            SensorNode::new(SensorId::new(2).unwrap(), Point::new(60.0, 0.0))
                .with_caps(SensorCaps::relay()),
        );
        let token = sim.garnet_mut().issue_default_token("t");
        let (probe, hist) = LatencyProbe::new("probe");
        let id = sim.garnet_mut().register_consumer(Box::new(probe), &token, 0).unwrap();
        sim.garnet_mut()
            .subscribe(id, garnet_net::TopicFilter::Sensor(SensorId::new(1).unwrap()), &token)
            .unwrap();
        sim.run_until(SimTime::from_secs(10));
        drop(hist);
        // Duplicates (direct + relayed copies) absorbed; stream delivered once per seq.
        assert!(sim.relayed_transmission_count() > 0);
        assert!(sim.garnet().filtering().duplicate_count() > 0);
        assert_eq!(
            sim.garnet().filtering().delivered_count(),
            sim.garnet().dispatching().dispatched_count()
        );
        // Some catalogued message carried the relayed flag end to end:
        // check by decoding a relayed frame through the wire directly.
        let relayed = garnet_wire::DataMessage::builder(garnet_wire::StreamId::from_raw(0x0100))
            .build()
            .unwrap()
            .relayed_copy();
        assert!(relayed.header().has(HeaderFlags::RELAYED));
    }

    #[test]
    fn out_of_range_sensor_is_lost() {
        let mut sim = PipelineSim::new(config(), Box::new(Uniform(0.0)));
        sim.add_sensor(sensor(1, Point::new(5_000.0, 5_000.0)));
        sim.run_until(SimTime::from_secs(5));
        assert!(sim.transmission_count() > 0);
        assert_eq!(sim.reception_count(), 0);
    }
}
