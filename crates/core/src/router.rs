//! The event router: Figure 1's arrows as a FIFO of typed events.
//!
//! [`Router`] owns every sans-io service and moves
//! [`ServiceEvent`]s between them. One [`Router::step`] pops one event,
//! hands it to the owning service, re-enqueues any
//! [`ServiceOutput::Emit`] at the *back* of the queue, and returns the
//! remaining outputs (deliveries, plans, denials, expiries) for the
//! facade to apply. The queue is strictly FIFO, which makes the whole
//! middleware a deterministic event machine: the same enqueue sequence
//! always produces the same output sequence, regardless of how the
//! ingest stage is sharded.
//!
//! The ingest hot path (the Filtering Service) is the only stage with
//! per-message CPU cost worth parallelising, so it alone is sharded:
//! [`ShardedIngest`] partitions streams across N independent
//! [`FilteringService`]s by sensor id (every stream of a sensor lands on
//! one shard, so per-stream sequence state never crosses shards) and
//! merges flushes back into the stream-id order a single service would
//! have produced. [`ThreadedIngest`] runs the same shards on OS threads
//! via [`garnet_net::ShardPool`] for live deployments.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, RwLock};

use garnet_net::{
    EdgeClass, RefusedJob, RootFailure, ShardFailure, ShardPool, StageEdge, SubscriptionTable,
    SupervisionConfig,
};
use garnet_radio::ReceiverId;
use garnet_simkit::trace::{TraceConfig, TraceOutcome, TraceRecord, TraceSnapshot, Tracer};
use garnet_simkit::{Histogram, SimTime};
use garnet_wire::{peek_seq, peek_stream, ActuationTarget, FrameBytes};

use crate::actuation::{ActuationConfig, ActuationService};
use crate::coordinator::{CoordinationMode, SuperCoordinator};
use crate::dispatching::{DispatchOutcome, DispatchingService};
use crate::driver::{DispatchStats, FilterStats};
use crate::filtering::{Delivery, FilterConfig, FilterResult, FilteringService, FrameArrival};
use crate::location::{LocationConfig, LocationService};
use crate::orphanage::{Orphanage, OrphanageConfig};
use crate::replicator::MessageReplicator;
use crate::resource::{MediationPolicy, ResourceManager};
use crate::service::{BatchedFrame, GarnetService, ServiceEvent, ServiceOutput};
use crate::stream::{shard_of_sensor, ShardedStreamRegistry, StreamRegistry};
use crate::telemetry::{PipelineSpans, QueueDepthGauges};
use crate::trace::RootTag;
#[cfg(feature = "trace")]
use crate::trace::{event_record, RootTrace};
#[cfg(feature = "trace")]
use garnet_simkit::trace::{TraceEventKind, TraceStage};

/// The ingest stage: N filtering shards partitioned by sensor id.
///
/// With `shards == 1` this is exactly one [`FilteringService`]. With
/// more, each sensor's streams are pinned to one shard; frame handling
/// is embarrassingly parallel across shards because the only shared
/// state — per-stream sequence windows — is partitioned with them.
/// Reorder flushes are merged back into ascending stream-id order,
/// which is the order a single service's `BTreeMap` walk produces, so
/// the event sequence leaving this stage is bit-identical for any shard
/// count.
#[derive(Debug)]
pub struct ShardedIngest {
    shards: Vec<FilteringService>,
}

impl ShardedIngest {
    /// Creates an ingest stage with `shards` filtering shards (0 is
    /// treated as 1).
    pub fn new(config: FilterConfig, shards: usize) -> Self {
        let n = shards.max(1);
        ShardedIngest { shards: (0..n).map(|_| FilteringService::new(config)).collect() }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a frame belongs to. Undecodable-but-headed frames
    /// still shard deterministically via [`peek_stream`]; frames too
    /// short to carry a stream id land on shard 0 (they fail CRC
    /// wherever they land — the choice only has to be deterministic).
    pub fn shard_of(&self, frame: &[u8]) -> usize {
        match peek_stream(frame) {
            Some(stream) => shard_of_sensor(stream.sensor().as_u32(), self.shards.len()),
            None => 0,
        }
    }

    /// Feeds one frame to its shard, returning the raw filter result.
    pub fn on_frame(
        &mut self,
        receiver: ReceiverId,
        rssi_dbm: f64,
        frame: &FrameBytes,
        now: SimTime,
    ) -> FilterResult {
        let shard = self.shard_of(frame);
        self.shards[shard].on_frame(receiver, rssi_dbm, frame, now)
    }

    /// Feeds a burst of frames, equivalent to [`ShardedIngest::on_frame`]
    /// per entry in order: results come back in arrival order, and since
    /// streams are pinned to shards, routing each shard its own
    /// arrival-ordered sub-batch observes exactly the per-frame state
    /// evolution. Each shard validates its sub-batch's headers in one
    /// prepass ([`FilteringService::on_batch`]).
    pub fn on_batch(&mut self, frames: &[FrameArrival]) -> Vec<FilterResult> {
        if self.shards.len() == 1 {
            return self.shards[0].on_batch(frames);
        }
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, f) in frames.iter().enumerate() {
            per_shard[self.shard_of(&f.frame)].push(i);
        }
        let mut out: Vec<Option<FilterResult>> = frames.iter().map(|_| None).collect();
        for (shard, idxs) in per_shard.into_iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            // Cloning a FrameArrival only bumps the frame's refcount.
            let batch: Vec<FrameArrival> = idxs.iter().map(|&i| frames[i].clone()).collect();
            for (i, r) in idxs.into_iter().zip(self.shards[shard].on_batch(&batch)) {
                out[i] = Some(r);
            }
        }
        out.into_iter().map(|r| r.expect("every frame lands on exactly one shard")).collect()
    }

    /// Flushes expired reorder buffers on every shard and merges the
    /// releases into ascending stream-id order (identical to a single
    /// unsharded service: each shard flushes in stream-id order, and
    /// streams are partitioned, so a stable merge by stream id
    /// reproduces the global order).
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Delivery> {
        let mut out: Vec<Delivery> = Vec::new();
        for shard in &mut self.shards {
            out.extend(shard.on_tick(now));
        }
        out.sort_by_key(|d| d.msg.stream().to_raw());
        out
    }

    /// The earliest reorder deadline across shards.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.shards.iter().filter_map(FilteringService::next_deadline).min()
    }

    pub(crate) fn frame_outputs(result: FilterResult) -> Vec<ServiceOutput> {
        let mut out = Vec::new();
        if let Some(obs) = result.observation {
            out.push(ServiceOutput::Emit(ServiceEvent::Observed(obs)));
        }
        for d in &result.deliveries {
            if let Some(request_id) = d.msg.ack() {
                out.push(ServiceOutput::Emit(ServiceEvent::AckReceived {
                    request_id,
                    status: garnet_wire::AckStatus::Applied,
                }));
            }
        }
        out.extend(
            result
                .deliveries
                .into_iter()
                .map(|delivery| ServiceOutput::Emit(ServiceEvent::Filtered { delivery, depth: 0 })),
        );
        out
    }

    /// Messages released downstream (all shards).
    pub fn delivered_count(&self) -> u64 {
        self.shards.iter().map(FilteringService::delivered_count).sum()
    }

    /// Duplicate frames eliminated (all shards).
    pub fn duplicate_count(&self) -> u64 {
        self.shards.iter().map(FilteringService::duplicate_count).sum()
    }

    /// Frames rejected by CRC/decode (all shards).
    pub fn crc_failure_count(&self) -> u64 {
        self.shards.iter().map(FilteringService::crc_failure_count).sum()
    }

    /// Frames buffered out of order (all shards).
    pub fn reordered_count(&self) -> u64 {
        self.shards.iter().map(FilteringService::reordered_count).sum()
    }

    /// Gaps accepted (all shards).
    pub fn gap_count(&self) -> u64 {
        self.shards.iter().map(FilteringService::gap_count).sum()
    }

    /// Stream restarts detected (all shards).
    pub fn restart_count(&self) -> u64 {
        self.shards.iter().map(FilteringService::restart_count).sum()
    }

    /// Streams tracked (streams are partitioned, so the sum is exact).
    pub fn stream_count(&self) -> usize {
        self.shards.iter().map(FilteringService::stream_count).sum()
    }
}

impl GarnetService for ShardedIngest {
    fn handle(&mut self, ev: ServiceEvent, now: SimTime) -> Vec<ServiceOutput> {
        match ev {
            ServiceEvent::Frame { receiver, rssi_dbm, frame } => {
                let result = self.on_frame(receiver, rssi_dbm, &frame, now);
                Self::frame_outputs(result)
            }
            ServiceEvent::FrameBatch(frames) => {
                let arrivals: Vec<FrameArrival> = frames
                    .into_iter()
                    .map(|f| FrameArrival {
                        receiver: f.receiver,
                        rssi_dbm: f.rssi_dbm,
                        frame: f.frame,
                        at: now,
                    })
                    .collect();
                self.on_batch(&arrivals).into_iter().flat_map(Self::frame_outputs).collect()
            }
            ServiceEvent::FlushReorder => self
                .on_tick(now)
                .into_iter()
                .map(|delivery| ServiceOutput::Emit(ServiceEvent::Filtered { delivery, depth: 0 }))
                .collect(),
            _ => Vec::new(),
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        ShardedIngest::next_deadline(self)
    }
}

/// The dispatch stage: subscription routing plus the stream catalogue
/// (the catalogue rides here because every routed message updates it).
#[derive(Debug)]
pub struct DispatchStage {
    /// The Dispatching Service proper.
    pub dispatching: DispatchingService,
    /// The stream catalogue (discovery + claimed flags).
    pub streams: StreamRegistry,
}

impl DispatchStage {
    /// Creates an empty dispatch stage.
    pub fn new() -> Self {
        DispatchStage { dispatching: DispatchingService::new(), streams: StreamRegistry::new() }
    }

    /// Builds a stage over a frozen subscription-table snapshot — the
    /// per-worker unit of the threaded dispatch edge, which routes
    /// against its own copy of the table instead of sharing the live
    /// one.
    pub fn with_table(table: SubscriptionTable) -> Self {
        DispatchStage {
            dispatching: DispatchingService::with_table(table),
            streams: StreamRegistry::new(),
        }
    }
}

impl Default for DispatchStage {
    fn default() -> Self {
        Self::new()
    }
}

impl GarnetService for DispatchStage {
    fn handle(&mut self, ev: ServiceEvent, _now: SimTime) -> Vec<ServiceOutput> {
        let ServiceEvent::Filtered { delivery, depth } = ev else {
            return Vec::new();
        };
        self.streams.note_message(
            delivery.msg.stream(),
            delivery.msg.payload().len(),
            delivery.delivered_at,
            depth > 0,
        );
        let outcome = self.dispatching.route(delivery.msg.stream());
        // Keep the catalogue's claimed flag in sync with reality — a
        // subscription made before the stream's first message would
        // otherwise be invisible to the quiescence sweep.
        self.streams.set_claimed(delivery.msg.stream(), !outcome.unclaimed);
        if outcome.unclaimed {
            return vec![ServiceOutput::Emit(ServiceEvent::Orphaned(delivery))];
        }
        outcome
            .recipients
            .iter()
            .map(|&recipient| ServiceOutput::Deliver {
                recipient,
                delivery: delivery.clone(),
                depth,
            })
            .collect()
    }
}

/// The dispatch stage partitioned by sensor id — the same
/// [`shard_of_sensor`] hash as [`ShardedIngest`], so all of a sensor's
/// streams route on one dispatch shard and the per-shard
/// [`StreamRegistry`] partitions never overlap.
///
/// Subscription state is *partitioned* with the streams: a
/// `Stream`/`Sensor` filter lives only on the shard that owns every
/// stream it can match, so per-shard table size no longer scales as
/// `shards × subscribers`. Only [`garnet_net::TopicFilter::All`] — which
/// matches streams on every shard — is replicated, one copy per shard.
/// Message-path calls (`route`, registry updates) go to the owning
/// shard only; counters sum across shards and the catalogue merges in
/// ascending stream-id order — with the sim driver pumping events in
/// FIFO order, every observable is bit-identical for any shard count.
#[derive(Debug)]
pub struct ShardedDispatch {
    dispatchers: Vec<DispatchingService>,
    /// The stream catalogue, partitioned with the dispatchers.
    pub streams: ShardedStreamRegistry,
    next_subscriber: u32,
    /// Whether the most recent [`ShardedDispatch::route`] (re)built its
    /// match set — consumed by the tracer via
    /// [`ShardedDispatch::take_last_rebuild`].
    last_rebuilt: bool,
}

impl ShardedDispatch {
    /// Creates a dispatch stage with `shards` partitions (0 is treated
    /// as 1), under the default match-cache configuration.
    pub fn new(shards: usize) -> Self {
        Self::with_cache(shards, garnet_net::DispatchCacheConfig::default())
    }

    /// Creates a dispatch stage whose per-shard match caches run under
    /// an explicit configuration.
    pub fn with_cache(shards: usize, cache: garnet_net::DispatchCacheConfig) -> Self {
        let n = shards.max(1);
        ShardedDispatch {
            dispatchers: (0..n).map(|_| DispatchingService::with_cache(cache)).collect(),
            streams: ShardedStreamRegistry::new(n),
            next_subscriber: 0,
            last_rebuilt: false,
        }
    }

    /// Number of dispatch shards.
    pub fn shard_count(&self) -> usize {
        self.dispatchers.len()
    }

    fn shard_of(&self, stream: garnet_wire::StreamId) -> usize {
        shard_of_sensor(stream.sensor().as_u32(), self.dispatchers.len())
    }

    /// Allocates a fresh subscriber identity. Allocation is global —
    /// one counter across all shards — so ids never collide however the
    /// stage is sharded.
    pub fn register_subscriber(&mut self) -> garnet_net::SubscriberId {
        let id = garnet_net::SubscriberId::new(self.next_subscriber);
        self.next_subscriber += 1;
        id
    }

    /// The shard that owns every stream `filter` can match (`None` for
    /// [`garnet_net::TopicFilter::All`], which has no single owner).
    fn shard_of_filter(&self, filter: garnet_net::TopicFilter) -> Option<usize> {
        match filter {
            garnet_net::TopicFilter::Stream(stream) => Some(self.shard_of(stream)),
            garnet_net::TopicFilter::Sensor(sensor) => {
                Some(shard_of_sensor(sensor.as_u32(), self.dispatchers.len()))
            }
            garnet_net::TopicFilter::All => None,
        }
    }

    /// Adds a subscription on the shard that owns the filter's streams
    /// (`All` is replicated to every shard). Returns true if new.
    pub fn subscribe(
        &mut self,
        subscriber: garnet_net::SubscriberId,
        filter: garnet_net::TopicFilter,
    ) -> bool {
        match self.shard_of_filter(filter) {
            Some(shard) => self.dispatchers[shard].subscribe(subscriber, filter),
            None => self
                .dispatchers
                .iter_mut()
                .map(|d| d.subscribe(subscriber, filter))
                .fold(false, |a, b| a | b),
        }
    }

    /// Removes one subscription from its owning shard (every shard for
    /// `All`).
    pub fn unsubscribe(
        &mut self,
        subscriber: garnet_net::SubscriberId,
        filter: garnet_net::TopicFilter,
    ) -> bool {
        match self.shard_of_filter(filter) {
            Some(shard) => self.dispatchers[shard].unsubscribe(subscriber, filter),
            None => self
                .dispatchers
                .iter_mut()
                .map(|d| d.unsubscribe(subscriber, filter))
                .fold(false, |a, b| a | b),
        }
    }

    /// Removes every subscription of a departing consumer, on every
    /// shard. Returns the consumer's distinct filter count (an `All`
    /// filter counts once however many shards replicate it).
    pub fn unsubscribe_all(&mut self, subscriber: garnet_net::SubscriberId) -> usize {
        let distinct: std::collections::BTreeSet<garnet_net::TopicFilter> =
            self.dispatchers.iter().flat_map(|d| d.filters_of(subscriber)).collect();
        for d in &mut self.dispatchers {
            d.unsubscribe_all(subscriber);
        }
        distinct.len()
    }

    /// Routes one message on its owning shard.
    pub fn route(&mut self, stream: garnet_wire::StreamId) -> DispatchOutcome {
        let shard = self.shard_of(stream);
        let outcome = self.dispatchers[shard].route(stream);
        self.last_rebuilt = outcome.rebuilt;
        outcome
    }

    /// Whether the most recent route (re)built its match set, clearing
    /// the flag — the FIFO router reads this right after pumping a
    /// `Filtered` event to append the `CacheRebuild` trace record.
    pub fn take_last_rebuild(&mut self) -> bool {
        std::mem::take(&mut self.last_rebuilt)
    }

    /// Per-shard match-cache counters folded into one view.
    pub fn cache_stats(&self) -> garnet_net::MatchCacheStats {
        let mut stats = garnet_net::MatchCacheStats::default();
        for d in &self.dispatchers {
            stats.absorb(d.cache_stats());
        }
        stats
    }

    /// Peeks the match set without accounting (owning shard).
    pub fn would_deliver(&self, stream: garnet_wire::StreamId) -> bool {
        self.dispatchers[self.shard_of(stream)].would_deliver(stream)
    }

    /// Messages routed (all shards).
    pub fn dispatched_count(&self) -> u64 {
        self.dispatchers.iter().map(DispatchingService::dispatched_count).sum()
    }

    /// Total (message, subscriber) deliveries (all shards).
    pub fn delivery_count(&self) -> u64 {
        self.dispatchers.iter().map(DispatchingService::delivery_count).sum()
    }

    /// Messages that matched nobody (all shards).
    pub fn unclaimed_count(&self) -> u64 {
        self.dispatchers.iter().map(DispatchingService::unclaimed_count).sum()
    }

    /// Distribution of per-message fan-out, merged across shards.
    pub fn fanout(&self) -> Histogram {
        let mut h = Histogram::new();
        for d in &self.dispatchers {
            h.merge(d.fanout());
        }
        h
    }

    /// Distinct subscribers with live subscriptions across all shards.
    pub fn subscriber_count(&self) -> usize {
        let ids: std::collections::BTreeSet<garnet_net::SubscriberId> =
            self.dispatchers.iter().flat_map(|d| d.subscriber_ids()).collect();
        ids.len()
    }

    /// Per-shard subscription-table sizes — the partitioning regression
    /// metric: `Stream`/`Sensor` filters live on exactly one shard, so
    /// (absent `All` filters) the sum equals an unsharded table holding
    /// the same subscriptions.
    pub fn shard_subscription_counts(&self) -> Vec<usize> {
        self.dispatchers.iter().map(DispatchingService::subscription_count).collect()
    }
}

impl GarnetService for ShardedDispatch {
    fn handle(&mut self, ev: ServiceEvent, _now: SimTime) -> Vec<ServiceOutput> {
        let ServiceEvent::Filtered { delivery, depth } = ev else {
            return Vec::new();
        };
        self.streams.note_message(
            delivery.msg.stream(),
            delivery.msg.payload().len(),
            delivery.delivered_at,
            depth > 0,
        );
        let outcome = self.route(delivery.msg.stream());
        self.streams.set_claimed(delivery.msg.stream(), !outcome.unclaimed);
        if outcome.unclaimed {
            return vec![ServiceOutput::Emit(ServiceEvent::Orphaned(delivery))];
        }
        outcome
            .recipients
            .iter()
            .map(|&recipient| ServiceOutput::Deliver {
                recipient,
                delivery: delivery.clone(),
                depth,
            })
            .collect()
    }
}

/// The control-plane services downstream of dispatch, owned together
/// with their routing: the orphanage, location, resource, actuation,
/// replicator and coordinator boxes of Figure 1.
///
/// These services form a *closed* cascade — no control service ever
/// emits a `Frame` or `Filtered` event back into the data plane — so a
/// threaded driver can run the whole group as one worker: feed it the
/// control events of one boundary event and [`ControlGraph::pump`] runs
/// the internal FIFO to quiescence exactly as the single-threaded
/// [`Router`] would.
#[derive(Debug)]
pub struct ControlGraph {
    /// Unclaimed-message retention.
    pub orphanage: Orphanage,
    /// Sensor location inference.
    pub location: LocationService,
    /// Actuation conflict mediation.
    pub resource: ResourceManager,
    /// Stream-update tracking and retry.
    pub actuation: ActuationService,
    /// Area-targeted downlink planning.
    pub replicator: MessageReplicator,
    /// State-triggered policy actions.
    pub coordinator: SuperCoordinator,
}

impl Default for ControlGraph {
    /// A control graph with every service at its default configuration
    /// and no receiver/transmitter arrays — the shape tests and
    /// threaded-driver factories want when the run exercises the data
    /// path rather than radio geometry.
    fn default() -> Self {
        ControlGraph {
            orphanage: Orphanage::new(OrphanageConfig::default()),
            location: LocationService::new(LocationConfig::default(), &[]),
            resource: ResourceManager::new(MediationPolicy::MergeMax),
            actuation: ActuationService::new(ActuationConfig::default()),
            replicator: MessageReplicator::new(Vec::new()),
            coordinator: SuperCoordinator::new(CoordinationMode::Predictive {
                min_confidence: 0.6,
            }),
        }
    }
}

impl ControlGraph {
    fn route(&mut self, ev: ServiceEvent, now: SimTime) -> Vec<ServiceOutput> {
        use ServiceEvent::*;
        match ev {
            Orphaned(_) => self.orphanage.handle(ev, now),
            Observed(_) | Hint { .. } => self.location.handle(ev, now),
            ActuationRequested { .. } => self.resource.handle(ev, now),
            Submit { .. } | AckReceived { .. } | ActuationTick => self.actuation.handle(ev, now),
            Replicate { origin, requester, request, estimate } => {
                // The replicator's read-dependency on the Location
                // Service is resolved here, at routing time, so the
                // replicator itself stays free of service references.
                let estimate = estimate.or_else(|| match request.target {
                    ActuationTarget::Sensor(s) => self.location.estimate(s, now),
                    ActuationTarget::Stream(st) => self.location.estimate(st.sensor(), now),
                    ActuationTarget::Area(_) => None,
                });
                self.replicator.handle(Replicate { origin, requester, request, estimate }, now)
            }
            StateReported { .. } => self.coordinator.handle(ev, now),
            // Data-plane events are not ours; ignoring them keeps the
            // contract total.
            Frame { .. } | FrameBatch(_) | FlushReorder | Filtered { .. } => Vec::new(),
        }
    }

    /// Runs `events` (and everything they cascade into) to quiescence
    /// over an internal FIFO, returning the outputs that escape the
    /// graph. This is exactly the [`Router`]'s pump restricted to the
    /// control plane, which is what makes a one-worker threaded control
    /// stage bit-identical to the single-threaded router.
    pub fn pump(&mut self, events: Vec<ServiceEvent>, now: SimTime) -> Vec<ServiceOutput> {
        self.pump_traced(events, now).0
    }

    /// [`ControlGraph::pump`] plus one [`TraceRecord`] per event hop, in
    /// the FIFO order the hops were routed (always empty with the
    /// `trace` feature off). Records carry no root sequence — the driver
    /// owns that and stamps it when the trace is merged.
    pub fn pump_traced(
        &mut self,
        events: Vec<ServiceEvent>,
        now: SimTime,
    ) -> (Vec<ServiceOutput>, Vec<TraceRecord>) {
        let mut queue: VecDeque<ServiceEvent> = events.into();
        let mut external = Vec::new();
        #[cfg_attr(not(feature = "trace"), allow(unused_mut))]
        let mut trace: Vec<TraceRecord> = Vec::new();
        while let Some(ev) = queue.pop_front() {
            #[cfg(feature = "trace")]
            trace.push(event_record(&ev, now, None));
            for o in self.route(ev, now) {
                match o {
                    ServiceOutput::Emit(ev) => queue.push_back(ev),
                    other => external.push(other),
                }
            }
        }
        (external, trace)
    }
}

impl GarnetService for ControlGraph {
    fn handle(&mut self, ev: ServiceEvent, now: SimTime) -> Vec<ServiceOutput> {
        self.route(ev, now)
    }

    fn next_deadline(&self) -> Option<SimTime> {
        GarnetService::next_deadline(&self.actuation)
    }
}

/// Every routed service, owned together so the router can borrow them
/// independently — grouped by stage: the sharded data plane (ingest,
/// dispatch) and the control plane behind it. Fields are public: the
/// facade reaches in for direct reads (statistics) and the rare
/// synchronous call (subscription changes, orphanage claims) that is
/// request/response rather than dataflow.
#[derive(Debug)]
pub struct Services {
    /// Sharded filtering (the ingest hot path).
    pub ingest: ShardedIngest,
    /// Sharded subscription routing + stream catalogue.
    pub dispatch: ShardedDispatch,
    /// Everything downstream of dispatch.
    pub control: ControlGraph,
}

/// How frame admission responds when the router's bounded queue is at
/// capacity. Only [`ServiceEvent::Frame`] events are ever governed —
/// control events (acks, actuations, flushes) are never dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Drop the oldest queued frame to admit the newest — the arrivals
    /// most likely to still matter survive.
    Shed,
    /// Replace a queued frame of the arriving frame's stream with
    /// whichever carries the newer sequence number (per-stream
    /// freshness, as a GSN-style drop policy); falls back to shedding
    /// the oldest queued frame when the stream has nothing queued.
    CoalesceFrames,
    /// Admit nothing over capacity: the driver must drain first. The
    /// simulation driver pumps the queue to make room; a threaded
    /// driver genuinely blocks, pushing backpressure to the radio edge.
    Block,
}

/// Bounded-queue admission control for the router's frame intake.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Maximum number of `Frame` events queued at once (0 is treated
    /// as 1).
    pub capacity: usize,
    /// What to do with a frame arriving at capacity.
    pub policy: OverloadPolicy,
}

/// What [`Router::admit_frame`] did with a frame.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameAdmission {
    /// Queued; the queue was below capacity.
    Admitted,
    /// Queued; the oldest queued frame was shed to make room.
    AdmittedAfterShed,
    /// Resolved against a queued frame of the same stream: the older
    /// sequence (either side) was dropped, the newer one is queued.
    Coalesced,
    /// Queue at capacity under [`OverloadPolicy::Block`]: the frame is
    /// handed back untouched; drain the queue and retry. Nothing is
    /// counted for a blocked attempt, so retries don't inflate totals.
    Blocked(FrameBytes),
}

/// Monotonic frame-admission totals, for metrics deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverloadTotals {
    /// Frames accepted into admission (everything except blocked
    /// attempts, which retry and count once on success).
    pub offered: u64,
    /// Frames dropped by the overload policy before filtering.
    pub shed: u64,
    /// The subset of `shed` dropped in favour of a newer same-stream
    /// sequence.
    pub coalesced: u64,
    /// Frames popped off the queue and routed into filtering.
    pub delivered: u64,
}

/// Which admission-control outcome dropped a frame (trace labelling
/// only — counters live in [`OverloadTotals`]).
enum DropKind {
    Shed,
    Coalesced,
}

/// The FIFO event router over [`Services`].
#[derive(Debug)]
pub struct Router {
    services: Services,
    /// Each queued event carries the root-sequence tag of the boundary
    /// event it descends from (a zero-sized unit unless the `trace`
    /// feature is on).
    queue: VecDeque<(RootTag, ServiceEvent)>,
    overload: Option<OverloadConfig>,
    /// `Frame` events currently in `queue` (control events excluded).
    queued_frames: usize,
    totals: OverloadTotals,
    peak_queued: u64,
    /// Queue depth sampled at each admission (only when bounded).
    depth_hist: Histogram,
    /// The flight recorder (a zero-sized no-op unless the `trace`
    /// feature is on).
    tracer: Tracer,
    /// Always-on latency spans, recorded once per dispatched delivery.
    spans: PipelineSpans,
    /// Per-ingest-shard admission-depth gauges.
    depths: QueueDepthGauges,
    /// Next root sequence number for a boundary enqueue.
    #[cfg(feature = "trace")]
    next_root: u64,
}

impl Router {
    /// Creates a router over the given services with an empty,
    /// unbounded queue (the legacy behaviour: admission never sheds).
    pub fn new(services: Services) -> Self {
        Self::with_overload(services, None)
    }

    /// Creates a router whose frame intake is governed by `overload`
    /// (`None` = unbounded).
    pub fn with_overload(services: Services, overload: Option<OverloadConfig>) -> Self {
        let depths = QueueDepthGauges::new(services.ingest.shard_count());
        Router {
            services,
            queue: VecDeque::new(),
            overload,
            queued_frames: 0,
            totals: OverloadTotals::default(),
            peak_queued: 0,
            depth_hist: Histogram::new(),
            tracer: Tracer::new(TraceConfig::default()),
            spans: PipelineSpans::new(),
            depths,
            #[cfg(feature = "trace")]
            next_root: 0,
        }
    }

    /// Replaces the flight recorder with one of the given capacity
    /// (any records already buffered are discarded). A no-op without
    /// the `trace` feature.
    pub fn configure_trace(&mut self, config: TraceConfig) {
        self.tracer = Tracer::new(config);
    }

    /// The flight recorder's current contents (chronological) plus
    /// per-stage statistics. Empty without the `trace` feature.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.tracer.snapshot()
    }

    /// Streams the flight recorder's window to `w` as JSONL and clears
    /// it (see [`Tracer::drain_to`]).
    pub fn trace_drain_to(&mut self, mut w: &mut dyn std::io::Write) -> std::io::Result<usize> {
        self.tracer.drain_to(&mut w)
    }

    /// Shared view of the services.
    pub fn services(&self) -> &Services {
        &self.services
    }

    /// Mutable view of the services (for synchronous facade calls).
    pub fn services_mut(&mut self) -> &mut Services {
        &mut self.services
    }

    /// Enqueues an event at the back of the queue, bypassing admission
    /// control — the control path: acks, actuations, flushes and other
    /// non-`Frame` events must never be shed. Frames entering here are
    /// still counted against the queue depth so admission stays exact.
    #[cfg_attr(not(feature = "trace"), allow(clippy::let_unit_value))]
    pub fn enqueue(&mut self, ev: ServiceEvent) {
        let tag = self.alloc_root();
        self.enqueue_tagged(tag, ev);
    }

    /// Allocates a fresh root-sequence tag for a boundary enqueue.
    #[cfg(feature = "trace")]
    fn alloc_root(&mut self) -> RootTag {
        let root = self.next_root;
        self.next_root += 1;
        root
    }

    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    fn alloc_root(&mut self) -> RootTag {}

    /// Enqueues under an existing root tag — the cascade path: events a
    /// service emitted while handling `tag`'s work stay attributed to
    /// that boundary event.
    fn enqueue_tagged(&mut self, tag: RootTag, ev: ServiceEvent) {
        if matches!(ev, ServiceEvent::Frame { .. }) {
            self.queued_frames += 1;
            self.note_depth();
        }
        self.queue.push_back((tag, ev));
    }

    /// Offers a frame to admission control. Without an
    /// [`OverloadConfig`] the frame is always queued; with one, the
    /// configured [`OverloadPolicy`] decides what happens at capacity.
    /// This is the only entry point that maintains shed/coalesce
    /// accounting, so drivers should route all radio frames through it.
    /// `now` is the admission instant, used only to timestamp trace
    /// records for frames dropped here (shed or coalesced away) —
    /// admitted frames are traced when they are popped and routed.
    pub fn admit_frame(
        &mut self,
        receiver: ReceiverId,
        rssi_dbm: f64,
        frame: FrameBytes,
        now: SimTime,
    ) -> FrameAdmission {
        let Some(cfg) = self.overload else {
            self.totals.offered += 1;
            self.note_offered_depth(&frame);
            self.enqueue(ServiceEvent::Frame { receiver, rssi_dbm, frame });
            return FrameAdmission::Admitted;
        };
        let capacity = cfg.capacity.max(1);
        if self.queued_frames < capacity {
            self.totals.offered += 1;
            self.note_offered_depth(&frame);
            self.enqueue(ServiceEvent::Frame { receiver, rssi_dbm, frame });
            return FrameAdmission::Admitted;
        }
        match cfg.policy {
            OverloadPolicy::Block => FrameAdmission::Blocked(frame),
            OverloadPolicy::Shed => {
                self.shed_oldest_frame(now);
                self.totals.offered += 1;
                self.note_offered_depth(&frame);
                self.enqueue(ServiceEvent::Frame { receiver, rssi_dbm, frame });
                FrameAdmission::AdmittedAfterShed
            }
            OverloadPolicy::CoalesceFrames => self.coalesce_frame(receiver, rssi_dbm, frame, now),
        }
    }

    /// Samples the telemetry depth gauges for one offered (non-blocked)
    /// frame: the total and the frame's ingest shard — the same count
    /// the threaded router samples at `push_frame`, so the gauges are
    /// engine-invariant. Skipped entirely (including the shard peek)
    /// when span recording is off.
    fn note_offered_depth(&mut self, frame: &[u8]) {
        if self.depths.enabled() {
            // A single-shard deployment (the default) needs no header
            // peek — every frame lands on shard 0.
            let shard = if self.services.ingest.shard_count() == 1 {
                0
            } else {
                self.services.ingest.shard_of(frame)
            };
            self.depths.note_admitted(shard);
        }
    }

    /// Offers a burst of frames to admission control, one ledger entry
    /// per frame: each frame goes through [`Router::admit_frame`] in
    /// order, so `offered == shed + delivered` counts frames — never
    /// batches — under every policy, and [`OverloadPolicy::Block`] hands
    /// back exactly the frames that did not fit (in arrival order) for
    /// the caller to retry after draining.
    pub fn admit_frames(&mut self, frames: Vec<BatchedFrame>, now: SimTime) -> Vec<FrameAdmission> {
        frames.into_iter().map(|f| self.admit_frame(f.receiver, f.rssi_dbm, f.frame, now)).collect()
    }

    /// Removes the oldest queued `Frame` event. Callers guarantee one
    /// exists (`queued_frames > 0`).
    fn shed_oldest_frame(&mut self, now: SimTime) {
        if let Some(idx) =
            self.queue.iter().position(|(_, ev)| matches!(ev, ServiceEvent::Frame { .. }))
        {
            let (tag, ev) = self.queue.remove(idx).expect("position is in range");
            self.queued_frames -= 1;
            self.note_frame_dropped(false);
            self.trace_dropped(tag, &ev, now, DropKind::Shed);
        }
    }

    /// The single terminal accounting point for a frame dropped by
    /// admission control. Every drop — shed-oldest, or either branch of
    /// a coalesce — passes through here exactly once per frame, so a
    /// frame that first survives a coalesce (replacing an older queued
    /// copy) and is later shed itself is still counted once: its
    /// victim's terminal paid the earlier `shed`, and its own terminal
    /// pays this one. Keeping the increment in one place (instead of
    /// scattered per branch) is what makes double-counting structurally
    /// impossible.
    fn note_frame_dropped(&mut self, coalesced: bool) {
        self.totals.shed += 1;
        if coalesced {
            self.totals.coalesced += 1;
        }
        debug_assert!(
            self.totals.offered >= self.totals.shed + self.totals.delivered,
            "admission ledger overdrawn: {:?}",
            self.totals
        );
    }

    /// Records a frame that admission control dropped (never routed, so
    /// [`Router::step`] will never trace it).
    #[cfg(feature = "trace")]
    fn trace_dropped(&mut self, tag: RootTag, ev: &ServiceEvent, now: SimTime, kind: DropKind) {
        let mut rec = event_record(ev, now, Some(tag));
        rec.outcome = match kind {
            DropKind::Shed => TraceOutcome::Shed,
            DropKind::Coalesced => TraceOutcome::Coalesced,
        };
        self.tracer.record(|| rec);
    }

    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    fn trace_dropped(&mut self, _tag: RootTag, _ev: &ServiceEvent, _now: SimTime, _kind: DropKind) {
    }

    /// At capacity under `CoalesceFrames`: resolve the arriving frame
    /// against the queued frame of the same stream, keeping whichever
    /// claims the newer sequence number (wraparound-aware). Streams with
    /// nothing queued fall back to shedding the oldest frame overall.
    #[cfg_attr(not(feature = "trace"), allow(clippy::let_unit_value))]
    fn coalesce_frame(
        &mut self,
        receiver: ReceiverId,
        rssi_dbm: f64,
        frame: FrameBytes,
        now: SimTime,
    ) -> FrameAdmission {
        let stream = peek_stream(&frame);
        let same_stream = stream.and_then(|s| {
            self.queue.iter().position(|(_, ev)| {
                matches!(ev, ServiceEvent::Frame { frame: q, .. } if peek_stream(q) == Some(s))
            })
        });
        let Some(idx) = same_stream else {
            self.shed_oldest_frame(now);
            self.totals.offered += 1;
            self.note_offered_depth(&frame);
            self.enqueue(ServiceEvent::Frame { receiver, rssi_dbm, frame });
            return FrameAdmission::AdmittedAfterShed;
        };
        let queued_seq = match &self.queue[idx].1 {
            ServiceEvent::Frame { frame: q, .. } => peek_seq(q),
            _ => None,
        };
        // Undecodable sequences lose to decodable ones; two
        // undecodables keep the queued copy. Deterministic either way —
        // a corrupt frame fails CRC downstream regardless.
        let arriving_wins = match (peek_seq(&frame), queued_seq) {
            (Some(a), Some(q)) => a.is_after(q),
            (Some(_), None) => true,
            _ => false,
        };
        // One frame arrives, one frame dies: the arrival is offered,
        // and whichever copy loses (the queued one when the arrival is
        // newer, the arrival itself otherwise) pays exactly one
        // coalesced drop at the terminal below.
        self.totals.offered += 1;
        self.note_frame_dropped(true);
        self.note_offered_depth(&frame);
        let tag = self.alloc_root();
        if arriving_wins {
            // Replace in place: the survivor keeps the queued frame's
            // position (and thus its place in the delivery order).
            let (old_tag, old_ev) = std::mem::replace(
                &mut self.queue[idx],
                (tag, ServiceEvent::Frame { receiver, rssi_dbm, frame }),
            );
            self.trace_dropped(old_tag, &old_ev, now, DropKind::Coalesced);
            self.note_depth();
        } else {
            let ev = ServiceEvent::Frame { receiver, rssi_dbm, frame };
            self.trace_dropped(tag, &ev, now, DropKind::Coalesced);
        }
        FrameAdmission::Coalesced
    }

    fn note_depth(&mut self) {
        let depth = self.queued_frames as u64;
        self.peak_queued = self.peak_queued.max(depth);
        if self.overload.is_some() {
            self.depth_hist.record(depth);
        }
    }

    /// Pops and routes one event. `Emit` outputs go to the back of the
    /// queue; everything else is returned for the driver to apply.
    /// Returns `None` when the queue is empty (quiescence).
    pub fn step(&mut self, now: SimTime) -> Option<Vec<ServiceOutput>> {
        let (tag, ev) = self.queue.pop_front()?;
        if matches!(ev, ServiceEvent::Frame { .. }) {
            self.queued_frames -= 1;
            self.totals.delivered += 1;
        }
        // Every delivery passes through here exactly once (batch-mode
        // cascades re-enter the queue), so this is the FIFO engine's
        // span point; the threaded engine records the same three legs
        // at its B drain.
        if let ServiceEvent::Filtered { delivery, .. } = &ev {
            self.spans.record(delivery.first_received_at, delivery.delivered_at, now);
        }
        #[cfg(feature = "trace")]
        let rec = {
            let rec = event_record(&ev, now, Some(tag));
            self.tracer.note_occupancy(rec.stage, self.queue.len() as u64);
            self.tracer.record(|| rec);
            rec
        };
        let outputs = self.route(ev, now);
        // A dispatch hop that had to (re)build its match set appends a
        // CacheRebuild record right behind its Filtered one — the same
        // adjacency the threaded driver reconstructs per root.
        #[cfg(feature = "trace")]
        if rec.kind == TraceEventKind::Filtered && self.services.dispatch.take_last_rebuild() {
            self.tracer.record(|| TraceRecord { kind: TraceEventKind::CacheRebuild, ..rec });
        }
        let mut external = Vec::new();
        for o in outputs {
            match o {
                ServiceOutput::Emit(ev) => self.enqueue_tagged(tag, ev),
                other => external.push(other),
            }
        }
        Some(external)
    }

    /// Pops and routes a maximal run of consecutive `Frame` events as
    /// one filtering batch (falling back to [`Router::step`] when the
    /// queue head is anything else). Bit-identical to stepping the same
    /// events one at a time: frames were adjacent in the queue, so their
    /// cascades would have been enqueued back-to-back in this exact
    /// order anyway, and each frame keeps its own root tag, trace record
    /// and ledger entry — only the per-event dispatch and header
    /// re-validation are amortised.
    pub fn step_batch(&mut self, now: SimTime) -> Option<Vec<ServiceOutput>> {
        if !matches!(self.queue.front(), Some((_, ServiceEvent::Frame { .. }))) {
            return self.step(now);
        }
        let mut tags: Vec<RootTag> = Vec::new();
        let mut arrivals: Vec<FrameArrival> = Vec::new();
        while matches!(self.queue.front(), Some((_, ServiceEvent::Frame { .. }))) {
            let (tag, ev) = self.queue.pop_front().expect("front was just matched");
            self.queued_frames -= 1;
            self.totals.delivered += 1;
            #[cfg(feature = "trace")]
            {
                let rec = event_record(&ev, now, Some(tag));
                self.tracer.note_occupancy(rec.stage, self.queue.len() as u64);
                self.tracer.record(|| rec);
            }
            let ServiceEvent::Frame { receiver, rssi_dbm, frame } = ev else {
                unreachable!("front was matched as a Frame");
            };
            tags.push(tag);
            arrivals.push(FrameArrival { receiver, rssi_dbm, frame, at: now });
        }
        let results = self.services.ingest.on_batch(&arrivals);
        let mut external = Vec::new();
        for (tag, result) in tags.into_iter().zip(results) {
            for o in ShardedIngest::frame_outputs(result) {
                match o {
                    ServiceOutput::Emit(ev) => self.enqueue_tagged(tag, ev),
                    other => external.push(other),
                }
            }
        }
        Some(external)
    }

    fn route(&mut self, ev: ServiceEvent, now: SimTime) -> Vec<ServiceOutput> {
        use ServiceEvent::*;
        match ev {
            Frame { .. } | FrameBatch(_) | FlushReorder => self.services.ingest.handle(ev, now),
            Filtered { .. } => self.services.dispatch.handle(ev, now),
            other => self.services.control.handle(other, now),
        }
    }

    /// Monotonic admission totals (offered / shed / coalesced /
    /// delivered). At quiescence `offered == shed + delivered`.
    pub fn overload_totals(&self) -> OverloadTotals {
        self.totals
    }

    /// `Frame` events currently queued.
    pub fn queued_frame_count(&self) -> usize {
        self.queued_frames
    }

    /// High-water mark of the frame queue.
    pub fn peak_queue_depth(&self) -> u64 {
        self.peak_queued
    }

    /// The pipeline latency spans recorded so far.
    pub fn pipeline_spans(&self) -> &PipelineSpans {
        &self.spans
    }

    /// The per-ingest-shard admission-depth gauges.
    pub fn queue_depth_gauges(&self) -> &QueueDepthGauges {
        &self.depths
    }

    /// Turns latency-span and depth-gauge recording on or off (on by
    /// default; `GarnetConfig.telemetry.spans` drives this).
    pub fn set_telemetry_recording(&mut self, enabled: bool) {
        self.spans.set_enabled(enabled);
        self.depths.set_enabled(enabled);
    }

    /// Resets the telemetry depth counts (the watermarks survive).
    /// Called by the facade after it pumps the engine dry — a *logical*
    /// quiescence both engines reach at the same boundary, unlike the
    /// racy "did the workers keep up?" quiescence a threaded poll could
    /// observe mid-burst.
    pub fn note_telemetry_quiescent(&mut self) {
        self.depths.note_quiescent();
    }

    /// Queue depth sampled at each admission (empty when unbounded —
    /// the unbounded hot path pays no sampling cost).
    pub fn depth_histogram(&self) -> &Histogram {
        &self.depth_hist
    }

    /// The earliest time-driven deadline across routed services.
    pub fn next_deadline(&self) -> Option<SimTime> {
        [
            GarnetService::next_deadline(&self.services.ingest),
            GarnetService::next_deadline(&self.services.control),
        ]
        .into_iter()
        .flatten()
        .min()
    }
}

/// One queued frame awaiting its shard batch: (receiver, rssi_dbm,
/// frame bytes, arrival time).
type PendingFrame = (ReceiverId, f64, FrameBytes, SimTime);

fn pending_to_arrival((receiver, rssi_dbm, frame, at): PendingFrame) -> FrameArrival {
    FrameArrival { receiver, rssi_dbm, frame, at }
}

/// A job for one threaded ingest shard.
enum IngestJob {
    /// A batch of frames.
    Frames(Vec<PendingFrame>),
    /// Flush reorder buffers up to the given instant.
    Flush(SimTime),
}

/// What one threaded shard produced for one job: deliveries in shard
/// order plus the subscriber matches it resolved (dispatch routing is
/// pushed onto the worker so the hot path's two stages both
/// parallelise).
#[derive(Debug, Default)]
pub struct IngestBatch {
    /// Messages released by filtering, in per-stream order.
    pub deliveries: Vec<Delivery>,
    /// Total subscriber matches across those deliveries.
    pub matched: u64,
    /// Input frames this job consumed (0 for reorder flushes) — the
    /// processed side of the shed-accounting ledger.
    pub frames: u64,
}

/// Terminal accounting for a threaded ingest run: every offered frame
/// is either in a batch, shed at the pool edge, or attributed to a
/// shard failure — `offered == processed + shed + lost` exactly.
#[derive(Debug, Default)]
pub struct IngestReport {
    /// Result batches completing the submission-order sequence.
    pub batches: Vec<IngestBatch>,
    /// Worker failures (panics, stranded jobs) recorded over the run.
    pub failures: Vec<ShardFailure>,
    /// Frames offered to [`ThreadedIngest::push`].
    pub offered_frames: u64,
    /// Frames dropped by backpressure shedding at the pool edge.
    pub shed_frames: u64,
    /// Frames lost to shard failures (attributed via the failure list).
    pub lost_frames: u64,
}

/// The ingest hot path on OS threads: one [`FilteringService`] per
/// worker, frames batched per shard through a [`ShardPool`], outputs
/// merged in submission order. Each worker also resolves subscriber
/// matches against a snapshot of the [`SubscriptionTable`].
///
/// The pool's job channels are bounded, so a stalled shard propagates
/// backpressure here. [`OverloadPolicy::Block`] (the default) makes
/// [`ThreadedIngest::push`] block — pressure reaches the radio edge;
/// [`OverloadPolicy::Shed`] and [`OverloadPolicy::CoalesceFrames`] drop
/// work instead, with every dropped frame counted (`shed_frame_count`)
/// so `offered == processed + shed + lost` holds exactly whatever the
/// thread interleaving. A panicking worker poisons only its own shard:
/// the loss surfaces via [`ThreadedIngest::take_shard_failures`], other
/// shards keep delivering, and [`ThreadedIngest::restart_shard`]
/// rebuilds the failed one with fresh filter state (its streams re-key
/// as restarts downstream).
///
/// This driver trades the simulator's bit-exact event interleaving for
/// wall-clock parallelism; per-stream delivery order is still exact
/// because streams are pinned to shards and the pool merges in
/// submission order.
pub struct ThreadedIngest {
    pool: ShardPool<IngestJob, IngestBatch>,
    shards: usize,
    batch_size: usize,
    policy: OverloadPolicy,
    pending: Vec<Vec<PendingFrame>>,
    /// Frame count per in-flight job seq, pruned below the pool's
    /// merged watermark; failures look up their lost-frame cost here.
    frames_per_seq: std::collections::BTreeMap<u64, u64>,
    failures: Vec<ShardFailure>,
    offered_frames: u64,
    shed_frames: u64,
    lost_frames: u64,
}

impl ThreadedIngest {
    /// Spawns `shards` workers with blocking backpressure
    /// ([`OverloadPolicy::Block`]) and a 4-job queue per shard.
    /// `batch_size` frames accumulate per shard before a job is
    /// submitted (batching amortises channel overhead); `subscriptions`
    /// is snapshotted per worker.
    pub fn new(
        config: FilterConfig,
        shards: usize,
        batch_size: usize,
        subscriptions: &SubscriptionTable,
    ) -> Self {
        Self::with_backpressure(config, shards, batch_size, subscriptions, OverloadPolicy::Block, 4)
    }

    /// [`ThreadedIngest::new`] with an explicit edge policy and
    /// per-shard job-queue bound.
    pub fn with_backpressure(
        config: FilterConfig,
        shards: usize,
        batch_size: usize,
        subscriptions: &SubscriptionTable,
        policy: OverloadPolicy,
        queue_capacity: usize,
    ) -> Self {
        Self::with_supervision(
            config,
            shards,
            batch_size,
            subscriptions,
            policy,
            queue_capacity,
            None,
        )
    }

    /// [`ThreadedIngest::with_backpressure`] with an automatic shard
    /// restart policy: a poisoned shard is rebuilt from fresh filter
    /// state within the [`SupervisionConfig`] budget instead of waiting
    /// for the caller to notice and call
    /// [`ThreadedIngest::restart_shard`]. Restarts are counted in
    /// [`ThreadedIngest::supervised_restart_count`].
    pub fn with_supervision(
        config: FilterConfig,
        shards: usize,
        batch_size: usize,
        subscriptions: &SubscriptionTable,
        policy: OverloadPolicy,
        queue_capacity: usize,
        supervision: Option<SupervisionConfig>,
    ) -> Self {
        let n = shards.max(1);
        let subs_master = subscriptions.clone();
        let pool =
            ShardPool::with_supervision(n, queue_capacity.max(1), supervision, move |_shard| {
                let mut filter = FilteringService::new(config);
                let subs = subs_master.clone();
                // Fan-out accounting over the frozen snapshot goes
                // through a worker-local match cache: repeated frames of
                // one stream count in O(1) instead of re-merging.
                let mut cache =
                    garnet_net::MatchCache::new(garnet_net::DispatchCacheConfig::default());
                Box::new(move |job: IngestJob| {
                    let mut batch = IngestBatch::default();
                    match job {
                        IngestJob::Frames(frames) => {
                            batch.frames = frames.len() as u64;
                            let arrivals: Vec<FrameArrival> =
                                frames.into_iter().map(pending_to_arrival).collect();
                            for result in filter.on_batch(&arrivals) {
                                for d in result.deliveries {
                                    batch.matched +=
                                        cache.match_count(&subs, d.msg.stream()) as u64;
                                    batch.deliveries.push(d);
                                }
                            }
                        }
                        IngestJob::Flush(now) => {
                            for d in filter.on_tick(now) {
                                batch.matched += cache.match_count(&subs, d.msg.stream()) as u64;
                                batch.deliveries.push(d);
                            }
                        }
                    }
                    batch
                })
            });
        ThreadedIngest {
            pool,
            shards: n,
            batch_size: batch_size.max(1),
            policy,
            pending: (0..n).map(|_| Vec::new()).collect(),
            frames_per_seq: std::collections::BTreeMap::new(),
            failures: Vec::new(),
            offered_frames: 0,
            shed_frames: 0,
            lost_frames: 0,
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Hands a ready batch to the pool under the edge policy.
    fn submit_batch(&mut self, shard: usize, frames: Vec<PendingFrame>) {
        let count = frames.len() as u64;
        match self.policy {
            OverloadPolicy::Block => {
                let seq =
                    self.pool.submit_tagged(shard, IngestJob::Frames(frames), EdgeClass::Data);
                self.frames_per_seq.insert(seq, count);
            }
            OverloadPolicy::Shed | OverloadPolicy::CoalesceFrames => {
                let frames = if self.policy == OverloadPolicy::CoalesceFrames {
                    self.compact_batch(frames)
                } else {
                    frames
                };
                let count = frames.len() as u64;
                match self.pool.try_submit_tagged(shard, IngestJob::Frames(frames), EdgeClass::Data)
                {
                    Ok(seq) => {
                        self.frames_per_seq.insert(seq, count);
                    }
                    Err(RefusedJob::Full(_)) => self.shed_frames += count,
                    Err(RefusedJob::Poisoned(_)) => self.lost_frames += count,
                }
            }
        }
    }

    /// Keeps only the newest sequence per stream within a batch
    /// (streams are pinned to one shard, so within-batch coalescing is
    /// the threaded analogue of the router's queue coalescing).
    fn compact_batch(&mut self, frames: Vec<PendingFrame>) -> Vec<PendingFrame> {
        let mut newest: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        let mut keep: Vec<Option<PendingFrame>> = Vec::with_capacity(frames.len());
        for (i, pf) in frames.into_iter().enumerate() {
            let key = peek_stream(&pf.2).map(|s| s.to_raw());
            keep.push(Some(pf));
            let Some(key) = key else { continue };
            if let Some(&prev) = newest.get(&key) {
                let newer = match (
                    keep[i].as_ref().and_then(|p| peek_seq(&p.2)),
                    keep[prev].as_ref().and_then(|p| peek_seq(&p.2)),
                ) {
                    (Some(a), Some(q)) => a.is_after(q),
                    (Some(_), None) => true,
                    _ => false,
                };
                let drop_at = if newer { prev } else { i };
                keep[drop_at] = None;
                self.shed_frames += 1;
                if newer {
                    newest.insert(key, i);
                }
            } else {
                newest.insert(key, i);
            }
        }
        keep.into_iter().flatten().collect()
    }

    /// Absorbs newly recorded shard failures, attributing their
    /// lost-frame cost, and prunes the per-job ledger below the pool's
    /// merge watermark.
    fn absorb_failures(&mut self) {
        for f in self.pool.take_failures() {
            self.lost_frames += self.frames_per_seq.remove(&f.seq).unwrap_or(0);
            self.failures.push(f);
        }
        let watermark = self.pool.merged_watermark();
        self.frames_per_seq = self.frames_per_seq.split_off(&watermark);
    }

    /// Queues one frame, submitting its shard's batch when full.
    /// Returns any result batches that have become ready, in submission
    /// order. Under [`OverloadPolicy::Block`] this call blocks while
    /// the shard's job queue is full (backpressure reaches the caller);
    /// under the shedding policies it never blocks and the drop is
    /// counted instead.
    pub fn push(
        &mut self,
        receiver: ReceiverId,
        rssi_dbm: f64,
        frame: FrameBytes,
        at: SimTime,
    ) -> Vec<IngestBatch> {
        self.stage_frame(receiver, rssi_dbm, frame, at);
        let out = self.pool.drain();
        self.absorb_failures();
        out
    }

    /// Queues a burst of frames as one call — the batch analogue of
    /// [`ThreadedIngest::push`], amortising the drain/failure sweep over
    /// the whole burst. Shard batches still fill and submit at
    /// `batch_size`, so the job stream is identical to pushing the
    /// frames one at a time.
    pub fn push_frames(
        &mut self,
        frames: impl IntoIterator<Item = (ReceiverId, f64, FrameBytes)>,
        at: SimTime,
    ) -> Vec<IngestBatch> {
        for (receiver, rssi_dbm, frame) in frames {
            self.stage_frame(receiver, rssi_dbm, frame, at);
        }
        let out = self.pool.drain();
        self.absorb_failures();
        out
    }

    fn stage_frame(&mut self, receiver: ReceiverId, rssi_dbm: f64, frame: FrameBytes, at: SimTime) {
        let shard = match peek_stream(&frame) {
            Some(stream) => shard_of_sensor(stream.sensor().as_u32(), self.shards),
            None => 0,
        };
        self.offered_frames += 1;
        self.pending[shard].push((receiver, rssi_dbm, frame, at));
        if self.pending[shard].len() >= self.batch_size {
            let frames = std::mem::take(&mut self.pending[shard]);
            self.submit_batch(shard, frames);
        }
    }

    /// Submits all partial batches and a reorder flush on every shard.
    pub fn flush(&mut self, now: SimTime) -> Vec<IngestBatch> {
        for shard in 0..self.shards {
            if !self.pending[shard].is_empty() {
                let frames = std::mem::take(&mut self.pending[shard]);
                self.submit_batch(shard, frames);
            }
            let seq = self.pool.submit_tagged(shard, IngestJob::Flush(now), EdgeClass::Control);
            self.frames_per_seq.insert(seq, 0);
        }
        let out = self.pool.drain();
        self.absorb_failures();
        out
    }

    /// Frames offered to `push` so far.
    pub fn offered_frame_count(&self) -> u64 {
        self.offered_frames
    }

    /// Frames dropped by backpressure shedding at the pool edge.
    pub fn shed_frame_count(&self) -> u64 {
        self.shed_frames
    }

    /// Frames lost to shard failures observed so far.
    pub fn lost_frame_count(&self) -> u64 {
        self.lost_frames
    }

    /// Takes the shard failures observed so far (their lost-frame cost
    /// is already folded into [`ThreadedIngest::lost_frame_count`]).
    pub fn take_shard_failures(&mut self) -> Vec<ShardFailure> {
        self.absorb_failures();
        std::mem::take(&mut self.failures)
    }

    /// Shards whose worker has died and not been restarted.
    pub fn poisoned_shards(&mut self) -> Vec<usize> {
        self.pool.poisoned_shards()
    }

    /// Shard restarts performed by the automatic supervision policy
    /// (manual [`ThreadedIngest::restart_shard`] calls are not
    /// counted).
    pub fn supervised_restart_count(&self) -> u64 {
        self.pool.restart_count()
    }

    /// Rebuilds a shard's worker with a fresh [`FilteringService`].
    /// Its streams lose their sequence windows and re-key as stream
    /// restarts — visible, not silent.
    pub fn restart_shard(&mut self, shard: usize) {
        self.pool.restart_shard(shard);
        self.absorb_failures();
    }

    /// Drains remaining work and joins the workers. The report's
    /// batches complete the submission-order sequence, and its ledger
    /// satisfies `offered == processed + shed + lost` (any frames still
    /// pending unsubmitted are folded into `shed`).
    pub fn finish(mut self) -> IngestReport {
        // Unsubmitted pending frames would dodge the ledger: submit
        // them (blocking is fine at shutdown — the queues drain).
        for shard in 0..self.shards {
            if !self.pending[shard].is_empty() {
                let frames = std::mem::take(&mut self.pending[shard]);
                let count = frames.len() as u64;
                let seq =
                    self.pool.submit_tagged(shard, IngestJob::Frames(frames), EdgeClass::Data);
                self.frames_per_seq.insert(seq, count);
            }
        }
        self.absorb_failures();
        let mut failures = std::mem::take(&mut self.failures);
        let mut lost = self.lost_frames;
        let frames_per_seq = std::mem::take(&mut self.frames_per_seq);
        let (batches, late) = self.pool.finish();
        for f in late {
            lost += frames_per_seq.get(&f.seq).copied().unwrap_or(0);
            failures.push(f);
        }
        IngestReport {
            batches,
            failures,
            offered_frames: self.offered_frames,
            shed_frames: self.shed_frames,
            lost_frames: lost,
        }
    }
}

impl std::fmt::Debug for ThreadedIngest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedIngest")
            .field("shards", &self.shards)
            .field("batch_size", &self.batch_size)
            .finish_non_exhaustive()
    }
}

/// A job for one threaded filtering shard (the A edge).
enum FilterJob {
    /// One boundary frame.
    Frame(PendingFrame),
    /// A run of consecutive boundary frames bound for this shard. The
    /// job rides on the run's **first** root; frame `i` belongs to root
    /// `first + i` (the driver allocates the run's roots consecutively),
    /// so one job — one queue slot, one result hand-off, one counter
    /// snapshot — carries the whole run.
    Frames(Vec<PendingFrame>),
    /// Flush reorder buffers up to the given instant.
    Flush(SimTime),
}

/// What a filtering shard produced for one job, plus the shard's
/// counter snapshot (riding on the result keeps the router's metrics
/// view current without reaching into worker-owned state).
struct FilterOut {
    kind: FilterOutKind,
    /// The producing shard.
    shard: usize,
    /// The shard's counters after this job.
    stats: FilterStats,
    /// The shard's earliest reorder deadline after this job.
    next_deadline: Option<SimTime>,
}

/// The payload of a [`FilterOut`].
enum FilterOutKind {
    /// The frame's service outputs (Observed / AckReceived / Filtered
    /// emissions, in the order a single-threaded ingest would emit
    /// them).
    Frame(Vec<ServiceOutput>),
    /// Per-frame service outputs for a [`FilterJob::Frames`] run: entry
    /// `i` belongs to root `first + i`, where `first` is the root the
    /// job was submitted under.
    Frames(Vec<Vec<ServiceOutput>>),
    /// The shard's flush releases, in its own stream-id order.
    Flush(Vec<Delivery>),
}

/// A job for one threaded dispatch shard (the B edge).
struct DispatchJob {
    delivery: Delivery,
    depth: u32,
}

/// The bookkeeping one routed delivery owes the router. Dispatch
/// workers are pure matchers over the shared subscription table; every
/// state mutation (stream catalogue, counters, claimed flags) rides
/// back in the note and is applied at the B drain — global submission
/// order, the exact order the FIFO router handles `Filtered` events.
struct RouteNote {
    stream: garnet_wire::StreamId,
    payload_len: usize,
    /// First boundary admission of the delivery's lead observation —
    /// with `delivered_at` and the root's `now`, everything the B drain
    /// needs to record the three latency spans.
    first_received_at: SimTime,
    delivered_at: SimTime,
    depth: u32,
    /// Subscribers matched (0 = the delivery went to the Orphanage).
    matched: usize,
    /// True if the shard's match cache (re)built this set — surfaces as
    /// a `CacheRebuild` trace record behind the `Filtered` one.
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    rebuilt: bool,
    /// Which dispatch shard routed the delivery, so the drain can slot
    /// the stats snapshot below.
    cache_shard: usize,
    /// Cumulative match-cache counters of that shard, snapshotted after
    /// this route. Riding every note costs four u64 copies and spares
    /// the worker any shared-state synchronisation.
    cache_stats: garnet_net::MatchCacheStats,
}

/// Routes one delivery against the subscription table — the B worker
/// body. `cache` is the worker's shard-local match cache.
fn route_delivery(
    table: &SubscriptionTable,
    cache: &mut garnet_net::MatchCache,
    shard: usize,
    delivery: Delivery,
    depth: u32,
) -> (Vec<ServiceOutput>, RouteNote) {
    let (recipients, rebuilt) = cache.resolve(table, delivery.msg.stream());
    let note = RouteNote {
        stream: delivery.msg.stream(),
        payload_len: delivery.msg.payload().len(),
        first_received_at: delivery.first_received_at,
        delivered_at: delivery.delivered_at,
        depth,
        matched: recipients.len(),
        rebuilt,
        cache_shard: shard,
        cache_stats: cache.stats(),
    };
    let outputs = if recipients.is_empty() {
        vec![ServiceOutput::Emit(ServiceEvent::Orphaned(delivery))]
    } else {
        recipients
            .iter()
            .map(|&recipient| ServiceOutput::Deliver {
                recipient,
                delivery: delivery.clone(),
                depth,
            })
            .collect()
    };
    (outputs, note)
}

/// A job for the control worker (the C edge): one boundary event's
/// control events, pumped to quiescence.
struct ControlJob {
    events: Vec<ServiceEvent>,
    now: SimTime,
}

/// The [`EdgeClass`] tag for a control-stage hand-off: the
/// highest-priority [`crate::qos::PriorityClass`] among the bundled
/// events (a batch carrying any graph-keeping event is control-class;
/// a pure actuation chain tags as actuation).
fn control_batch_class(batch: &[(u64, ControlJob)]) -> EdgeClass {
    use crate::qos::PriorityClass;
    let top = batch
        .iter()
        .flat_map(|(_, job)| job.events.iter())
        .map(PriorityClass::of)
        .min()
        .unwrap_or(PriorityClass::Control);
    match top {
        PriorityClass::Control => EdgeClass::Control,
        PriorityClass::Actuation => EdgeClass::Actuation,
        PriorityClass::Data => EdgeClass::Data,
    }
}

/// The trace record for one `Filtered` hop handed to a dispatch shard,
/// field-identical to the single-threaded router's record for the same
/// delivery (the shard id is the only extra).
#[cfg(feature = "trace")]
fn dispatch_record(delivery: &Delivery, now: SimTime, shard: usize) -> TraceRecord {
    TraceRecord {
        stream: Some(delivery.msg.stream().to_raw()),
        sensor: Some(delivery.msg.stream().sensor().as_u32()),
        age_us: now.saturating_since(delivery.first_received_at).as_micros(),
        shard: Some(shard as u32),
        ..TraceRecord::new(
            now.as_micros(),
            TraceStage::Dispatch,
            TraceEventKind::Filtered,
            TraceOutcome::Delivered,
        )
    }
}

/// Everything a [`ThreadedRouter`] tracks about one boundary event
/// while its work is spread across the three edges.
struct RootState {
    now: SimTime,
    a_expected: usize,
    a_done: usize,
    is_flush: bool,
    flush_submitted: bool,
    flush_deliveries: Vec<Delivery>,
    b_expected: usize,
    b_done: usize,
    c_events: Vec<ServiceEvent>,
    c_submitted: bool,
    c_done: bool,
    outputs: Vec<ServiceOutput>,
    /// Per-root trace buffer, merged into the recorder in canonical
    /// order when the root is released.
    #[cfg(feature = "trace")]
    trace: RootTrace,
}

impl RootState {
    fn new(now: SimTime) -> Self {
        RootState {
            now,
            a_expected: 0,
            a_done: 0,
            is_flush: false,
            flush_submitted: false,
            flush_deliveries: Vec::new(),
            b_expected: 0,
            b_done: 0,
            c_events: Vec::new(),
            c_submitted: false,
            c_done: false,
            outputs: Vec::new(),
            #[cfg(feature = "trace")]
            trace: RootTrace::default(),
        }
    }

    /// All filtering and dispatch work has landed (completed or been
    /// attributed to a failure): the root's control events are final.
    fn data_done(&self) -> bool {
        self.a_done == self.a_expected && self.b_done == self.b_expected
    }

    fn complete(&self) -> bool {
        self.data_done() && self.c_submitted && self.c_done
    }
}

/// The effects of one boundary event, released in boundary order.
#[derive(Debug)]
pub struct RootOutput {
    /// The boundary event's sequence number (the order
    /// [`ThreadedRouter`] releases outputs in).
    pub root: u64,
    /// Everything that escaped the service graph for this event:
    /// [`ServiceOutput::Deliver`]s in dispatch order, then the control
    /// cascade's terminals, exactly as the single-threaded [`Router`]
    /// would surface them.
    pub outputs: Vec<ServiceOutput>,
}

/// Terminal accounting for a threaded router run.
#[derive(Debug, Default)]
pub struct ThreadedRouterReport {
    /// Outputs still unreleased when [`ThreadedRouter::finish`] ran
    /// (normally empty — finish drains first).
    pub outputs: Vec<RootOutput>,
    /// Worker failures over the run, attributed to their boundary
    /// events.
    pub failures: Vec<RootFailure>,
    /// Frames offered to [`ThreadedRouter::push_frame`].
    pub offered_frames: u64,
    /// Frames dropped by backpressure shedding at the filtering edge.
    pub shed_frames: u64,
    /// Jobs lost to shard failures across all edges.
    pub lost_jobs: u64,
    /// Shard restarts performed by the supervision policy.
    pub shard_restarts: u64,
    /// The run's flight-recorder contents (empty without the `trace`
    /// feature).
    pub trace: TraceSnapshot,
}

/// Everything [`ThreadedRouter::into_parts`] leaves behind once the
/// worker pools are joined: the run report plus the state a hosting
/// facade keeps serving reads from after shutdown.
#[derive(Debug)]
pub struct ThreadedRouterParts {
    /// Terminal accounting (unreleased outputs, failures, ledger,
    /// trace).
    pub report: ThreadedRouterReport,
    /// The stream catalogue at shutdown.
    pub streams: ShardedStreamRegistry,
    /// The control graph, when it ran inline ([`ThreadedRouter::hosted`]).
    pub control: Option<ControlGraph>,
    /// Final ingest counters.
    pub filter_stats: FilterStats,
    /// Final dispatch counters.
    pub dispatch_stats: DispatchStats,
    /// Pipeline latency spans at shutdown.
    pub spans: PipelineSpans,
    /// Admission-depth gauges at shutdown.
    pub depths: QueueDepthGauges,
}

/// How a [`ThreadedRouter`] runs its control plane.
// One instance per router, so the Worker/Inline size gap costs nothing.
#[allow(clippy::large_enum_variant)]
enum ControlStage {
    /// A dedicated worker pumping each root's cascade — the
    /// [`ThreadedRouter::new`] shape: everything off-thread.
    Worker(StageEdge<ControlJob, (Vec<ServiceOutput>, Vec<TraceRecord>)>),
    /// The graph pumped inline at the submission point — the
    /// facade-hosted shape, so the facade's synchronous control calls
    /// (orphanage claims, location reads, profile registration) can
    /// borrow the graph between pumps.
    Inline(Box<ControlGraph>),
}

/// The full service graph on OS threads: one worker (or shard pool) per
/// stage, FIFO per edge, deterministic output.
///
/// Three [`StageEdge`]s over `garnet-net`'s [`ShardPool`]:
///
/// * **A — filtering**: one [`FilteringService`] per ingest shard,
///   partitioned by [`shard_of_sensor`];
/// * **B — dispatch**: one [`DispatchStage`] per dispatch shard over a
///   frozen subscription-table snapshot, same hash;
/// * **C — control**: a single [`ControlGraph`] worker running each
///   boundary event's control cascade to quiescence.
///
/// Every boundary event (frame, flush, tick) is stamped with a **root**
/// sequence number at entry. Edges merge their outputs in submission
/// order (the [`StageEdge`] contract), the driver forwards each root's
/// work through B and C in root order, and finished roots are released
/// strictly in root order — so the output sequence is bit-identical to
/// the single-threaded [`Router`] pumping the same boundary events,
/// regardless of thread scheduling. Within one root, control events are
/// ordered exactly as the FIFO router would queue them: ingest-origin
/// events (Observed, AckReceived) first, then dispatch-origin Orphaned
/// events in dispatch order.
///
/// Determinism holds while subscriptions are static over the run (the B
/// workers route against snapshots) — the same contract as
/// [`ThreadedIngest`]'s `matched` accounting.
///
/// Admission: the frame edge honours the configured
/// [`OverloadPolicy`] — `Block` propagates backpressure to the caller,
/// `Shed` drops at capacity with the drop counted.
/// [`OverloadPolicy::CoalesceFrames`] degrades to `Shed` here: a
/// channel edge has no queue to resolve same-stream pairs against.
/// Interior edges always block — control events are never dropped,
/// matching the router's doctrine. Worker panics are caught by the
/// pool, attributed to their root (which completes rather than hanging
/// the release order), and — with a [`SupervisionConfig`] — the shard
/// is rebuilt within the restart budget.
pub struct ThreadedRouter {
    a: StageEdge<FilterJob, FilterOut>,
    b: StageEdge<DispatchJob, (Vec<ServiceOutput>, RouteNote)>,
    c: ControlStage,
    ingest_shards: usize,
    dispatch_shards: usize,
    policy: OverloadPolicy,
    /// The live subscription table every dispatch worker reads. The
    /// determinism contract: mutations only happen while the graph is
    /// quiescent (the hosting facade is single-threaded), so every job
    /// of a run sees the same table.
    subscriptions: Arc<RwLock<SubscriptionTable>>,
    /// The stream catalogue, updated at the B drain in global
    /// submission order.
    streams: ShardedStreamRegistry,
    /// Latest per-ingest-shard (counters, reorder deadline) snapshot,
    /// refreshed at the A drain.
    a_stats: Vec<(FilterStats, Option<SimTime>)>,
    /// Latest per-dispatch-shard match-cache snapshot, refreshed at the
    /// B drain (each note carries its shard's cumulative counters).
    b_cache_stats: Vec<garnet_net::MatchCacheStats>,
    /// Root span of each in-flight [`FilterJob::Frames`] run, keyed by
    /// the run's first root: a failed run must close every root it
    /// carried, not just the one the job rode on.
    a_spans: BTreeMap<u64, usize>,
    dispatched: u64,
    deliveries: u64,
    unclaimed: u64,
    fanout: Histogram,
    roots: BTreeMap<u64, RootState>,
    next_root: u64,
    /// Next root whose control job may be submitted (C is FIFO in root
    /// order).
    next_c_submit: u64,
    /// Next root to release (outputs leave in root order).
    next_release: u64,
    offered_frames: u64,
    shed_frames: u64,
    lost_jobs: u64,
    failures: Vec<RootFailure>,
    /// The flight recorder (a zero-sized no-op unless the `trace`
    /// feature is on). Per-root buffers merge into it at release, so
    /// its record order matches the single-threaded router's.
    tracer: Tracer,
    /// Always-on latency spans, recorded at the B drain in global
    /// submission order — the same once-per-delivery point the FIFO
    /// router's `step` records at.
    spans: PipelineSpans,
    /// Per-ingest-shard admission-depth gauges, sampled at push time.
    depths: QueueDepthGauges,
}

impl ThreadedRouter {
    /// Spawns the graph with blocking backpressure, a 4-job queue per
    /// shard and no supervision. `control_factory` builds the control
    /// worker's [`ControlGraph`] (and rebuilds it on a supervised
    /// restart); `subscriptions` is snapshotted per dispatch worker.
    pub fn new(
        config: FilterConfig,
        ingest_shards: usize,
        dispatch_shards: usize,
        subscriptions: &SubscriptionTable,
        control_factory: impl FnMut() -> ControlGraph + 'static,
    ) -> Self {
        Self::with_options(
            config,
            ingest_shards,
            dispatch_shards,
            subscriptions,
            control_factory,
            OverloadPolicy::Block,
            4,
            None,
            garnet_net::DispatchCacheConfig::default(),
        )
    }

    /// [`ThreadedRouter::new`] with an explicit frame-edge policy,
    /// per-shard queue bound, supervision policy and match-cache
    /// configuration.
    #[allow(clippy::too_many_arguments)]
    pub fn with_options(
        config: FilterConfig,
        ingest_shards: usize,
        dispatch_shards: usize,
        subscriptions: &SubscriptionTable,
        mut control_factory: impl FnMut() -> ControlGraph + 'static,
        policy: OverloadPolicy,
        queue_capacity: usize,
        supervision: Option<SupervisionConfig>,
        cache: garnet_net::DispatchCacheConfig,
    ) -> Self {
        let ingest_shards = ingest_shards.max(1);
        let dispatch_shards = dispatch_shards.max(1);
        let capacity = queue_capacity.max(1);
        let subscriptions = Arc::new(RwLock::new(subscriptions.clone()));
        let a = Self::filter_edge(config, ingest_shards, capacity, supervision);
        let b = Self::dispatch_edge(dispatch_shards, capacity, supervision, &subscriptions, cache);
        let c = ControlStage::Worker(StageEdge::new(1, capacity, supervision, move |_shard| {
            let mut control = control_factory();
            Box::new(move |job: ControlJob| control.pump_traced(job.events, job.now))
        }));
        Self::assemble(a, b, c, ingest_shards, dispatch_shards, policy, subscriptions)
    }

    /// Spawns the facade-hosted shape: the control graph pumped inline
    /// (so the facade's synchronous control calls can reach it), the
    /// live subscription table shared with the dispatch workers, and
    /// the frame edge governed by `overload` exactly as it governs the
    /// FIFO router's queue — `None` means blocking admission that never
    /// sheds, so the overload ledger stays `offered == delivered`.
    pub fn hosted(
        config: FilterConfig,
        ingest_shards: usize,
        dispatch_shards: usize,
        subscriptions: Arc<RwLock<SubscriptionTable>>,
        control: ControlGraph,
        overload: Option<OverloadConfig>,
        cache: garnet_net::DispatchCacheConfig,
    ) -> Self {
        let ingest_shards = ingest_shards.max(1);
        let dispatch_shards = dispatch_shards.max(1);
        let (policy, capacity) = match overload {
            None => (OverloadPolicy::Block, 4),
            Some(cfg) => (cfg.policy, cfg.capacity.max(1)),
        };
        // The deployable runtime self-heals: a poisoned shard is
        // rebuilt under the default supervision budget instead of
        // staying dead for the facade's lifetime. The lost run still
        // surfaces as `ShardFailure`s — restarts are visible, never
        // silent.
        let supervision = Some(SupervisionConfig::default());
        let a = Self::filter_edge(config, ingest_shards, capacity, supervision);
        let b = Self::dispatch_edge(dispatch_shards, capacity, supervision, &subscriptions, cache);
        let c = ControlStage::Inline(Box::new(control));
        Self::assemble(a, b, c, ingest_shards, dispatch_shards, policy, subscriptions)
    }

    fn filter_edge(
        config: FilterConfig,
        shards: usize,
        capacity: usize,
        supervision: Option<SupervisionConfig>,
    ) -> StageEdge<FilterJob, FilterOut> {
        StageEdge::new(shards, capacity, supervision, move |shard| {
            let mut filter = FilteringService::new(config);
            Box::new(move |job: FilterJob| {
                let kind = match job {
                    FilterJob::Frame((receiver, rssi_dbm, frame, at)) => {
                        let result = filter.on_frame(receiver, rssi_dbm, &frame, at);
                        FilterOutKind::Frame(ShardedIngest::frame_outputs(result))
                    }
                    FilterJob::Frames(frames) => {
                        let arrivals: Vec<FrameArrival> =
                            frames.into_iter().map(pending_to_arrival).collect();
                        FilterOutKind::Frames(
                            filter
                                .on_batch(&arrivals)
                                .into_iter()
                                .map(ShardedIngest::frame_outputs)
                                .collect(),
                        )
                    }
                    FilterJob::Flush(now) => FilterOutKind::Flush(filter.on_tick(now)),
                };
                FilterOut {
                    kind,
                    shard,
                    stats: FilterStats::of(&filter),
                    next_deadline: filter.next_deadline(),
                }
            })
        })
    }

    fn dispatch_edge(
        shards: usize,
        capacity: usize,
        supervision: Option<SupervisionConfig>,
        subscriptions: &Arc<RwLock<SubscriptionTable>>,
        cache: garnet_net::DispatchCacheConfig,
    ) -> StageEdge<DispatchJob, (Vec<ServiceOutput>, RouteNote)> {
        let subs = subscriptions.clone();
        StageEdge::new(shards, capacity, supervision, move |shard| {
            let subs = subs.clone();
            // Shard-local: streams are pinned to shards, so each cache
            // sees the same stream sequence its FIFO twin would. A
            // supervised restart starts cold — correct, just slower
            // until the working set rebuilds.
            let mut cache = garnet_net::MatchCache::new(cache);
            Box::new(move |job: DispatchJob| {
                let table = subs.read().unwrap_or_else(|e| e.into_inner());
                route_delivery(&table, &mut cache, shard, job.delivery, job.depth)
            })
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        a: StageEdge<FilterJob, FilterOut>,
        b: StageEdge<DispatchJob, (Vec<ServiceOutput>, RouteNote)>,
        c: ControlStage,
        ingest_shards: usize,
        dispatch_shards: usize,
        policy: OverloadPolicy,
        subscriptions: Arc<RwLock<SubscriptionTable>>,
    ) -> Self {
        ThreadedRouter {
            a,
            b,
            c,
            ingest_shards,
            dispatch_shards,
            policy,
            subscriptions,
            streams: ShardedStreamRegistry::new(dispatch_shards),
            a_stats: vec![(FilterStats::default(), None); ingest_shards],
            b_cache_stats: vec![garnet_net::MatchCacheStats::default(); dispatch_shards],
            a_spans: BTreeMap::new(),
            dispatched: 0,
            deliveries: 0,
            unclaimed: 0,
            fanout: Histogram::new(),
            roots: BTreeMap::new(),
            next_root: 0,
            next_c_submit: 0,
            next_release: 0,
            offered_frames: 0,
            shed_frames: 0,
            lost_jobs: 0,
            failures: Vec::new(),
            tracer: Tracer::new(TraceConfig::default()),
            spans: PipelineSpans::new(),
            depths: QueueDepthGauges::new(ingest_shards),
        }
    }

    /// Replaces the flight recorder with one of the given capacity. A
    /// no-op without the `trace` feature.
    pub fn configure_trace(&mut self, config: TraceConfig) {
        self.tracer = Tracer::new(config);
    }

    /// The flight recorder's current contents: records for every root
    /// released so far, in release (== root) order, each root's hops in
    /// the canonical single-threaded order. Empty without the `trace`
    /// feature.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.tracer.snapshot()
    }

    /// Number of filtering shards.
    pub fn ingest_shard_count(&self) -> usize {
        self.ingest_shards
    }

    /// Number of dispatch shards.
    pub fn dispatch_shard_count(&self) -> usize {
        self.dispatch_shards
    }

    fn new_root(&mut self, now: SimTime) -> u64 {
        let root = self.next_root;
        self.next_root += 1;
        self.roots.insert(root, RootState::new(now));
        root
    }

    /// Offers one boundary frame to the graph, returning any roots that
    /// completed. Under [`OverloadPolicy::Block`] this blocks while the
    /// frame's filtering shard is at capacity; the shedding policies
    /// drop instead (counted in `shed_frames`), and the shed root
    /// completes empty so release order is unbroken.
    pub fn push_frame(
        &mut self,
        receiver: ReceiverId,
        rssi_dbm: f64,
        frame: FrameBytes,
        at: SimTime,
    ) -> Vec<RootOutput> {
        self.offered_frames += 1;
        let stream = peek_stream(&frame);
        let shard = match stream {
            Some(stream) => shard_of_sensor(stream.sensor().as_u32(), self.ingest_shards),
            None => 0,
        };
        self.depths.note_admitted(shard);
        let root = self.new_root(at);
        #[cfg(feature = "trace")]
        let base = TraceRecord {
            stream: stream.map(|s| s.to_raw()),
            sensor: stream.map(|s| s.sensor().as_u32()),
            shard: Some(shard as u32),
            ..TraceRecord::new(
                at.as_micros(),
                TraceStage::Filtering,
                TraceEventKind::Frame,
                TraceOutcome::Delivered,
            )
        };
        let job = FilterJob::Frame((receiver, rssi_dbm, frame, at));
        let _outcome = match self.policy {
            OverloadPolicy::Block => {
                self.roots.get_mut(&root).expect("just inserted").a_expected = 1;
                self.a.submit_classed(shard, root, job, EdgeClass::Data);
                TraceOutcome::Delivered
            }
            OverloadPolicy::Shed | OverloadPolicy::CoalesceFrames => {
                match self.a.try_submit_classed(shard, root, job, EdgeClass::Data) {
                    Ok(()) => {
                        self.roots.get_mut(&root).expect("just inserted").a_expected = 1;
                        TraceOutcome::Delivered
                    }
                    Err(RefusedJob::Full(_)) => {
                        self.shed_frames += 1;
                        TraceOutcome::Shed
                    }
                    Err(RefusedJob::Poisoned(_)) => {
                        self.lost_jobs += 1;
                        TraceOutcome::Failed
                    }
                }
            }
        };
        #[cfg(feature = "trace")]
        self.roots
            .get_mut(&root)
            .expect("just inserted")
            .trace
            .push_pre(TraceRecord { outcome: _outcome, ..base });
        self.poll()
    }

    /// Offers a burst of boundary frames as one call. Every frame still
    /// gets its own root — release order, tracing and the offered/shed
    /// ledger are identical to calling [`ThreadedRouter::push_frame`]
    /// per frame — but each run of consecutive frames bound for the
    /// same filtering shard travels as **one** multi-frame job
    /// ([`FilterJob::Frames`] under the run's first root), and the
    /// edges are polled once for the whole burst. Under the shedding
    /// policies this degrades to the per-frame path so refusals stay
    /// per-frame.
    pub fn push_frames(
        &mut self,
        frames: impl IntoIterator<Item = (ReceiverId, f64, FrameBytes)>,
        at: SimTime,
    ) -> Vec<RootOutput> {
        if self.policy != OverloadPolicy::Block {
            let mut out = Vec::new();
            for (receiver, rssi_dbm, frame) in frames {
                out.extend(self.push_frame(receiver, rssi_dbm, frame, at));
            }
            return out;
        }
        // Root order must equal A-edge submission order (the B
        // sequencer leans on it), so only consecutive same-shard runs
        // may share a job.
        let mut run_shard = 0usize;
        let mut run_first = 0u64;
        let mut run: Vec<PendingFrame> = Vec::new();
        for (receiver, rssi_dbm, frame) in frames {
            self.offered_frames += 1;
            let stream = peek_stream(&frame);
            let shard = match stream {
                Some(stream) => shard_of_sensor(stream.sensor().as_u32(), self.ingest_shards),
                None => 0,
            };
            self.depths.note_admitted(shard);
            let root = self.new_root(at);
            let state = self.roots.get_mut(&root).expect("just inserted");
            state.a_expected = 1;
            #[cfg(feature = "trace")]
            state.trace.push_pre(TraceRecord {
                stream: stream.map(|s| s.to_raw()),
                sensor: stream.map(|s| s.sensor().as_u32()),
                shard: Some(shard as u32),
                ..TraceRecord::new(
                    at.as_micros(),
                    TraceStage::Filtering,
                    TraceEventKind::Frame,
                    TraceOutcome::Delivered,
                )
            });
            if shard != run_shard && !run.is_empty() {
                let jobs = std::mem::take(&mut run);
                self.submit_frame_run(run_shard, run_first, jobs);
            }
            if run.is_empty() {
                run_first = root;
            }
            run_shard = shard;
            run.push((receiver, rssi_dbm, frame, at));
        }
        if !run.is_empty() {
            self.submit_frame_run(run_shard, run_first, run);
        }
        self.poll()
    }

    /// Submits one consecutive-root run to the filtering edge: a single
    /// frame rides as [`FilterJob::Frame`], a longer run as one
    /// [`FilterJob::Frames`] job under its first root, with the span
    /// recorded so a failed run still closes every root it carried.
    fn submit_frame_run(&mut self, shard: usize, first: u64, mut run: Vec<PendingFrame>) {
        if run.len() == 1 {
            let frame = run.pop().expect("run of one");
            self.a.submit_classed(shard, first, FilterJob::Frame(frame), EdgeClass::Data);
        } else {
            self.a_spans.insert(first, run.len());
            self.a.submit_classed(shard, first, FilterJob::Frames(run), EdgeClass::Data);
        }
    }

    /// Flushes every filtering shard's reorder buffers as one boundary
    /// event; releases merge across shards into ascending stream-id
    /// order before dispatch, matching [`ShardedIngest::on_tick`].
    /// Control path: always blocks, never sheds.
    pub fn push_flush(&mut self, now: SimTime) -> Vec<RootOutput> {
        let root = self.new_root(now);
        {
            let state = self.roots.get_mut(&root).expect("just inserted");
            state.is_flush = true;
            state.a_expected = self.ingest_shards;
            #[cfg(feature = "trace")]
            state.trace.push_pre(TraceRecord::new(
                now.as_micros(),
                TraceStage::Filtering,
                TraceEventKind::FlushReorder,
                TraceOutcome::Delivered,
            ));
        }
        for shard in 0..self.ingest_shards {
            self.a.submit_classed(shard, root, FilterJob::Flush(now), EdgeClass::Control);
        }
        self.poll()
    }

    /// Runs the actuation service's retry/expiry sweep as one boundary
    /// event on the control stage.
    pub fn push_tick(&mut self, now: SimTime) -> Vec<RootOutput> {
        self.push_control(ServiceEvent::ActuationTick, now)
    }

    /// Runs one control event (and everything it cascades into) as a
    /// boundary event. Control path: always admitted, never shed.
    pub fn push_control(&mut self, ev: ServiceEvent, now: SimTime) -> Vec<RootOutput> {
        let root = self.new_root(now);
        self.roots.get_mut(&root).expect("just inserted").c_events.push(ev);
        self.poll()
    }

    /// Re-injects a filtered delivery as a boundary event headed
    /// straight for dispatch — the facade's derived-stream publication
    /// path ([`crate::ConsumerAction::PublishDerived`]).
    pub fn push_filtered(
        &mut self,
        delivery: Delivery,
        depth: u32,
        now: SimTime,
    ) -> Vec<RootOutput> {
        let shard = shard_of_sensor(delivery.msg.stream().sensor().as_u32(), self.dispatch_shards);
        let root = self.new_root(now);
        let state = self.roots.get_mut(&root).expect("just inserted");
        state.b_expected = 1;
        #[cfg(feature = "trace")]
        state.trace.push_dispatch(dispatch_record(&delivery, now, shard));
        self.b.submit_classed(shard, root, DispatchJob { delivery, depth }, EdgeClass::Data);
        self.poll()
    }

    /// Routes one boundary event to its owning edge — the hosting
    /// facade's single typed entry point.
    pub fn push_event(&mut self, ev: ServiceEvent, now: SimTime) -> Vec<RootOutput> {
        match ev {
            ServiceEvent::Frame { receiver, rssi_dbm, frame } => {
                self.push_frame(receiver, rssi_dbm, frame, now)
            }
            ServiceEvent::FrameBatch(frames) => {
                self.push_frames(frames.into_iter().map(|f| (f.receiver, f.rssi_dbm, f.frame)), now)
            }
            ServiceEvent::FlushReorder => self.push_flush(now),
            ServiceEvent::Filtered { delivery, depth } => self.push_filtered(delivery, depth, now),
            other => self.push_control(other, now),
        }
    }

    /// True when every boundary event pushed so far has been released.
    pub fn is_quiescent(&self) -> bool {
        self.next_release == self.next_root
    }

    /// A sealed flush root's dispatch jobs: the per-shard releases
    /// merged into ascending stream-id order (each shard released in
    /// its own stream order and streams are partitioned, so the sort is
    /// the exact merge).
    fn flush_jobs(state: &mut RootState, dispatch_shards: usize) -> Vec<(usize, DispatchJob)> {
        if !state.is_flush || state.a_done != state.a_expected || state.flush_submitted {
            return Vec::new();
        }
        state.flush_submitted = true;
        let mut deliveries = std::mem::take(&mut state.flush_deliveries);
        deliveries.sort_by_key(|d| d.msg.stream().to_raw());
        let mut jobs = Vec::with_capacity(deliveries.len());
        for delivery in deliveries {
            state.b_expected += 1;
            let shard = shard_of_sensor(delivery.msg.stream().sensor().as_u32(), dispatch_shards);
            #[cfg(feature = "trace")]
            state.trace.push_dispatch(dispatch_record(&delivery, state.now, shard));
            jobs.push((shard, DispatchJob { delivery, depth: 0 }));
        }
        jobs
    }

    /// Folds one frame's filtering outputs into its root: Filtered
    /// emissions become dispatch jobs (appended to `b_pending` in
    /// submission order — the B edge's sequencing), Observed /
    /// AckReceived emissions queue as control events ahead of them,
    /// exactly as the FIFO router would order the same frame.
    fn absorb_frame_result(
        &mut self,
        root: u64,
        outputs: Vec<ServiceOutput>,
        b_pending: &mut Vec<(usize, u64, DispatchJob)>,
    ) {
        let Some(state) = self.roots.get_mut(&root) else { return };
        state.a_done += 1;
        for o in outputs {
            match o {
                ServiceOutput::Emit(ServiceEvent::Filtered { delivery, depth }) => {
                    state.b_expected += 1;
                    let shard = shard_of_sensor(
                        delivery.msg.stream().sensor().as_u32(),
                        self.dispatch_shards,
                    );
                    #[cfg(feature = "trace")]
                    state.trace.push_dispatch(dispatch_record(&delivery, state.now, shard));
                    b_pending.push((shard, root, DispatchJob { delivery, depth }));
                }
                // Observed / AckReceived: control events the FIFO
                // router would queue before the Filtered ones — same
                // order here.
                ServiceOutput::Emit(ev) => state.c_events.push(ev),
                other => state.outputs.push(other),
            }
        }
        // Filtering has fully landed: everything in c_events so far
        // precedes dispatch in the canonical FIFO order.
        #[cfg(feature = "trace")]
        if state.a_done == state.a_expected {
            state.trace.set_pre_c(state.c_events.len());
        }
    }

    /// Drives every edge forward without blocking on results, returning
    /// the roots that completed (in root order).
    pub fn poll(&mut self) -> Vec<RootOutput> {
        // A outputs arrive in submission order == root order, so B jobs
        // are submitted in (root, within-root stream) order with no
        // reorder buffer: this loop is the B edge's sequencer. Jobs are
        // accumulated across the whole A drain and handed to B in
        // consecutive same-shard runs, preserving that global order
        // while amortising the channel hand-off over the burst.
        let mut b_pending: Vec<(usize, u64, DispatchJob)> = Vec::new();
        for (root, out) in self.a.drain() {
            self.a_stats[out.shard] = (out.stats, out.next_deadline);
            match out.kind {
                FilterOutKind::Frame(outputs) => {
                    self.absorb_frame_result(root, outputs, &mut b_pending);
                }
                FilterOutKind::Frames(per_frame) => {
                    // A run's roots are consecutive from the root the
                    // job rode on; attributing entry i to root + i is
                    // exactly the per-frame drain.
                    self.a_spans.remove(&root);
                    for (i, outputs) in per_frame.into_iter().enumerate() {
                        self.absorb_frame_result(root + i as u64, outputs, &mut b_pending);
                    }
                }
                FilterOutKind::Flush(deliveries) => {
                    let mut b_jobs = Vec::new();
                    if let Some(state) = self.roots.get_mut(&root) {
                        state.a_done += 1;
                        state.flush_deliveries.extend(deliveries);
                        b_jobs = Self::flush_jobs(state, self.dispatch_shards);
                        // Filtering has fully landed: everything in
                        // c_events so far precedes dispatch in the
                        // canonical FIFO order.
                        #[cfg(feature = "trace")]
                        if state.a_done == state.a_expected {
                            state.trace.set_pre_c(state.c_events.len());
                        }
                    }
                    b_pending.extend(b_jobs.into_iter().map(|(shard, job)| (shard, root, job)));
                }
            }
        }
        for f in self.a.take_failures() {
            self.lost_jobs += 1;
            // A lost multi-frame run closes every root it carried:
            // sealing must never hang on work that will not arrive.
            let span = self.a_spans.remove(&f.root).unwrap_or(1) as u64;
            for root in f.root..f.root.saturating_add(span) {
                let mut b_jobs = Vec::new();
                if let Some(state) = self.roots.get_mut(&root) {
                    state.a_done += 1;
                    #[cfg(feature = "trace")]
                    {
                        state.trace.fail_pre();
                        if state.a_done == state.a_expected {
                            state.trace.set_pre_c(state.c_events.len());
                        }
                    }
                    b_jobs = Self::flush_jobs(state, self.dispatch_shards);
                }
                b_pending.extend(b_jobs.into_iter().map(|(shard, job)| (shard, root, job)));
            }
            self.failures.push(f);
        }
        let mut it = b_pending.into_iter().peekable();
        while let Some((shard, root, job)) = it.next() {
            let mut jobs = vec![(root, job)];
            while it.peek().is_some_and(|(s, _, _)| *s == shard) {
                let (_, r, j) = it.next().expect("peeked");
                jobs.push((r, j));
            }
            self.b.submit_batch_classed(shard, jobs, EdgeClass::Data);
        }

        for (root, (outputs, note)) in self.b.drain() {
            // The note lands here, in the edge's global submission
            // order — the exact order the FIFO router handles
            // `Filtered` events — so the catalogue and counters are
            // bit-identical to the single-threaded dispatch stage.
            self.streams.note_message(
                note.stream,
                note.payload_len,
                note.delivered_at,
                note.depth > 0,
            );
            self.dispatched += 1;
            self.deliveries += note.matched as u64;
            self.fanout.record(note.matched as u64);
            if note.matched == 0 {
                self.unclaimed += 1;
            }
            self.streams.set_claimed(note.stream, note.matched > 0);
            if let Some(slot) = self.b_cache_stats.get_mut(note.cache_shard) {
                *slot = note.cache_stats;
            }
            if let Some(state) = self.roots.get_mut(&root) {
                // The FIFO router records spans when it steps each
                // `Filtered` event at the boundary event's `now`; the
                // root's `now` is that same instant, so the histograms
                // are engine-invariant.
                self.spans.record(note.first_received_at, note.delivered_at, state.now);
                state.b_done += 1;
                #[cfg(feature = "trace")]
                state.trace.complete_dispatch(true, note.rebuilt);
                for o in outputs {
                    match o {
                        // Orphaned: a control event the FIFO router
                        // would queue behind the frame's other control
                        // events.
                        ServiceOutput::Emit(ev) => state.c_events.push(ev),
                        other => state.outputs.push(other),
                    }
                }
            }
        }
        for f in self.b.take_failures() {
            self.lost_jobs += 1;
            if let Some(state) = self.roots.get_mut(&f.root) {
                state.b_done += 1;
                #[cfg(feature = "trace")]
                state.trace.complete_dispatch(false, false);
            }
            self.failures.push(f);
        }

        // Control events run strictly in root order: the control graph
        // is the one stateful stage shared by every root, so its FIFO
        // *is* the determinism argument — whether it lives on a worker
        // or is pumped inline right here.
        let mut c_batch: Vec<(u64, ControlJob)> = Vec::new();
        loop {
            let root = self.next_c_submit;
            let (events, now) = match self.roots.get_mut(&root) {
                Some(state) if state.data_done() && !state.c_submitted => {
                    state.c_submitted = true;
                    let events = std::mem::take(&mut state.c_events);
                    if events.is_empty() {
                        state.c_done = true;
                        self.next_c_submit += 1;
                        continue;
                    }
                    (events, state.now)
                }
                _ => break,
            };
            self.next_c_submit += 1;
            match &mut self.c {
                // Consecutive ready roots accumulate and leave as one
                // hand-off below — the worker pumps them in root order
                // either way.
                ControlStage::Worker(_) => c_batch.push((root, ControlJob { events, now })),
                ControlStage::Inline(graph) => {
                    let (outputs, c_trace) = graph.pump_traced(events, now);
                    let state = self.roots.get_mut(&root).expect("submitted above");
                    state.outputs.extend(outputs);
                    state.c_done = true;
                    #[cfg(feature = "trace")]
                    state.trace.set_control(c_trace);
                    #[cfg(not(feature = "trace"))]
                    let _ = c_trace;
                }
            }
        }
        if !c_batch.is_empty() {
            if let ControlStage::Worker(edge) = &mut self.c {
                let class = control_batch_class(&c_batch);
                edge.submit_batch_classed(0, c_batch, class);
            }
        }

        if let ControlStage::Worker(edge) = &mut self.c {
            for (root, (outputs, c_trace)) in edge.drain() {
                if let Some(state) = self.roots.get_mut(&root) {
                    state.outputs.extend(outputs);
                    state.c_done = true;
                    #[cfg(feature = "trace")]
                    state.trace.set_control(c_trace);
                    #[cfg(not(feature = "trace"))]
                    let _ = c_trace;
                }
            }
            for f in edge.take_failures() {
                self.lost_jobs += 1;
                if let Some(state) = self.roots.get_mut(&f.root) {
                    // The pumped events were consumed by the lost
                    // worker, so there are no control hops to trace; the
                    // failure itself is surfaced via `failures` /
                    // `lost_jobs`.
                    state.c_done = true;
                }
                self.failures.push(f);
            }
        }

        self.trace_restarts();

        let mut released = Vec::new();
        while let Some(state) = self.roots.get(&self.next_release) {
            if !state.complete() {
                break;
            }
            let state = self.roots.remove(&self.next_release).expect("checked above");
            #[cfg(feature = "trace")]
            {
                // Occupancy here is the number of roots still in flight
                // when this one released — a concurrency measure, and
                // (unlike the records) timing-dependent.
                let in_flight = self.roots.len() as u64;
                state.trace.emit(self.next_release, in_flight, &mut self.tracer);
            }
            released.push(RootOutput { root: self.next_release, outputs: state.outputs });
            self.next_release += 1;
        }
        released
    }

    /// Folds supervision restarts from every edge into the trace, each
    /// with the backoff delay the policy chose. Restart timing is
    /// wall-clock, not simulated, so the records carry `at_us: 0` and
    /// are keyed by stage + shard + backoff only.
    #[cfg(feature = "trace")]
    fn trace_restarts(&mut self) {
        let mut batches = vec![
            (TraceStage::Filtering, self.a.take_restart_events()),
            (TraceStage::Dispatch, self.b.take_restart_events()),
        ];
        if let ControlStage::Worker(edge) = &mut self.c {
            batches.push((TraceStage::Control, edge.take_restart_events()));
        }
        for (stage, events) in batches {
            for e in events {
                self.tracer.record(|| TraceRecord {
                    shard: Some(e.shard as u32),
                    backoff_us: Some(e.delay.as_micros() as u64),
                    ..TraceRecord::new(
                        0,
                        stage,
                        TraceEventKind::ShardRestart,
                        TraceOutcome::Delivered,
                    )
                });
            }
        }
    }

    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    fn trace_restarts(&mut self) {}

    /// Frames offered to [`ThreadedRouter::push_frame`] so far.
    pub fn offered_frame_count(&self) -> u64 {
        self.offered_frames
    }

    /// Frames dropped by backpressure shedding at the filtering edge.
    pub fn shed_frame_count(&self) -> u64 {
        self.shed_frames
    }

    /// Shard restarts performed by supervision across all edges.
    pub fn restart_count(&self) -> u64 {
        let c = match &self.c {
            ControlStage::Worker(edge) => edge.restart_count(),
            ControlStage::Inline(_) => 0,
        };
        self.a.restart_count() + self.b.restart_count() + c
    }

    /// Jobs accepted per [`EdgeClass`] across all stage edges, indexed
    /// by [`EdgeClass::index`] — the per-class flow accounting the QoS
    /// layer's `qos.*` metrics ride on for the threaded engine.
    pub fn class_submits(&self) -> [u64; 3] {
        let mut totals = [0u64; 3];
        let c = match &self.c {
            ControlStage::Worker(edge) => edge.class_submits(),
            ControlStage::Inline(_) => [0; 3],
        };
        for (i, t) in totals.iter_mut().enumerate() {
            *t = self.a.class_submits()[i] + self.b.class_submits()[i] + c[i];
        }
        totals
    }

    /// Takes the worker failures recorded since the last call.
    pub fn take_root_failures(&mut self) -> Vec<RootFailure> {
        std::mem::take(&mut self.failures)
    }

    /// The pipeline latency spans recorded so far.
    pub fn pipeline_spans(&self) -> &PipelineSpans {
        &self.spans
    }

    /// The per-ingest-shard admission-depth gauges.
    pub fn queue_depth_gauges(&self) -> &QueueDepthGauges {
        &self.depths
    }

    /// Turns latency-span and depth-gauge recording on or off (on by
    /// default; `GarnetConfig.telemetry.spans` drives this).
    pub fn set_telemetry_recording(&mut self, enabled: bool) {
        self.spans.set_enabled(enabled);
        self.depths.set_enabled(enabled);
    }

    /// Resets the telemetry depth counts (the watermarks survive).
    /// Called by the facade after it pumps the engine dry — a *logical*
    /// quiescence both engines reach at the same boundary, unlike the
    /// racy "did the workers keep up?" quiescence a threaded poll could
    /// observe mid-burst.
    pub fn note_telemetry_quiescent(&mut self) {
        self.depths.note_quiescent();
    }

    /// The stream catalogue.
    pub fn streams(&self) -> &ShardedStreamRegistry {
        &self.streams
    }

    /// Mutable catalogue access (claimed-flag overrides).
    pub fn streams_mut(&mut self) -> &mut ShardedStreamRegistry {
        &mut self.streams
    }

    /// The inline control graph (`None` when control runs on a
    /// worker).
    pub fn control_graph(&self) -> Option<&ControlGraph> {
        match &self.c {
            ControlStage::Inline(graph) => Some(graph),
            ControlStage::Worker(_) => None,
        }
    }

    /// Mutable inline control graph (`None` when control runs on a
    /// worker).
    pub fn control_graph_mut(&mut self) -> Option<&mut ControlGraph> {
        match &mut self.c {
            ControlStage::Inline(graph) => Some(graph),
            ControlStage::Worker(_) => None,
        }
    }

    /// Ingest counters summed across shards, as of each shard's last
    /// completed job (exact at quiescence).
    pub fn filter_stats(&self) -> FilterStats {
        self.a_stats.iter().fold(FilterStats::default(), |acc, (stats, _)| acc.absorb(*stats))
    }

    /// Dispatch counters (applied at the B drain in submission order).
    pub fn dispatch_stats(&self) -> DispatchStats {
        let mut match_cache = garnet_net::MatchCacheStats::default();
        for s in &self.b_cache_stats {
            match_cache.absorb(*s);
        }
        DispatchStats {
            dispatched: self.dispatched,
            deliveries: self.deliveries,
            unclaimed: self.unclaimed,
            fanout: self.fanout.clone(),
            subscribers: self
                .subscriptions
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .subscriber_count(),
            match_cache,
        }
    }

    /// The earliest time-driven deadline: reorder flushes across the
    /// ingest shards, plus the actuation sweep when control runs
    /// inline. Exact at quiescence (per-shard deadlines ride on each
    /// job's result).
    pub fn next_deadline(&self) -> Option<SimTime> {
        let ingest = self.a_stats.iter().filter_map(|(_, deadline)| *deadline).min();
        let control = match &self.c {
            ControlStage::Inline(graph) => GarnetService::next_deadline(&**graph),
            ControlStage::Worker(_) => None,
        };
        [ingest, control].into_iter().flatten().min()
    }

    /// Streams the flight recorder's window to `w` as JSONL and clears
    /// it (see [`Tracer::drain_to`]).
    pub fn trace_drain_to(&mut self, mut w: &mut dyn std::io::Write) -> std::io::Result<usize> {
        self.tracer.drain_to(&mut w)
    }

    /// Drains every in-flight root, joins all workers, and returns the
    /// run's terminal accounting (any roots not yet handed out by
    /// [`ThreadedRouter::poll`] ride in `outputs`, in root order).
    pub fn finish(self) -> ThreadedRouterReport {
        self.into_parts().report
    }

    /// [`ThreadedRouter::finish`], keeping the state a hosting facade
    /// serves reads from after shutdown: the stream catalogue, the
    /// inline control graph, and the final counter snapshots.
    pub fn into_parts(mut self) -> ThreadedRouterParts {
        let mut outputs = Vec::new();
        while self.next_release < self.next_root {
            let released = self.poll();
            if released.is_empty() {
                std::thread::yield_now();
            }
            outputs.extend(released);
        }
        let filter_stats = self.filter_stats();
        let dispatch_stats = self.dispatch_stats();
        let shard_restarts = self.restart_count();
        let mut failures = std::mem::take(&mut self.failures);
        let (a_rest, a_fail) = self.a.finish();
        let (b_rest, b_fail) = self.b.finish();
        let (c_unreleased, c_fail, control) = match self.c {
            ControlStage::Worker(edge) => {
                let (rest, fail) = edge.finish();
                (rest.len(), fail, None)
            }
            ControlStage::Inline(graph) => (0, Vec::new(), Some(*graph)),
        };
        debug_assert!(
            a_rest.is_empty() && b_rest.is_empty() && c_unreleased == 0,
            "all roots were drained before the edges were joined"
        );
        let late = a_fail.len() + b_fail.len() + c_fail.len();
        failures.extend(a_fail);
        failures.extend(b_fail);
        failures.extend(c_fail);
        ThreadedRouterParts {
            report: ThreadedRouterReport {
                outputs,
                failures,
                offered_frames: self.offered_frames,
                shed_frames: self.shed_frames,
                lost_jobs: self.lost_jobs + late as u64,
                shard_restarts,
                trace: self.tracer.snapshot(),
            },
            streams: self.streams,
            control,
            filter_stats,
            dispatch_stats,
            spans: self.spans,
            depths: self.depths,
        }
    }
}

impl std::fmt::Debug for ThreadedRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedRouter")
            .field("ingest_shards", &self.ingest_shards)
            .field("dispatch_shards", &self.dispatch_shards)
            .field("in_flight_roots", &self.roots.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garnet_wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};

    fn frame(sensor: u32, seq: u16) -> garnet_wire::FrameBytes {
        let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0));
        DataMessage::builder(stream)
            .seq(SequenceNumber::new(seq))
            .payload(vec![seq as u8])
            .build()
            .unwrap()
            .encode_to_vec()
            .into()
    }

    #[test]
    fn subscription_entries_partition_across_dispatch_shards() {
        use garnet_net::TopicFilter;
        // Stream/Sensor filters must live on exactly one shard each, so
        // the per-shard entry counts sum to what an unsharded table
        // would hold — subscription memory must not scale with the
        // shard count.
        let stream =
            |sensor: u32| StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0));
        let filters: Vec<TopicFilter> = (1..=40u32)
            .map(|s| {
                if s % 2 == 0 {
                    TopicFilter::Sensor(SensorId::new(s).unwrap())
                } else {
                    TopicFilter::Stream(stream(s))
                }
            })
            .collect();
        let mut unsharded = ShardedDispatch::new(1);
        let sub = unsharded.register_subscriber();
        for f in &filters {
            assert!(unsharded.subscribe(sub, *f));
        }
        let total: usize = unsharded.shard_subscription_counts().iter().sum();
        assert_eq!(total, filters.len());
        for shards in [2usize, 4, 7] {
            let mut sharded = ShardedDispatch::new(shards);
            let sub = sharded.register_subscriber();
            for f in &filters {
                assert!(sharded.subscribe(sub, *f));
            }
            let counts = sharded.shard_subscription_counts();
            assert_eq!(counts.len(), shards);
            assert_eq!(
                counts.iter().sum::<usize>(),
                total,
                "shards={shards}: entries duplicated across shards: {counts:?}"
            );
            assert!(
                counts.iter().filter(|c| **c > 0).count() > 1,
                "shards={shards}: everything landed on one shard: {counts:?}"
            );
            // An `All` wiretap is the one filter that must replicate.
            sharded.subscribe(sub, TopicFilter::All);
            let with_all = sharded.shard_subscription_counts();
            assert_eq!(with_all.iter().sum::<usize>(), total + shards);
            // Departure reports distinct filters, not per-shard copies.
            assert_eq!(sharded.unsubscribe_all(sub), filters.len() + 1);
            assert_eq!(sharded.shard_subscription_counts().iter().sum::<usize>(), 0);
        }
    }

    #[test]
    fn sensors_pin_to_one_shard() {
        let ingest = ShardedIngest::new(FilterConfig::default(), 4);
        for sensor in 1..200u32 {
            let a = ingest.shard_of(&frame(sensor, 0));
            let b = ingest.shard_of(&frame(sensor, 9));
            assert_eq!(a, b, "sensor {sensor} moved shards");
        }
    }

    #[test]
    fn sharded_flush_is_stream_id_ordered() {
        // Leave a reorder gap on several sensors spread across shards,
        // then flush: releases must come back in ascending stream id.
        for shards in [1usize, 2, 4, 8] {
            let mut ingest = ShardedIngest::new(FilterConfig::default(), shards);
            for sensor in [9u32, 3, 14, 7, 11] {
                ingest.on_frame(ReceiverId::new(0), -40.0, &frame(sensor, 0), SimTime::ZERO);
                ingest.on_frame(
                    ReceiverId::new(0),
                    -40.0,
                    &frame(sensor, 2), // gap at 1
                    SimTime::from_millis(1),
                );
            }
            let out = ingest.on_tick(SimTime::from_secs(10));
            let ids: Vec<u32> = out.iter().map(|d| d.msg.stream().to_raw()).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "shards={shards}");
            assert_eq!(out.len(), 5, "shards={shards}");
        }
    }

    #[test]
    fn sharded_counters_aggregate() {
        let mut ingest = ShardedIngest::new(FilterConfig::default(), 4);
        for sensor in 1..=8u32 {
            let fr = frame(sensor, 0);
            ingest.on_frame(ReceiverId::new(0), -40.0, &fr, SimTime::ZERO);
            ingest.on_frame(ReceiverId::new(1), -50.0, &fr, SimTime::ZERO); // dup
        }
        assert_eq!(ingest.delivered_count(), 8);
        assert_eq!(ingest.duplicate_count(), 8);
        assert_eq!(ingest.stream_count(), 8);
    }

    #[test]
    fn threaded_ingest_matches_serial_filtering() {
        let mut subs = SubscriptionTable::new();
        subs.subscribe(garnet_net::SubscriberId::new(1), garnet_net::TopicFilter::All);
        let mut threaded = ThreadedIngest::new(FilterConfig::default(), 4, 8, &subs);
        let mut serial = FilteringService::new(FilterConfig::default());

        let mut serial_delivered: Vec<(u32, u16)> = Vec::new();
        let mut batches: Vec<IngestBatch> = Vec::new();
        for seq in 0..50u16 {
            for sensor in 1..=6u32 {
                let fr = frame(sensor, seq);
                let at = SimTime::from_millis(u64::from(seq));
                for d in serial.on_frame(ReceiverId::new(0), -40.0, &fr, at).deliveries {
                    serial_delivered.push((d.msg.stream().to_raw(), d.msg.seq().as_u16()));
                }
                batches.extend(threaded.push(ReceiverId::new(0), -40.0, fr, at));
            }
        }
        batches.extend(threaded.flush(SimTime::from_secs(10)));
        let report = threaded.finish();
        assert!(report.failures.is_empty(), "no worker should fail here");
        batches.extend(report.batches);
        let mut threaded_delivered: Vec<(u32, u16)> = Vec::new();
        let mut matched = 0u64;
        for b in batches {
            matched += b.matched;
            for d in b.deliveries {
                threaded_delivered.push((d.msg.stream().to_raw(), d.msg.seq().as_u16()));
            }
        }
        // Per-stream sequences are identical (global interleaving may
        // differ across shard threads).
        for sensor in 1..=6u32 {
            let raw = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0)).to_raw();
            let s: Vec<u16> =
                serial_delivered.iter().filter(|(r, _)| *r == raw).map(|(_, q)| *q).collect();
            let t: Vec<u16> =
                threaded_delivered.iter().filter(|(r, _)| *r == raw).map(|(_, q)| *q).collect();
            assert_eq!(s, t, "sensor {sensor}");
        }
        assert_eq!(matched, threaded_delivered.len() as u64, "one All-subscriber");
    }
}
