//! The event router: Figure 1's arrows as a FIFO of typed events.
//!
//! [`Router`] owns every sans-io service and moves
//! [`ServiceEvent`]s between them. One [`Router::step`] pops one event,
//! hands it to the owning service, re-enqueues any
//! [`ServiceOutput::Emit`] at the *back* of the queue, and returns the
//! remaining outputs (deliveries, plans, denials, expiries) for the
//! facade to apply. The queue is strictly FIFO, which makes the whole
//! middleware a deterministic event machine: the same enqueue sequence
//! always produces the same output sequence, regardless of how the
//! ingest stage is sharded.
//!
//! The ingest hot path (the Filtering Service) is the only stage with
//! per-message CPU cost worth parallelising, so it alone is sharded:
//! [`ShardedIngest`] partitions streams across N independent
//! [`FilteringService`]s by sensor id (every stream of a sensor lands on
//! one shard, so per-stream sequence state never crosses shards) and
//! merges flushes back into the stream-id order a single service would
//! have produced. [`ThreadedIngest`] runs the same shards on OS threads
//! via [`garnet_net::ShardPool`] for live deployments.

use std::collections::VecDeque;

use garnet_net::{RefusedJob, ShardFailure, ShardPool, SubscriptionTable};
use garnet_radio::ReceiverId;
use garnet_simkit::{Histogram, SimTime};
use garnet_wire::{peek_seq, peek_stream, ActuationTarget};

use crate::actuation::ActuationService;
use crate::coordinator::SuperCoordinator;
use crate::dispatching::DispatchingService;
use crate::filtering::{Delivery, FilterConfig, FilterResult, FilteringService};
use crate::location::LocationService;
use crate::orphanage::Orphanage;
use crate::replicator::MessageReplicator;
use crate::resource::ResourceManager;
use crate::service::{GarnetService, ServiceEvent, ServiceOutput};
use crate::stream::StreamRegistry;

/// Spreads a 24-bit sensor id across `shards` buckets (Fibonacci
/// hashing: dense sensor ids from grid deployments stay balanced).
fn shard_of_sensor(sensor: u32, shards: usize) -> usize {
    (sensor.wrapping_mul(0x9E37_79B1) >> 16) as usize % shards.max(1)
}

/// The ingest stage: N filtering shards partitioned by sensor id.
///
/// With `shards == 1` this is exactly one [`FilteringService`]. With
/// more, each sensor's streams are pinned to one shard; frame handling
/// is embarrassingly parallel across shards because the only shared
/// state — per-stream sequence windows — is partitioned with them.
/// Reorder flushes are merged back into ascending stream-id order,
/// which is the order a single service's `BTreeMap` walk produces, so
/// the event sequence leaving this stage is bit-identical for any shard
/// count.
#[derive(Debug)]
pub struct ShardedIngest {
    shards: Vec<FilteringService>,
}

impl ShardedIngest {
    /// Creates an ingest stage with `shards` filtering shards (0 is
    /// treated as 1).
    pub fn new(config: FilterConfig, shards: usize) -> Self {
        let n = shards.max(1);
        ShardedIngest { shards: (0..n).map(|_| FilteringService::new(config)).collect() }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a frame belongs to. Undecodable-but-headed frames
    /// still shard deterministically via [`peek_stream`]; frames too
    /// short to carry a stream id land on shard 0 (they fail CRC
    /// wherever they land — the choice only has to be deterministic).
    pub fn shard_of(&self, frame: &[u8]) -> usize {
        match peek_stream(frame) {
            Some(stream) => shard_of_sensor(stream.sensor().as_u32(), self.shards.len()),
            None => 0,
        }
    }

    /// Feeds one frame to its shard, returning the raw filter result.
    pub fn on_frame(
        &mut self,
        receiver: ReceiverId,
        rssi_dbm: f64,
        frame: &[u8],
        now: SimTime,
    ) -> FilterResult {
        let shard = self.shard_of(frame);
        self.shards[shard].on_frame(receiver, rssi_dbm, frame, now)
    }

    /// Flushes expired reorder buffers on every shard and merges the
    /// releases into ascending stream-id order (identical to a single
    /// unsharded service: each shard flushes in stream-id order, and
    /// streams are partitioned, so a stable merge by stream id
    /// reproduces the global order).
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Delivery> {
        let mut out: Vec<Delivery> = Vec::new();
        for shard in &mut self.shards {
            out.extend(shard.on_tick(now));
        }
        out.sort_by_key(|d| d.msg.stream().to_raw());
        out
    }

    /// The earliest reorder deadline across shards.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.shards.iter().filter_map(FilteringService::next_deadline).min()
    }

    fn frame_outputs(result: FilterResult) -> Vec<ServiceOutput> {
        let mut out = Vec::new();
        if let Some(obs) = result.observation {
            out.push(ServiceOutput::Emit(ServiceEvent::Observed(obs)));
        }
        for d in &result.deliveries {
            if let Some(request_id) = d.msg.ack() {
                out.push(ServiceOutput::Emit(ServiceEvent::AckReceived {
                    request_id,
                    status: garnet_wire::AckStatus::Applied,
                }));
            }
        }
        out.extend(
            result
                .deliveries
                .into_iter()
                .map(|delivery| ServiceOutput::Emit(ServiceEvent::Filtered { delivery, depth: 0 })),
        );
        out
    }

    /// Messages released downstream (all shards).
    pub fn delivered_count(&self) -> u64 {
        self.shards.iter().map(FilteringService::delivered_count).sum()
    }

    /// Duplicate frames eliminated (all shards).
    pub fn duplicate_count(&self) -> u64 {
        self.shards.iter().map(FilteringService::duplicate_count).sum()
    }

    /// Frames rejected by CRC/decode (all shards).
    pub fn crc_failure_count(&self) -> u64 {
        self.shards.iter().map(FilteringService::crc_failure_count).sum()
    }

    /// Frames buffered out of order (all shards).
    pub fn reordered_count(&self) -> u64 {
        self.shards.iter().map(FilteringService::reordered_count).sum()
    }

    /// Gaps accepted (all shards).
    pub fn gap_count(&self) -> u64 {
        self.shards.iter().map(FilteringService::gap_count).sum()
    }

    /// Stream restarts detected (all shards).
    pub fn restart_count(&self) -> u64 {
        self.shards.iter().map(FilteringService::restart_count).sum()
    }

    /// Streams tracked (streams are partitioned, so the sum is exact).
    pub fn stream_count(&self) -> usize {
        self.shards.iter().map(FilteringService::stream_count).sum()
    }
}

impl GarnetService for ShardedIngest {
    fn handle(&mut self, ev: ServiceEvent, now: SimTime) -> Vec<ServiceOutput> {
        match ev {
            ServiceEvent::Frame { receiver, rssi_dbm, frame } => {
                let result = self.on_frame(receiver, rssi_dbm, &frame, now);
                Self::frame_outputs(result)
            }
            ServiceEvent::FlushReorder => self
                .on_tick(now)
                .into_iter()
                .map(|delivery| ServiceOutput::Emit(ServiceEvent::Filtered { delivery, depth: 0 }))
                .collect(),
            _ => Vec::new(),
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        ShardedIngest::next_deadline(self)
    }
}

/// The dispatch stage: subscription routing plus the stream catalogue
/// (the catalogue rides here because every routed message updates it).
#[derive(Debug)]
pub struct DispatchStage {
    /// The Dispatching Service proper.
    pub dispatching: DispatchingService,
    /// The stream catalogue (discovery + claimed flags).
    pub streams: StreamRegistry,
}

impl DispatchStage {
    /// Creates an empty dispatch stage.
    pub fn new() -> Self {
        DispatchStage { dispatching: DispatchingService::new(), streams: StreamRegistry::new() }
    }
}

impl Default for DispatchStage {
    fn default() -> Self {
        Self::new()
    }
}

impl GarnetService for DispatchStage {
    fn handle(&mut self, ev: ServiceEvent, _now: SimTime) -> Vec<ServiceOutput> {
        let ServiceEvent::Filtered { delivery, depth } = ev else {
            return Vec::new();
        };
        self.streams.note_message(
            delivery.msg.stream(),
            delivery.msg.payload().len(),
            delivery.delivered_at,
            depth > 0,
        );
        let outcome = self.dispatching.route(delivery.msg.stream());
        // Keep the catalogue's claimed flag in sync with reality — a
        // subscription made before the stream's first message would
        // otherwise be invisible to the quiescence sweep.
        self.streams.set_claimed(delivery.msg.stream(), !outcome.unclaimed);
        if outcome.unclaimed {
            return vec![ServiceOutput::Emit(ServiceEvent::Orphaned(delivery))];
        }
        outcome
            .recipients
            .into_iter()
            .map(|recipient| ServiceOutput::Deliver {
                recipient,
                delivery: delivery.clone(),
                depth,
            })
            .collect()
    }
}

/// Every routed service, owned together so the router can borrow them
/// independently. Fields are public: the facade reaches in for direct
/// reads (statistics) and the rare synchronous call (subscription
/// changes, orphanage claims) that is request/response rather than
/// dataflow.
#[derive(Debug)]
pub struct Services {
    /// Sharded filtering (the ingest hot path).
    pub ingest: ShardedIngest,
    /// Subscription routing + stream catalogue.
    pub dispatch: DispatchStage,
    /// Unclaimed-message retention.
    pub orphanage: Orphanage,
    /// Sensor location inference.
    pub location: LocationService,
    /// Actuation conflict mediation.
    pub resource: ResourceManager,
    /// Stream-update tracking and retry.
    pub actuation: ActuationService,
    /// Area-targeted downlink planning.
    pub replicator: MessageReplicator,
    /// State-triggered policy actions.
    pub coordinator: SuperCoordinator,
}

/// How frame admission responds when the router's bounded queue is at
/// capacity. Only [`ServiceEvent::Frame`] events are ever governed —
/// control events (acks, actuations, flushes) are never dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Drop the oldest queued frame to admit the newest — the arrivals
    /// most likely to still matter survive.
    Shed,
    /// Replace a queued frame of the arriving frame's stream with
    /// whichever carries the newer sequence number (per-stream
    /// freshness, as a GSN-style drop policy); falls back to shedding
    /// the oldest queued frame when the stream has nothing queued.
    CoalesceFrames,
    /// Admit nothing over capacity: the driver must drain first. The
    /// simulation driver pumps the queue to make room; a threaded
    /// driver genuinely blocks, pushing backpressure to the radio edge.
    Block,
}

/// Bounded-queue admission control for the router's frame intake.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Maximum number of `Frame` events queued at once (0 is treated
    /// as 1).
    pub capacity: usize,
    /// What to do with a frame arriving at capacity.
    pub policy: OverloadPolicy,
}

/// What [`Router::admit_frame`] did with a frame.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameAdmission {
    /// Queued; the queue was below capacity.
    Admitted,
    /// Queued; the oldest queued frame was shed to make room.
    AdmittedAfterShed,
    /// Resolved against a queued frame of the same stream: the older
    /// sequence (either side) was dropped, the newer one is queued.
    Coalesced,
    /// Queue at capacity under [`OverloadPolicy::Block`]: the frame is
    /// handed back untouched; drain the queue and retry. Nothing is
    /// counted for a blocked attempt, so retries don't inflate totals.
    Blocked(Vec<u8>),
}

/// Monotonic frame-admission totals, for metrics deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverloadTotals {
    /// Frames accepted into admission (everything except blocked
    /// attempts, which retry and count once on success).
    pub offered: u64,
    /// Frames dropped by the overload policy before filtering.
    pub shed: u64,
    /// The subset of `shed` dropped in favour of a newer same-stream
    /// sequence.
    pub coalesced: u64,
    /// Frames popped off the queue and routed into filtering.
    pub delivered: u64,
}

/// The FIFO event router over [`Services`].
#[derive(Debug)]
pub struct Router {
    services: Services,
    queue: VecDeque<ServiceEvent>,
    overload: Option<OverloadConfig>,
    /// `Frame` events currently in `queue` (control events excluded).
    queued_frames: usize,
    totals: OverloadTotals,
    peak_queued: u64,
    /// Queue depth sampled at each admission (only when bounded).
    depth_hist: Histogram,
}

impl Router {
    /// Creates a router over the given services with an empty,
    /// unbounded queue (the legacy behaviour: admission never sheds).
    pub fn new(services: Services) -> Self {
        Self::with_overload(services, None)
    }

    /// Creates a router whose frame intake is governed by `overload`
    /// (`None` = unbounded).
    pub fn with_overload(services: Services, overload: Option<OverloadConfig>) -> Self {
        Router {
            services,
            queue: VecDeque::new(),
            overload,
            queued_frames: 0,
            totals: OverloadTotals::default(),
            peak_queued: 0,
            depth_hist: Histogram::new(),
        }
    }

    /// Shared view of the services.
    pub fn services(&self) -> &Services {
        &self.services
    }

    /// Mutable view of the services (for synchronous facade calls).
    pub fn services_mut(&mut self) -> &mut Services {
        &mut self.services
    }

    /// Enqueues an event at the back of the queue, bypassing admission
    /// control — the control path: acks, actuations, flushes and other
    /// non-`Frame` events must never be shed. Frames entering here are
    /// still counted against the queue depth so admission stays exact.
    pub fn enqueue(&mut self, ev: ServiceEvent) {
        if matches!(ev, ServiceEvent::Frame { .. }) {
            self.queued_frames += 1;
            self.note_depth();
        }
        self.queue.push_back(ev);
    }

    /// Offers a frame to admission control. Without an
    /// [`OverloadConfig`] the frame is always queued; with one, the
    /// configured [`OverloadPolicy`] decides what happens at capacity.
    /// This is the only entry point that maintains shed/coalesce
    /// accounting, so drivers should route all radio frames through it.
    pub fn admit_frame(
        &mut self,
        receiver: ReceiverId,
        rssi_dbm: f64,
        frame: Vec<u8>,
    ) -> FrameAdmission {
        let Some(cfg) = self.overload else {
            self.totals.offered += 1;
            self.enqueue(ServiceEvent::Frame { receiver, rssi_dbm, frame });
            return FrameAdmission::Admitted;
        };
        let capacity = cfg.capacity.max(1);
        if self.queued_frames < capacity {
            self.totals.offered += 1;
            self.enqueue(ServiceEvent::Frame { receiver, rssi_dbm, frame });
            return FrameAdmission::Admitted;
        }
        match cfg.policy {
            OverloadPolicy::Block => FrameAdmission::Blocked(frame),
            OverloadPolicy::Shed => {
                self.shed_oldest_frame();
                self.totals.offered += 1;
                self.enqueue(ServiceEvent::Frame { receiver, rssi_dbm, frame });
                FrameAdmission::AdmittedAfterShed
            }
            OverloadPolicy::CoalesceFrames => self.coalesce_frame(receiver, rssi_dbm, frame),
        }
    }

    /// Removes the oldest queued `Frame` event. Callers guarantee one
    /// exists (`queued_frames > 0`).
    fn shed_oldest_frame(&mut self) {
        if let Some(idx) = self.queue.iter().position(|ev| matches!(ev, ServiceEvent::Frame { .. }))
        {
            self.queue.remove(idx);
            self.queued_frames -= 1;
            self.totals.shed += 1;
        }
    }

    /// At capacity under `CoalesceFrames`: resolve the arriving frame
    /// against the queued frame of the same stream, keeping whichever
    /// claims the newer sequence number (wraparound-aware). Streams with
    /// nothing queued fall back to shedding the oldest frame overall.
    fn coalesce_frame(
        &mut self,
        receiver: ReceiverId,
        rssi_dbm: f64,
        frame: Vec<u8>,
    ) -> FrameAdmission {
        let stream = peek_stream(&frame);
        let same_stream = stream.and_then(|s| {
            self.queue.iter().position(|ev| {
                matches!(ev, ServiceEvent::Frame { frame: q, .. } if peek_stream(q) == Some(s))
            })
        });
        let Some(idx) = same_stream else {
            self.shed_oldest_frame();
            self.totals.offered += 1;
            self.enqueue(ServiceEvent::Frame { receiver, rssi_dbm, frame });
            return FrameAdmission::AdmittedAfterShed;
        };
        let queued_seq = match &self.queue[idx] {
            ServiceEvent::Frame { frame: q, .. } => peek_seq(q),
            _ => None,
        };
        // Undecodable sequences lose to decodable ones; two
        // undecodables keep the queued copy. Deterministic either way —
        // a corrupt frame fails CRC downstream regardless.
        let arriving_wins = match (peek_seq(&frame), queued_seq) {
            (Some(a), Some(q)) => a.is_after(q),
            (Some(_), None) => true,
            _ => false,
        };
        self.totals.offered += 1;
        self.totals.shed += 1;
        self.totals.coalesced += 1;
        if arriving_wins {
            // Replace in place: the survivor keeps the queued frame's
            // position (and thus its place in the delivery order).
            self.queue[idx] = ServiceEvent::Frame { receiver, rssi_dbm, frame };
            self.note_depth();
        }
        FrameAdmission::Coalesced
    }

    fn note_depth(&mut self) {
        let depth = self.queued_frames as u64;
        self.peak_queued = self.peak_queued.max(depth);
        if self.overload.is_some() {
            self.depth_hist.record(depth);
        }
    }

    /// Pops and routes one event. `Emit` outputs go to the back of the
    /// queue; everything else is returned for the driver to apply.
    /// Returns `None` when the queue is empty (quiescence).
    pub fn step(&mut self, now: SimTime) -> Option<Vec<ServiceOutput>> {
        let ev = self.queue.pop_front()?;
        if matches!(ev, ServiceEvent::Frame { .. }) {
            self.queued_frames -= 1;
            self.totals.delivered += 1;
        }
        let outputs = self.route(ev, now);
        let mut external = Vec::new();
        for o in outputs {
            match o {
                ServiceOutput::Emit(ev) => self.enqueue(ev),
                other => external.push(other),
            }
        }
        Some(external)
    }

    fn route(&mut self, ev: ServiceEvent, now: SimTime) -> Vec<ServiceOutput> {
        use ServiceEvent::*;
        match ev {
            Frame { .. } | FlushReorder => self.services.ingest.handle(ev, now),
            Filtered { .. } => self.services.dispatch.handle(ev, now),
            Orphaned(_) => self.services.orphanage.handle(ev, now),
            Observed(_) | Hint { .. } => self.services.location.handle(ev, now),
            ActuationRequested { .. } => self.services.resource.handle(ev, now),
            Submit { .. } | AckReceived { .. } | ActuationTick => {
                self.services.actuation.handle(ev, now)
            }
            Replicate { origin, requester, request, estimate } => {
                // The replicator's read-dependency on the Location
                // Service is resolved here, at routing time, so the
                // replicator itself stays free of service references.
                let estimate = estimate.or_else(|| match request.target {
                    ActuationTarget::Sensor(s) => self.services.location.estimate(s, now),
                    ActuationTarget::Stream(st) => {
                        self.services.location.estimate(st.sensor(), now)
                    }
                    ActuationTarget::Area(_) => None,
                });
                self.services
                    .replicator
                    .handle(Replicate { origin, requester, request, estimate }, now)
            }
            StateReported { .. } => self.services.coordinator.handle(ev, now),
        }
    }

    /// Monotonic admission totals (offered / shed / coalesced /
    /// delivered). At quiescence `offered == shed + delivered`.
    pub fn overload_totals(&self) -> OverloadTotals {
        self.totals
    }

    /// `Frame` events currently queued.
    pub fn queued_frame_count(&self) -> usize {
        self.queued_frames
    }

    /// High-water mark of the frame queue.
    pub fn peak_queue_depth(&self) -> u64 {
        self.peak_queued
    }

    /// Queue depth sampled at each admission (empty when unbounded —
    /// the unbounded hot path pays no sampling cost).
    pub fn depth_histogram(&self) -> &Histogram {
        &self.depth_hist
    }

    /// The earliest time-driven deadline across routed services.
    pub fn next_deadline(&self) -> Option<SimTime> {
        [
            GarnetService::next_deadline(&self.services.ingest),
            GarnetService::next_deadline(&self.services.actuation),
        ]
        .into_iter()
        .flatten()
        .min()
    }
}

/// One queued frame awaiting its shard batch: (receiver, rssi_dbm,
/// frame bytes, arrival time).
type PendingFrame = (ReceiverId, f64, Vec<u8>, SimTime);

/// A job for one threaded ingest shard.
enum IngestJob {
    /// A batch of frames.
    Frames(Vec<PendingFrame>),
    /// Flush reorder buffers up to the given instant.
    Flush(SimTime),
}

/// What one threaded shard produced for one job: deliveries in shard
/// order plus the subscriber matches it resolved (dispatch routing is
/// pushed onto the worker so the hot path's two stages both
/// parallelise).
#[derive(Debug, Default)]
pub struct IngestBatch {
    /// Messages released by filtering, in per-stream order.
    pub deliveries: Vec<Delivery>,
    /// Total subscriber matches across those deliveries.
    pub matched: u64,
    /// Input frames this job consumed (0 for reorder flushes) — the
    /// processed side of the shed-accounting ledger.
    pub frames: u64,
}

/// Terminal accounting for a threaded ingest run: every offered frame
/// is either in a batch, shed at the pool edge, or attributed to a
/// shard failure — `offered == processed + shed + lost` exactly.
#[derive(Debug, Default)]
pub struct IngestReport {
    /// Result batches completing the submission-order sequence.
    pub batches: Vec<IngestBatch>,
    /// Worker failures (panics, stranded jobs) recorded over the run.
    pub failures: Vec<ShardFailure>,
    /// Frames offered to [`ThreadedIngest::push`].
    pub offered_frames: u64,
    /// Frames dropped by backpressure shedding at the pool edge.
    pub shed_frames: u64,
    /// Frames lost to shard failures (attributed via the failure list).
    pub lost_frames: u64,
}

/// The ingest hot path on OS threads: one [`FilteringService`] per
/// worker, frames batched per shard through a [`ShardPool`], outputs
/// merged in submission order. Each worker also resolves subscriber
/// matches against a snapshot of the [`SubscriptionTable`].
///
/// The pool's job channels are bounded, so a stalled shard propagates
/// backpressure here. [`OverloadPolicy::Block`] (the default) makes
/// [`ThreadedIngest::push`] block — pressure reaches the radio edge;
/// [`OverloadPolicy::Shed`] and [`OverloadPolicy::CoalesceFrames`] drop
/// work instead, with every dropped frame counted (`shed_frame_count`)
/// so `offered == processed + shed + lost` holds exactly whatever the
/// thread interleaving. A panicking worker poisons only its own shard:
/// the loss surfaces via [`ThreadedIngest::take_shard_failures`], other
/// shards keep delivering, and [`ThreadedIngest::restart_shard`]
/// rebuilds the failed one with fresh filter state (its streams re-key
/// as restarts downstream).
///
/// This driver trades the simulator's bit-exact event interleaving for
/// wall-clock parallelism; per-stream delivery order is still exact
/// because streams are pinned to shards and the pool merges in
/// submission order.
pub struct ThreadedIngest {
    pool: ShardPool<IngestJob, IngestBatch>,
    shards: usize,
    batch_size: usize,
    policy: OverloadPolicy,
    pending: Vec<Vec<PendingFrame>>,
    /// Frame count per in-flight job seq, pruned below the pool's
    /// merged watermark; failures look up their lost-frame cost here.
    frames_per_seq: std::collections::BTreeMap<u64, u64>,
    failures: Vec<ShardFailure>,
    offered_frames: u64,
    shed_frames: u64,
    lost_frames: u64,
}

impl ThreadedIngest {
    /// Spawns `shards` workers with blocking backpressure
    /// ([`OverloadPolicy::Block`]) and a 4-job queue per shard.
    /// `batch_size` frames accumulate per shard before a job is
    /// submitted (batching amortises channel overhead); `subscriptions`
    /// is snapshotted per worker.
    pub fn new(
        config: FilterConfig,
        shards: usize,
        batch_size: usize,
        subscriptions: &SubscriptionTable,
    ) -> Self {
        Self::with_backpressure(config, shards, batch_size, subscriptions, OverloadPolicy::Block, 4)
    }

    /// [`ThreadedIngest::new`] with an explicit edge policy and
    /// per-shard job-queue bound.
    pub fn with_backpressure(
        config: FilterConfig,
        shards: usize,
        batch_size: usize,
        subscriptions: &SubscriptionTable,
        policy: OverloadPolicy,
        queue_capacity: usize,
    ) -> Self {
        let n = shards.max(1);
        let subs_master = subscriptions.clone();
        let pool = ShardPool::new(n, queue_capacity.max(1), move |_shard| {
            let mut filter = FilteringService::new(config);
            let subs = subs_master.clone();
            Box::new(move |job: IngestJob| {
                let mut batch = IngestBatch::default();
                match job {
                    IngestJob::Frames(frames) => {
                        batch.frames = frames.len() as u64;
                        for (receiver, rssi_dbm, frame, at) in frames {
                            let result = filter.on_frame(receiver, rssi_dbm, &frame, at);
                            for d in result.deliveries {
                                batch.matched +=
                                    subs.match_subscribers(d.msg.stream()).len() as u64;
                                batch.deliveries.push(d);
                            }
                        }
                    }
                    IngestJob::Flush(now) => {
                        for d in filter.on_tick(now) {
                            batch.matched += subs.match_subscribers(d.msg.stream()).len() as u64;
                            batch.deliveries.push(d);
                        }
                    }
                }
                batch
            })
        });
        ThreadedIngest {
            pool,
            shards: n,
            batch_size: batch_size.max(1),
            policy,
            pending: (0..n).map(|_| Vec::new()).collect(),
            frames_per_seq: std::collections::BTreeMap::new(),
            failures: Vec::new(),
            offered_frames: 0,
            shed_frames: 0,
            lost_frames: 0,
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Hands a ready batch to the pool under the edge policy.
    fn submit_batch(&mut self, shard: usize, frames: Vec<PendingFrame>) {
        let count = frames.len() as u64;
        match self.policy {
            OverloadPolicy::Block => {
                let seq = self.pool.submit(shard, IngestJob::Frames(frames));
                self.frames_per_seq.insert(seq, count);
            }
            OverloadPolicy::Shed | OverloadPolicy::CoalesceFrames => {
                let frames = if self.policy == OverloadPolicy::CoalesceFrames {
                    self.compact_batch(frames)
                } else {
                    frames
                };
                let count = frames.len() as u64;
                match self.pool.try_submit(shard, IngestJob::Frames(frames)) {
                    Ok(seq) => {
                        self.frames_per_seq.insert(seq, count);
                    }
                    Err(RefusedJob::Full(_)) => self.shed_frames += count,
                    Err(RefusedJob::Poisoned(_)) => self.lost_frames += count,
                }
            }
        }
    }

    /// Keeps only the newest sequence per stream within a batch
    /// (streams are pinned to one shard, so within-batch coalescing is
    /// the threaded analogue of the router's queue coalescing).
    fn compact_batch(&mut self, frames: Vec<PendingFrame>) -> Vec<PendingFrame> {
        let mut newest: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        let mut keep: Vec<Option<PendingFrame>> = Vec::with_capacity(frames.len());
        for (i, pf) in frames.into_iter().enumerate() {
            let key = peek_stream(&pf.2).map(|s| s.to_raw());
            keep.push(Some(pf));
            let Some(key) = key else { continue };
            if let Some(&prev) = newest.get(&key) {
                let newer = match (
                    keep[i].as_ref().and_then(|p| peek_seq(&p.2)),
                    keep[prev].as_ref().and_then(|p| peek_seq(&p.2)),
                ) {
                    (Some(a), Some(q)) => a.is_after(q),
                    (Some(_), None) => true,
                    _ => false,
                };
                let drop_at = if newer { prev } else { i };
                keep[drop_at] = None;
                self.shed_frames += 1;
                if newer {
                    newest.insert(key, i);
                }
            } else {
                newest.insert(key, i);
            }
        }
        keep.into_iter().flatten().collect()
    }

    /// Absorbs newly recorded shard failures, attributing their
    /// lost-frame cost, and prunes the per-job ledger below the pool's
    /// merge watermark.
    fn absorb_failures(&mut self) {
        for f in self.pool.take_failures() {
            self.lost_frames += self.frames_per_seq.remove(&f.seq).unwrap_or(0);
            self.failures.push(f);
        }
        let watermark = self.pool.merged_watermark();
        self.frames_per_seq = self.frames_per_seq.split_off(&watermark);
    }

    /// Queues one frame, submitting its shard's batch when full.
    /// Returns any result batches that have become ready, in submission
    /// order. Under [`OverloadPolicy::Block`] this call blocks while
    /// the shard's job queue is full (backpressure reaches the caller);
    /// under the shedding policies it never blocks and the drop is
    /// counted instead.
    pub fn push(
        &mut self,
        receiver: ReceiverId,
        rssi_dbm: f64,
        frame: Vec<u8>,
        at: SimTime,
    ) -> Vec<IngestBatch> {
        let shard = match peek_stream(&frame) {
            Some(stream) => shard_of_sensor(stream.sensor().as_u32(), self.shards),
            None => 0,
        };
        self.offered_frames += 1;
        self.pending[shard].push((receiver, rssi_dbm, frame, at));
        if self.pending[shard].len() >= self.batch_size {
            let frames = std::mem::take(&mut self.pending[shard]);
            self.submit_batch(shard, frames);
        }
        let out = self.pool.drain();
        self.absorb_failures();
        out
    }

    /// Submits all partial batches and a reorder flush on every shard.
    pub fn flush(&mut self, now: SimTime) -> Vec<IngestBatch> {
        for shard in 0..self.shards {
            if !self.pending[shard].is_empty() {
                let frames = std::mem::take(&mut self.pending[shard]);
                self.submit_batch(shard, frames);
            }
            let seq = self.pool.submit(shard, IngestJob::Flush(now));
            self.frames_per_seq.insert(seq, 0);
        }
        let out = self.pool.drain();
        self.absorb_failures();
        out
    }

    /// Frames offered to `push` so far.
    pub fn offered_frame_count(&self) -> u64 {
        self.offered_frames
    }

    /// Frames dropped by backpressure shedding at the pool edge.
    pub fn shed_frame_count(&self) -> u64 {
        self.shed_frames
    }

    /// Frames lost to shard failures observed so far.
    pub fn lost_frame_count(&self) -> u64 {
        self.lost_frames
    }

    /// Takes the shard failures observed so far (their lost-frame cost
    /// is already folded into [`ThreadedIngest::lost_frame_count`]).
    pub fn take_shard_failures(&mut self) -> Vec<ShardFailure> {
        self.absorb_failures();
        std::mem::take(&mut self.failures)
    }

    /// Shards whose worker has died and not been restarted.
    pub fn poisoned_shards(&mut self) -> Vec<usize> {
        self.pool.poisoned_shards()
    }

    /// Rebuilds a shard's worker with a fresh [`FilteringService`].
    /// Its streams lose their sequence windows and re-key as stream
    /// restarts — visible, not silent.
    pub fn restart_shard(&mut self, shard: usize) {
        self.pool.restart_shard(shard);
        self.absorb_failures();
    }

    /// Drains remaining work and joins the workers. The report's
    /// batches complete the submission-order sequence, and its ledger
    /// satisfies `offered == processed + shed + lost` (any frames still
    /// pending unsubmitted are folded into `shed`).
    pub fn finish(mut self) -> IngestReport {
        // Unsubmitted pending frames would dodge the ledger: submit
        // them (blocking is fine at shutdown — the queues drain).
        for shard in 0..self.shards {
            if !self.pending[shard].is_empty() {
                let frames = std::mem::take(&mut self.pending[shard]);
                let count = frames.len() as u64;
                let seq = self.pool.submit(shard, IngestJob::Frames(frames));
                self.frames_per_seq.insert(seq, count);
            }
        }
        self.absorb_failures();
        let mut failures = std::mem::take(&mut self.failures);
        let mut lost = self.lost_frames;
        let frames_per_seq = std::mem::take(&mut self.frames_per_seq);
        let (batches, late) = self.pool.finish();
        for f in late {
            lost += frames_per_seq.get(&f.seq).copied().unwrap_or(0);
            failures.push(f);
        }
        IngestReport {
            batches,
            failures,
            offered_frames: self.offered_frames,
            shed_frames: self.shed_frames,
            lost_frames: lost,
        }
    }
}

impl std::fmt::Debug for ThreadedIngest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedIngest")
            .field("shards", &self.shards)
            .field("batch_size", &self.batch_size)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garnet_wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};

    fn frame(sensor: u32, seq: u16) -> Vec<u8> {
        let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0));
        DataMessage::builder(stream)
            .seq(SequenceNumber::new(seq))
            .payload(vec![seq as u8])
            .build()
            .unwrap()
            .encode_to_vec()
    }

    #[test]
    fn sensors_pin_to_one_shard() {
        let ingest = ShardedIngest::new(FilterConfig::default(), 4);
        for sensor in 1..200u32 {
            let a = ingest.shard_of(&frame(sensor, 0));
            let b = ingest.shard_of(&frame(sensor, 9));
            assert_eq!(a, b, "sensor {sensor} moved shards");
        }
    }

    #[test]
    fn sharded_flush_is_stream_id_ordered() {
        // Leave a reorder gap on several sensors spread across shards,
        // then flush: releases must come back in ascending stream id.
        for shards in [1usize, 2, 4, 8] {
            let mut ingest = ShardedIngest::new(FilterConfig::default(), shards);
            for sensor in [9u32, 3, 14, 7, 11] {
                ingest.on_frame(ReceiverId::new(0), -40.0, &frame(sensor, 0), SimTime::ZERO);
                ingest.on_frame(
                    ReceiverId::new(0),
                    -40.0,
                    &frame(sensor, 2), // gap at 1
                    SimTime::from_millis(1),
                );
            }
            let out = ingest.on_tick(SimTime::from_secs(10));
            let ids: Vec<u32> = out.iter().map(|d| d.msg.stream().to_raw()).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "shards={shards}");
            assert_eq!(out.len(), 5, "shards={shards}");
        }
    }

    #[test]
    fn sharded_counters_aggregate() {
        let mut ingest = ShardedIngest::new(FilterConfig::default(), 4);
        for sensor in 1..=8u32 {
            let fr = frame(sensor, 0);
            ingest.on_frame(ReceiverId::new(0), -40.0, &fr, SimTime::ZERO);
            ingest.on_frame(ReceiverId::new(1), -50.0, &fr, SimTime::ZERO); // dup
        }
        assert_eq!(ingest.delivered_count(), 8);
        assert_eq!(ingest.duplicate_count(), 8);
        assert_eq!(ingest.stream_count(), 8);
    }

    #[test]
    fn threaded_ingest_matches_serial_filtering() {
        let mut subs = SubscriptionTable::new();
        subs.subscribe(garnet_net::SubscriberId::new(1), garnet_net::TopicFilter::All);
        let mut threaded = ThreadedIngest::new(FilterConfig::default(), 4, 8, &subs);
        let mut serial = FilteringService::new(FilterConfig::default());

        let mut serial_delivered: Vec<(u32, u16)> = Vec::new();
        let mut batches: Vec<IngestBatch> = Vec::new();
        for seq in 0..50u16 {
            for sensor in 1..=6u32 {
                let fr = frame(sensor, seq);
                let at = SimTime::from_millis(u64::from(seq));
                for d in serial.on_frame(ReceiverId::new(0), -40.0, &fr, at).deliveries {
                    serial_delivered.push((d.msg.stream().to_raw(), d.msg.seq().as_u16()));
                }
                batches.extend(threaded.push(ReceiverId::new(0), -40.0, fr, at));
            }
        }
        batches.extend(threaded.flush(SimTime::from_secs(10)));
        let report = threaded.finish();
        assert!(report.failures.is_empty(), "no worker should fail here");
        batches.extend(report.batches);
        let mut threaded_delivered: Vec<(u32, u16)> = Vec::new();
        let mut matched = 0u64;
        for b in batches {
            matched += b.matched;
            for d in b.deliveries {
                threaded_delivered.push((d.msg.stream().to_raw(), d.msg.seq().as_u16()));
            }
        }
        // Per-stream sequences are identical (global interleaving may
        // differ across shard threads).
        for sensor in 1..=6u32 {
            let raw = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0)).to_raw();
            let s: Vec<u16> =
                serial_delivered.iter().filter(|(r, _)| *r == raw).map(|(_, q)| *q).collect();
            let t: Vec<u16> =
                threaded_delivered.iter().filter(|(r, _)| *r == raw).map(|(_, q)| *q).collect();
            assert_eq!(s, t, "sensor {sensor}");
        }
        assert_eq!(matched, threaded_delivered.len() as u64, "one All-subscriber");
    }
}
