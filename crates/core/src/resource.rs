//! The Resource Manager: admission control for actuation requests.
//!
//! "First, approval is sought from the Resource Manager which exercises
//! control over the permissible actions which a set of consumers may
//! request" (§4.2). Because consumers are *mutually unaware* (§2, §6),
//! their requests can conflict — one wants a sensor at 10 Hz, another
//! just put it to sleep — and "the potential for conflicting consumer
//! requests" is exactly why the manager keeps an "approximate overview of
//! the sensors' configuration" (§6).
//!
//! Three mediation policies are provided (experiment E11 compares them):
//!
//! * [`MediationPolicy::DenyConflicts`] — first demand wins; any
//!   different demand from another consumer is refused. Predictable,
//!   frustrating.
//! * [`MediationPolicy::PriorityWins`] — the highest-priority consumer's
//!   demand stands; lower priorities are refused on conflict.
//! * [`MediationPolicy::MergeMax`] — demands are merged so every consumer
//!   is satisfied: reporting intervals take the fastest requested rate,
//!   duty cycles the most-awake setting. Each consumer receives the data
//!   it asked for (a superset), at the price of sensor energy.
//!
//! Every effective setting is vetted against the sensor's
//! [`Constraint`] profile (§8's constraint language) before approval.

use std::collections::{BTreeMap, HashMap};

use core::fmt;
use garnet_net::SubscriberId;
use garnet_wire::{ActuationTarget, SensorCommand, SensorId, StreamIndex};

use crate::constraints::{Constraint, ConstraintError, Env, Value};

/// How conflicting demands are reconciled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MediationPolicy {
    /// Refuse any demand that differs from an existing one.
    DenyConflicts,
    /// Highest priority wins; ties go to the incumbent.
    PriorityWins,
    /// Merge demands so all consumers are satisfied (max rate / max
    /// wakefulness).
    MergeMax,
}

/// A sensor's registered operating envelope.
#[derive(Clone, Debug, Default)]
pub struct SensorProfile {
    /// All constraints must hold for a command to be approved.
    /// Constraints that reference attributes a command does not have
    /// (e.g. `rate_hz` for a `Sleep`) are skipped for that command.
    pub constraints: Vec<Constraint>,
}

/// Why a request was refused.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum DenyReason {
    /// A constraint evaluated to false; carries its source text.
    ConstraintViolated(String),
    /// A constraint failed to evaluate (typo in profile, type error).
    ConstraintError(ConstraintError),
    /// Another consumer holds a conflicting demand and policy sides with
    /// it.
    Conflict {
        /// The consumer whose demand prevailed.
        holder: SubscriberId,
    },
}

impl fmt::Display for DenyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenyReason::ConstraintViolated(src) => write!(f, "constraint violated: {src}"),
            DenyReason::ConstraintError(e) => write!(f, "constraint evaluation failed: {e}"),
            DenyReason::Conflict { holder } => {
                write!(f, "conflicts with demand held by {holder}")
            }
        }
    }
}

/// The manager's verdict on a request.
#[derive(Clone, Debug, PartialEq)]
pub enum Decision {
    /// Approved. Under [`MediationPolicy::MergeMax`] the effective
    /// command may be *stronger* than requested (faster rate) so that
    /// every consumer's demand is covered; the actuation service sends
    /// the effective command.
    Granted {
        /// What will actually be sent to the sensor.
        effective: SensorCommand,
    },
    /// Refused.
    Denied {
        /// Why.
        reason: DenyReason,
    },
}

impl Decision {
    /// True if granted.
    pub fn is_granted(&self) -> bool {
        matches!(self, Decision::Granted { .. })
    }
}

#[derive(Clone, Copy, Debug)]
struct Demand {
    value: u32, // interval_ms or duty permille
    priority: u8,
}

/// The Resource Manager.
///
/// # Example
///
/// ```
/// use garnet_core::resource::{MediationPolicy, ResourceManager, SensorProfile};
/// use garnet_core::constraints::Constraint;
/// use garnet_net::SubscriberId;
/// use garnet_wire::{ActuationTarget, SensorCommand, SensorId, StreamIndex};
///
/// let mut rm = ResourceManager::new(MediationPolicy::MergeMax);
/// let sensor = SensorId::new(3)?;
/// rm.register_profile(sensor, SensorProfile {
///     constraints: vec![Constraint::parse("rate_hz <= 10").unwrap()],
/// });
/// let decision = rm.request(
///     SubscriberId::new(1),
///     0,
///     &ActuationTarget::Sensor(sensor),
///     &SensorCommand::SetReportInterval { stream: StreamIndex::new(0), interval_ms: 500 },
/// );
/// assert!(decision.is_granted());
/// # Ok::<(), garnet_wire::WireError>(())
/// ```
#[derive(Debug)]
pub struct ResourceManager {
    policy: MediationPolicy,
    profiles: HashMap<SensorId, SensorProfile>,
    default_constraints: Vec<Constraint>,
    /// (sensor, stream) → per-consumer interval demands (ms).
    interval_demands: HashMap<(u32, u8), BTreeMap<SubscriberId, Demand>>,
    /// sensor → per-consumer duty-cycle demands (permille).
    duty_demands: HashMap<u32, BTreeMap<SubscriberId, Demand>>,
    approved: u64,
    denied: u64,
}

impl ResourceManager {
    /// Creates a manager with the given mediation policy and no
    /// profiles.
    pub fn new(policy: MediationPolicy) -> Self {
        ResourceManager {
            policy,
            profiles: HashMap::new(),
            default_constraints: Vec::new(),
            interval_demands: HashMap::new(),
            duty_demands: HashMap::new(),
            approved: 0,
            denied: 0,
        }
    }

    /// The active mediation policy.
    pub fn policy(&self) -> MediationPolicy {
        self.policy
    }

    /// Registers (replacing) a sensor's constraint profile.
    pub fn register_profile(&mut self, sensor: SensorId, profile: SensorProfile) {
        self.profiles.insert(sensor, profile);
    }

    /// Constraints applied to sensors without a registered profile.
    pub fn set_default_constraints(&mut self, constraints: Vec<Constraint>) {
        self.default_constraints = constraints;
    }

    fn constraints_for(&self, sensor: SensorId) -> &[Constraint] {
        self.profiles
            .get(&sensor)
            .map(|p| p.constraints.as_slice())
            .unwrap_or(&self.default_constraints)
    }

    fn env_for(command: &SensorCommand, priority: u8) -> Env {
        let mut env = Env::new();
        env.set("priority", Value::Num(f64::from(priority)));
        match *command {
            SensorCommand::SetReportInterval { stream, interval_ms } => {
                env.set("stream", Value::Num(f64::from(stream.as_u8())));
                env.set("interval_ms", Value::Num(f64::from(interval_ms)));
                env.set("rate_hz", Value::Num(1000.0 / f64::from(interval_ms.max(1))));
            }
            SensorCommand::SetDutyCycle { permille } => {
                env.set("duty_permille", Value::Num(f64::from(permille)));
            }
            SensorCommand::Sleep { duration_ms } => {
                env.set("sleep_ms", Value::Num(f64::from(duration_ms)));
            }
            SensorCommand::EnableStream { stream } | SensorCommand::DisableStream { stream } => {
                env.set("stream", Value::Num(f64::from(stream.as_u8())));
            }
            SensorCommand::SetEncryption { stream, enabled } => {
                env.set("stream", Value::Num(f64::from(stream.as_u8())));
                env.set("encrypted", Value::Bool(enabled));
            }
            // Ping and any future non-exhaustive commands carry no
            // mediated attributes.
            _ => {}
        }
        env
    }

    fn check_constraints(
        &self,
        sensor: SensorId,
        command: &SensorCommand,
        priority: u8,
    ) -> Result<(), DenyReason> {
        let env = Self::env_for(command, priority);
        for c in self.constraints_for(sensor) {
            match c.check(&env) {
                Ok(true) => {}
                Ok(false) => return Err(DenyReason::ConstraintViolated(c.source().to_owned())),
                // A constraint about attributes this command does not
                // carry is not applicable.
                Err(ConstraintError::UnknownIdentifier(_)) => {}
                Err(e) => return Err(DenyReason::ConstraintError(e)),
            }
        }
        Ok(())
    }

    fn sensor_of(target: &ActuationTarget) -> Option<SensorId> {
        match target {
            ActuationTarget::Sensor(id) => Some(*id),
            ActuationTarget::Stream(s) => Some(s.sensor()),
            ActuationTarget::Area(_) => None,
        }
    }

    /// Adjudicates one actuation request. Area-targeted requests are
    /// checked against default constraints only (their recipient set is
    /// unknown until transmission).
    pub fn request(
        &mut self,
        consumer: SubscriberId,
        priority: u8,
        target: &ActuationTarget,
        command: &SensorCommand,
    ) -> Decision {
        let sensor = Self::sensor_of(target);

        let decision = match *command {
            SensorCommand::SetReportInterval { stream, interval_ms } => self.mediate_value(
                consumer,
                priority,
                sensor,
                command,
                MediatedKind::Interval { stream },
                interval_ms,
            ),
            SensorCommand::SetDutyCycle { permille } => self.mediate_value(
                consumer,
                priority,
                sensor,
                command,
                MediatedKind::Duty,
                u32::from(permille),
            ),
            _ => {
                // Non-mediated commands: constraint check only.
                let check_on =
                    sensor.map_or(Ok(()), |s| self.check_constraints(s, command, priority));
                match check_on {
                    Ok(()) => Decision::Granted { effective: *command },
                    Err(reason) => Decision::Denied { reason },
                }
            }
        };

        match &decision {
            Decision::Granted { .. } => self.approved += 1,
            Decision::Denied { .. } => self.denied += 1,
        }
        decision
    }

    fn mediate_value(
        &mut self,
        consumer: SubscriberId,
        priority: u8,
        sensor: Option<SensorId>,
        command: &SensorCommand,
        kind: MediatedKind,
        requested: u32,
    ) -> Decision {
        let Some(sensor) = sensor else {
            // Area targets cannot be mediated per-sensor; constraint
            // check against defaults and pass through.
            return match self.check_area_defaults(command, priority) {
                Ok(()) => Decision::Granted { effective: *command },
                Err(reason) => Decision::Denied { reason },
            };
        };

        let demands = match kind {
            MediatedKind::Interval { stream } => {
                self.interval_demands.entry((sensor.as_u32(), stream.as_u8())).or_default()
            }
            MediatedKind::Duty => self.duty_demands.entry(sensor.as_u32()).or_default(),
        };

        // Conflict resolution decides the candidate effective value.
        let others: Vec<(SubscriberId, Demand)> =
            demands.iter().filter(|(id, _)| **id != consumer).map(|(id, d)| (*id, *d)).collect();
        let effective_value = match self.policy {
            MediationPolicy::DenyConflicts => {
                if let Some((holder, d)) = others.iter().find(|(_, d)| d.value != requested) {
                    let _ = d;
                    return Decision::Denied { reason: DenyReason::Conflict { holder: *holder } };
                }
                requested
            }
            MediationPolicy::PriorityWins => {
                if let Some((holder, _)) =
                    others.iter().find(|(_, d)| d.value != requested && d.priority >= priority)
                {
                    return Decision::Denied { reason: DenyReason::Conflict { holder: *holder } };
                }
                requested
            }
            MediationPolicy::MergeMax => match kind {
                // Fastest rate = smallest interval covers every demand.
                MediatedKind::Interval { .. } => others
                    .iter()
                    .map(|(_, d)| d.value)
                    .chain([requested])
                    .min()
                    .expect("non-empty by construction"),
                // Most awake = largest duty cycle.
                MediatedKind::Duty => others
                    .iter()
                    .map(|(_, d)| d.value)
                    .chain([requested])
                    .max()
                    .expect("non-empty by construction"),
            },
        };

        let effective = kind.rebuild(command, effective_value);
        if let Err(reason) = self.check_constraints(sensor, &effective, priority) {
            return Decision::Denied { reason };
        }

        // Record this consumer's demand (the *requested* value — releases
        // recompute merges from raw demands).
        let demands = match kind {
            MediatedKind::Interval { stream } => {
                self.interval_demands.entry((sensor.as_u32(), stream.as_u8())).or_default()
            }
            MediatedKind::Duty => self.duty_demands.entry(sensor.as_u32()).or_default(),
        };
        demands.insert(consumer, Demand { value: requested, priority });

        // Under PriorityWins the winning demand displaces losers' records.
        if self.policy == MediationPolicy::PriorityWins {
            demands.retain(|_, d| d.value == requested || d.priority > priority);
        }

        Decision::Granted { effective }
    }

    fn check_area_defaults(&self, command: &SensorCommand, priority: u8) -> Result<(), DenyReason> {
        let env = Self::env_for(command, priority);
        for c in &self.default_constraints {
            match c.check(&env) {
                Ok(true) => {}
                Ok(false) => return Err(DenyReason::ConstraintViolated(c.source().to_owned())),
                Err(ConstraintError::UnknownIdentifier(_)) => {}
                Err(e) => return Err(DenyReason::ConstraintError(e)),
            }
        }
        Ok(())
    }

    /// Withdraws every demand held by a departing consumer. Returns the
    /// number of demands released.
    pub fn release_consumer(&mut self, consumer: SubscriberId) -> usize {
        let mut released = 0;
        self.interval_demands.retain(|_, demands| {
            if demands.remove(&consumer).is_some() {
                released += 1;
            }
            !demands.is_empty()
        });
        self.duty_demands.retain(|_, demands| {
            if demands.remove(&consumer).is_some() {
                released += 1;
            }
            !demands.is_empty()
        });
        released
    }

    /// The merged effective interval (ms) currently demanded for a
    /// stream, if any consumer holds a demand — the "approximate
    /// overview of the sensors' configuration" (§6).
    pub fn effective_interval_ms(&self, sensor: SensorId, stream: StreamIndex) -> Option<u32> {
        self.interval_demands
            .get(&(sensor.as_u32(), stream.as_u8()))
            .and_then(|d| d.values().map(|d| d.value).min())
    }

    /// Requests approved so far.
    pub fn approved_count(&self) -> u64 {
        self.approved
    }

    /// Requests denied so far.
    pub fn denied_count(&self) -> u64 {
        self.denied
    }
}

#[derive(Clone, Copy, Debug)]
enum MediatedKind {
    Interval { stream: StreamIndex },
    Duty,
}

impl MediatedKind {
    fn rebuild(self, original: &SensorCommand, value: u32) -> SensorCommand {
        match (self, original) {
            (MediatedKind::Interval { stream }, _) => {
                SensorCommand::SetReportInterval { stream, interval_ms: value }
            }
            (MediatedKind::Duty, _) => {
                SensorCommand::SetDutyCycle { permille: value.min(u32::from(u16::MAX)) as u16 }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensor() -> SensorId {
        SensorId::new(5).unwrap()
    }

    fn target() -> ActuationTarget {
        ActuationTarget::Sensor(sensor())
    }

    fn interval(ms: u32) -> SensorCommand {
        SensorCommand::SetReportInterval { stream: StreamIndex::new(0), interval_ms: ms }
    }

    fn sub(n: u32) -> SubscriberId {
        SubscriberId::new(n)
    }

    #[test]
    fn unconstrained_request_granted() {
        let mut rm = ResourceManager::new(MediationPolicy::MergeMax);
        let d = rm.request(sub(1), 0, &target(), &interval(500));
        assert_eq!(d, Decision::Granted { effective: interval(500) });
        assert_eq!(rm.approved_count(), 1);
    }

    #[test]
    fn constraint_blocks_excessive_rate() {
        let mut rm = ResourceManager::new(MediationPolicy::MergeMax);
        rm.register_profile(
            sensor(),
            SensorProfile { constraints: vec![Constraint::parse("rate_hz <= 2").unwrap()] },
        );
        assert!(rm.request(sub(1), 0, &target(), &interval(500)).is_granted());
        let d = rm.request(sub(2), 0, &target(), &interval(100)); // 10 Hz
        assert!(matches!(d, Decision::Denied { reason: DenyReason::ConstraintViolated(_) }));
        assert_eq!(rm.denied_count(), 1);
    }

    #[test]
    fn inapplicable_constraints_skipped() {
        let mut rm = ResourceManager::new(MediationPolicy::MergeMax);
        rm.register_profile(
            sensor(),
            SensorProfile { constraints: vec![Constraint::parse("rate_hz <= 2").unwrap()] },
        );
        // A Sleep command has no rate_hz; the constraint is skipped.
        let d = rm.request(sub(1), 0, &target(), &SensorCommand::Sleep { duration_ms: 100 });
        assert!(d.is_granted());
    }

    #[test]
    fn merge_max_takes_fastest_interval() {
        let mut rm = ResourceManager::new(MediationPolicy::MergeMax);
        assert_eq!(
            rm.request(sub(1), 0, &target(), &interval(1000)),
            Decision::Granted { effective: interval(1000) }
        );
        // A second consumer wants 5x faster: both get 200ms.
        assert_eq!(
            rm.request(sub(2), 0, &target(), &interval(200)),
            Decision::Granted { effective: interval(200) }
        );
        // A third wants slower: effective stays at the fastest demand.
        assert_eq!(
            rm.request(sub(3), 0, &target(), &interval(2000)),
            Decision::Granted { effective: interval(200) }
        );
        assert_eq!(rm.effective_interval_ms(sensor(), StreamIndex::new(0)), Some(200));
    }

    #[test]
    fn merge_max_effective_must_satisfy_constraints() {
        let mut rm = ResourceManager::new(MediationPolicy::MergeMax);
        rm.register_profile(
            sensor(),
            SensorProfile { constraints: vec![Constraint::parse("rate_hz <= 5").unwrap()] },
        );
        assert!(rm.request(sub(1), 0, &target(), &interval(250)).is_granted()); // 4 Hz
                                                                                // Requesting 10 Hz: merged effective would be 10 Hz > cap → denied.
        assert!(!rm.request(sub(2), 0, &target(), &interval(100)).is_granted());
        // The original demand still stands.
        assert_eq!(rm.effective_interval_ms(sensor(), StreamIndex::new(0)), Some(250));
    }

    #[test]
    fn deny_conflicts_refuses_second_differing_demand() {
        let mut rm = ResourceManager::new(MediationPolicy::DenyConflicts);
        assert!(rm.request(sub(1), 0, &target(), &interval(1000)).is_granted());
        let d = rm.request(sub(2), 5, &target(), &interval(100));
        assert!(matches!(
            d,
            Decision::Denied { reason: DenyReason::Conflict { holder } } if holder == sub(1)
        ));
        // An identical demand is fine.
        assert!(rm.request(sub(3), 0, &target(), &interval(1000)).is_granted());
    }

    #[test]
    fn priority_wins_overrides_lower() {
        let mut rm = ResourceManager::new(MediationPolicy::PriorityWins);
        assert!(rm.request(sub(1), 1, &target(), &interval(1000)).is_granted());
        // Lower priority conflicting demand refused.
        assert!(!rm.request(sub(2), 0, &target(), &interval(100)).is_granted());
        // Equal priority: incumbent wins.
        assert!(!rm.request(sub(3), 1, &target(), &interval(100)).is_granted());
        // Higher priority displaces.
        assert_eq!(
            rm.request(sub(4), 3, &target(), &interval(100)),
            Decision::Granted { effective: interval(100) }
        );
        assert_eq!(rm.effective_interval_ms(sensor(), StreamIndex::new(0)), Some(100));
    }

    #[test]
    fn duty_cycle_merge_takes_most_awake() {
        let mut rm = ResourceManager::new(MediationPolicy::MergeMax);
        let duty = |p: u16| SensorCommand::SetDutyCycle { permille: p };
        assert_eq!(
            rm.request(sub(1), 0, &target(), &duty(100)),
            Decision::Granted { effective: duty(100) }
        );
        assert_eq!(
            rm.request(sub(2), 0, &target(), &duty(700)),
            Decision::Granted { effective: duty(700) }
        );
        // A sleepier demand cannot drag the merged value down.
        assert_eq!(
            rm.request(sub(3), 0, &target(), &duty(50)),
            Decision::Granted { effective: duty(700) }
        );
    }

    #[test]
    fn release_consumer_recomputes_merge() {
        let mut rm = ResourceManager::new(MediationPolicy::MergeMax);
        rm.request(sub(1), 0, &target(), &interval(1000));
        rm.request(sub(2), 0, &target(), &interval(100));
        assert_eq!(rm.effective_interval_ms(sensor(), StreamIndex::new(0)), Some(100));
        assert_eq!(rm.release_consumer(sub(2)), 1);
        assert_eq!(rm.effective_interval_ms(sensor(), StreamIndex::new(0)), Some(1000));
        assert_eq!(rm.release_consumer(sub(1)), 1);
        assert_eq!(rm.effective_interval_ms(sensor(), StreamIndex::new(0)), None);
        assert_eq!(rm.release_consumer(sub(1)), 0);
    }

    #[test]
    fn streams_mediate_independently() {
        let mut rm = ResourceManager::new(MediationPolicy::DenyConflicts);
        let s1 = SensorCommand::SetReportInterval { stream: StreamIndex::new(1), interval_ms: 100 };
        assert!(rm.request(sub(1), 0, &target(), &interval(1000)).is_granted());
        assert!(
            rm.request(sub(2), 0, &target(), &s1).is_granted(),
            "different stream, no conflict"
        );
    }

    #[test]
    fn stream_target_resolves_to_sensor() {
        let mut rm = ResourceManager::new(MediationPolicy::MergeMax);
        rm.register_profile(
            sensor(),
            SensorProfile { constraints: vec![Constraint::parse("rate_hz <= 1").unwrap()] },
        );
        let stream_target =
            ActuationTarget::Stream(garnet_wire::StreamId::new(sensor(), StreamIndex::new(0)));
        assert!(!rm.request(sub(1), 0, &stream_target, &interval(100)).is_granted());
    }

    #[test]
    fn area_target_checked_against_defaults() {
        let mut rm = ResourceManager::new(MediationPolicy::MergeMax);
        rm.set_default_constraints(vec![Constraint::parse("rate_hz <= 1").unwrap()]);
        let area = ActuationTarget::Area(garnet_wire::TargetArea::new(0.0, 0.0, 50.0));
        assert!(!rm.request(sub(1), 0, &area, &interval(100)).is_granted());
        assert!(rm.request(sub(1), 0, &area, &interval(2000)).is_granted());
    }

    #[test]
    fn priority_visible_to_constraints() {
        let mut rm = ResourceManager::new(MediationPolicy::MergeMax);
        rm.register_profile(
            sensor(),
            SensorProfile {
                constraints: vec![Constraint::parse("rate_hz <= 1 || priority >= 5").unwrap()],
            },
        );
        assert!(!rm.request(sub(1), 0, &target(), &interval(100)).is_granted());
        assert!(rm.request(sub(1), 5, &target(), &interval(100)).is_granted());
    }

    #[test]
    fn broken_constraint_reports_error() {
        let mut rm = ResourceManager::new(MediationPolicy::MergeMax);
        rm.register_profile(
            sensor(),
            SensorProfile { constraints: vec![Constraint::parse("rate_hz && true").unwrap()] },
        );
        let d = rm.request(sub(1), 0, &target(), &interval(100));
        assert!(matches!(d, Decision::Denied { reason: DenyReason::ConstraintError(_) }));
    }

    #[test]
    fn deny_reason_displays() {
        let r = DenyReason::ConstraintViolated("rate_hz <= 2".into());
        assert!(r.to_string().contains("rate_hz <= 2"));
        let r = DenyReason::Conflict { holder: sub(9) };
        assert!(r.to_string().contains("sub9"));
    }
}
