//! Per-consumer QoS scheduling: priority classes, tiered staging, and
//! subscription-keyed delivery coalescing.
//!
//! The legacy overload path (`OverloadConfig` on the router) is a single
//! global bounded queue: one slow consumer fills it and every subscriber
//! pays. This module generalises it into three pieces the facade
//! composes in front of either engine:
//!
//! * [`PriorityClass`] — every [`ServiceEvent`] belongs to exactly one
//!   of **Control > Actuation > Data**. The router's ad-hoc "never drop
//!   control" rule becomes explicit: only Data is ever governed by an
//!   overload policy; Control and Actuation pass through counted but
//!   untouched, and [`QosScheduler::release`] drains tiers in strict
//!   priority order.
//! * [`QosScheduler`] — tiered staging *in front of* admission. Data
//!   frames stage into a bounded tier whose shed/coalesce semantics
//!   mirror the router's byte for byte, so a burst observes the same
//!   ledger, the same survivors and the same delivery order as the
//!   legacy in-queue policy — but because the policy now runs entirely
//!   at the facade boundary, **both engines schedule identically**,
//!   making overloaded runs bit-identical across `{Fifo, Threaded}` ×
//!   shard × batch layouts (the legacy threaded edge sheds on
//!   wall-clock timing and cannot promise that).
//! * [`DeliverySchedule`] — coalescing keyed per **consumer
//!   subscription** (`SubscriberId` × stream), not per stream: a slow
//!   consumer's in-window duplicates collapse in its own queue without
//!   touching a fast consumer's delivery sequence.
//!
//! Capacity is adaptive: at each quiescence the data tier retunes its
//! bound from the p99 of the depth histogram the `overload.*` metrics
//! already collect, clamped to the `[floor, ceiling]` band of
//! [`QosConfig`]. With the band collapsed (the default), the bound is
//! exactly the legacy `OverloadConfig::capacity`.
//!
//! Every class keeps the exact ledger `offered == shed + delivered`
//! (Control and Actuation trivially so — their shed is always zero),
//! and each dropped frame passes through exactly one terminal
//! accounting point, so a frame that is first coalesced into a
//! survivor and later shed is counted once, not twice.

use std::collections::{BTreeMap, HashMap, VecDeque};

use garnet_net::SubscriberId;
use garnet_simkit::{Histogram, SimTime};
use garnet_wire::{peek_seq, peek_stream};

use crate::filtering::Delivery;
use crate::router::{OverloadConfig, OverloadPolicy, OverloadTotals};
use crate::service::{BatchedFrame, ServiceEvent};

/// The scheduling class of a [`ServiceEvent`] — strict priority order,
/// highest first. Only [`PriorityClass::Data`] is ever shed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PriorityClass {
    /// Graph-keeping events: reorder flushes, orphanage hand-offs,
    /// location observations and hints, coordinator state reports.
    /// Losing one corrupts bookkeeping, so they are never dropped.
    Control,
    /// The actuation chain: requests, mediation submits, replication,
    /// acks and retry ticks. Losing one strands a sensor command.
    Actuation,
    /// The data plane: frames, frame batches and filtered deliveries —
    /// the only class an overload policy may shed or coalesce.
    Data,
}

impl PriorityClass {
    /// All classes, in strict priority (drain) order.
    pub const ALL: [PriorityClass; 3] =
        [PriorityClass::Control, PriorityClass::Actuation, PriorityClass::Data];

    /// The class an event schedules under.
    pub fn of(ev: &ServiceEvent) -> PriorityClass {
        match ev {
            ServiceEvent::Frame { .. }
            | ServiceEvent::FrameBatch { .. }
            | ServiceEvent::Filtered { .. } => PriorityClass::Data,
            ServiceEvent::ActuationRequested { .. }
            | ServiceEvent::Submit { .. }
            | ServiceEvent::Replicate { .. }
            | ServiceEvent::AckReceived { .. }
            | ServiceEvent::ActuationTick => PriorityClass::Actuation,
            ServiceEvent::FlushReorder
            | ServiceEvent::Orphaned { .. }
            | ServiceEvent::Observed { .. }
            | ServiceEvent::Hint { .. }
            | ServiceEvent::StateReported { .. } => PriorityClass::Control,
        }
    }

    /// Stable metric-name segment (`qos.<name>.offered` …).
    pub fn name(self) -> &'static str {
        match self {
            PriorityClass::Control => "control",
            PriorityClass::Actuation => "actuation",
            PriorityClass::Data => "data",
        }
    }

    /// Dense index for per-class arrays, in [`PriorityClass::ALL`]
    /// order.
    pub fn index(self) -> usize {
        match self {
            PriorityClass::Control => 0,
            PriorityClass::Actuation => 1,
            PriorityClass::Data => 2,
        }
    }
}

/// Whether the facade schedules through the QoS layer or preserves the
/// legacy in-router overload path bit for bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QosMode {
    /// Admission, classing and per-consumer delivery run through
    /// [`QosScheduler`] / [`DeliverySchedule`] at the facade boundary.
    Scheduled,
    /// The pre-QoS behaviour: the engine's own [`OverloadConfig`]
    /// governs admission and deliveries are immediate. No `qos.*`
    /// metrics are emitted.
    Legacy,
}

impl Default for QosMode {
    /// [`QosMode::Scheduled`], unless the `GARNET_TEST_QOS` environment
    /// variable says `legacy`/`off`/`0` — the hook CI uses to prove
    /// default-config suites behave identically without the QoS layer
    /// (the twin of `GARNET_TEST_DRIVER` / `GARNET_TEST_BATCH`).
    fn default() -> Self {
        match std::env::var("GARNET_TEST_QOS") {
            Ok(v)
                if v == "0"
                    || v.eq_ignore_ascii_case("legacy")
                    || v.eq_ignore_ascii_case("off") =>
            {
                QosMode::Legacy
            }
            _ => QosMode::Scheduled,
        }
    }
}

/// QoS tuning. The scheduler only activates when the facade also has an
/// [`OverloadConfig`] — an unbounded intake has nothing to schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QosConfig {
    /// Scheduled (default) or legacy pass-through.
    pub mode: QosMode,
    /// Lower bound for the adaptive data-tier capacity. `None` pins it
    /// to `OverloadConfig::capacity` (adaptation disabled downward).
    pub data_floor: Option<usize>,
    /// Upper bound for the adaptive data-tier capacity. `None` pins it
    /// to `OverloadConfig::capacity` (adaptation disabled upward).
    pub data_ceiling: Option<usize>,
    /// Bound on each rate-limited consumer's staged delivery queue
    /// (oldest staged delivery is shed at overflow, after per-stream
    /// coalescing has had its chance). 0 is treated as 1.
    pub consumer_queue_capacity: usize,
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            mode: QosMode::default(),
            data_floor: None,
            data_ceiling: None,
            consumer_queue_capacity: 64,
        }
    }
}

/// One class's monotonic scheduling ledger. At quiescence
/// `offered == shed + delivered`; for Control and Actuation, `shed`
/// and `coalesced` are zero by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassLedger {
    /// Events of this class accepted into scheduling.
    pub offered: u64,
    /// Events dropped by the overload policy (Data only).
    pub shed: u64,
    /// The subset of `shed` dropped in favour of a newer same-stream
    /// sequence.
    pub coalesced: u64,
    /// Events released into the engine.
    pub delivered: u64,
}

impl ClassLedger {
    /// `offered == shed + delivered` (the exact ledger).
    pub fn balanced(&self) -> bool {
        self.offered == self.shed + self.delivered
    }
}

/// Ledgers for all three classes, indexed by [`PriorityClass::index`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassLedgers(pub [ClassLedger; 3]);

impl ClassLedgers {
    /// The ledger of one class.
    pub fn class(&self, c: PriorityClass) -> &ClassLedger {
        &self.0[c.index()]
    }

    fn class_mut(&mut self, c: PriorityClass) -> &mut ClassLedger {
        &mut self.0[c.index()]
    }
}

/// A data frame parked in the scheduler's bounded tier.
#[derive(Debug)]
struct StagedFrame {
    frame: BatchedFrame,
    offered_at: SimTime,
}

/// One item of a strict-priority release plan: Control events first,
/// then Actuation, then the surviving Data frames as one batch (so the
/// engine's batched admission path is preserved).
#[derive(Debug)]
pub enum Release {
    /// A control- or actuation-class event for
    /// [`crate::driver::RouterDriver::push_event`].
    Event(ServiceEvent),
    /// The surviving data frames, in admission order, for
    /// [`crate::driver::RouterDriver::admit_frames`].
    Frames(Vec<BatchedFrame>),
}

/// What [`QosScheduler::offer_frame`] did with a data frame.
#[derive(Debug)]
pub enum FrameOffer {
    /// Staged below capacity.
    Staged,
    /// Staged after the oldest staged frame was shed.
    StagedAfterShed,
    /// Resolved against a staged frame of the same stream (newer
    /// sequence survives).
    Coalesced,
    /// Tier at capacity under [`OverloadPolicy::Block`]: release the
    /// staged tier into the engine, pump it dry, then re-offer. Nothing
    /// is counted for a blocked attempt.
    Blocked(BatchedFrame),
}

/// The facade-boundary scheduler: three priority tiers with a bounded,
/// policy-governed Data tier and strict-priority release. See the
/// module docs for how this relates to the legacy in-router policy.
#[derive(Debug)]
pub struct QosScheduler {
    policy: OverloadPolicy,
    /// Current data-tier bound (retuned at quiescence within
    /// `[floor, ceiling]`).
    capacity: usize,
    floor: usize,
    ceiling: usize,
    control: VecDeque<(ServiceEvent, SimTime)>,
    actuation: VecDeque<(ServiceEvent, SimTime)>,
    data: VecDeque<StagedFrame>,
    ledgers: ClassLedgers,
    peak_depth: u64,
    depth_hist: Histogram,
    /// Per-class offer→release wait (µs, sim time).
    waits: [Histogram; 3],
    retunes: u64,
}

impl QosScheduler {
    /// Builds a scheduler enforcing `overload`'s policy at the facade
    /// boundary, with the adaptive band from `qos` (both bounds default
    /// to the legacy capacity, which disables adaptation).
    pub fn new(overload: OverloadConfig, qos: &QosConfig) -> Self {
        let legacy = overload.capacity.max(1);
        let floor = qos.data_floor.unwrap_or(legacy).max(1);
        let ceiling = qos.data_ceiling.unwrap_or(legacy).max(floor);
        QosScheduler {
            policy: overload.policy,
            capacity: legacy.clamp(floor, ceiling),
            floor,
            ceiling,
            control: VecDeque::new(),
            actuation: VecDeque::new(),
            data: VecDeque::new(),
            ledgers: ClassLedgers::default(),
            peak_depth: 0,
            depth_hist: Histogram::new(),
            waits: [Histogram::new(), Histogram::new(), Histogram::new()],
            retunes: 0,
        }
    }

    /// Stages a non-data event into its class tier. Control and
    /// Actuation tiers are unbounded — these classes are never shed.
    /// Data-class events entering by this path (derived `Filtered`
    /// republications) also pass untouched: the overload policy governs
    /// radio frames, not deliveries already paid for.
    pub fn offer_event(&mut self, ev: ServiceEvent, now: SimTime) {
        let class = PriorityClass::of(&ev);
        self.ledgers.class_mut(class).offered += 1;
        match class {
            PriorityClass::Control => self.control.push_back((ev, now)),
            // Data-class control-path entries skip the bounded tier:
            // count them delivered on release alongside actuation.
            PriorityClass::Actuation | PriorityClass::Data => self.actuation.push_back((ev, now)),
        }
    }

    /// Offers one radio frame to the bounded Data tier under the
    /// configured policy. Mirrors `Router::admit_frame` exactly —
    /// shed-oldest, per-stream newest-wins coalescing with replace in
    /// place, blocked hand-back — so a burst's ledger and survivors
    /// match the legacy path bit for bit.
    pub fn offer_frame(&mut self, frame: BatchedFrame, now: SimTime) -> FrameOffer {
        if self.data.len() < self.capacity {
            self.note_offered(frame, now);
            return FrameOffer::Staged;
        }
        match self.policy {
            OverloadPolicy::Block => FrameOffer::Blocked(frame),
            OverloadPolicy::Shed => {
                self.drop_staged_oldest();
                self.note_offered(frame, now);
                FrameOffer::StagedAfterShed
            }
            OverloadPolicy::CoalesceFrames => self.coalesce(frame, now),
        }
    }

    /// Counts and stages an accepted frame, sampling the tier depth
    /// (the same cadence the legacy router samples at admission).
    fn note_offered(&mut self, frame: BatchedFrame, now: SimTime) {
        self.ledgers.class_mut(PriorityClass::Data).offered += 1;
        self.data.push_back(StagedFrame { frame, offered_at: now });
        let depth = self.data.len() as u64;
        self.peak_depth = self.peak_depth.max(depth);
        self.depth_hist.record(depth);
    }

    /// The single terminal accounting point for a dropped data frame:
    /// every drop — shed-oldest, coalesce victim, either branch —
    /// passes through here exactly once, so a frame that was first a
    /// coalesce survivor and is later shed still counts once.
    fn note_dropped(&mut self, coalesced: bool) {
        let ledger = self.ledgers.class_mut(PriorityClass::Data);
        ledger.shed += 1;
        if coalesced {
            ledger.coalesced += 1;
        }
        debug_assert!(
            ledger.offered >= ledger.shed + ledger.delivered,
            "data ledger overdrawn: {ledger:?}"
        );
    }

    fn drop_staged_oldest(&mut self) {
        if self.data.pop_front().is_some() {
            self.note_dropped(false);
        }
    }

    /// At capacity under `CoalesceFrames`: resolve against the staged
    /// frame of the arriving frame's stream (wraparound-aware newest
    /// wins, survivor keeps the staged position), falling back to
    /// shedding the oldest staged frame when the stream has nothing
    /// staged. Same tie-breaks as `Router::coalesce_frame`.
    fn coalesce(&mut self, frame: BatchedFrame, now: SimTime) -> FrameOffer {
        let stream = peek_stream(&frame.frame);
        let same_stream = stream
            .and_then(|s| self.data.iter().position(|q| peek_stream(&q.frame.frame) == Some(s)));
        let Some(idx) = same_stream else {
            self.drop_staged_oldest();
            self.note_offered(frame, now);
            return FrameOffer::StagedAfterShed;
        };
        let staged_seq = peek_seq(&self.data[idx].frame.frame);
        let arriving_wins = match (peek_seq(&frame.frame), staged_seq) {
            (Some(a), Some(q)) => a.is_after(q),
            (Some(_), None) => true,
            _ => false,
        };
        self.ledgers.class_mut(PriorityClass::Data).offered += 1;
        self.note_dropped(true);
        if arriving_wins {
            // Replace in place: the survivor keeps the staged frame's
            // position, and thus its place in the release order.
            self.data[idx] = StagedFrame { frame, offered_at: now };
            let depth = self.data.len() as u64;
            self.peak_depth = self.peak_depth.max(depth);
            self.depth_hist.record(depth);
        }
        FrameOffer::Coalesced
    }

    /// Drains every tier in strict priority order — Control, then
    /// Actuation, then the surviving Data frames as one batch — and
    /// counts each released item delivered, recording its offer→release
    /// wait.
    pub fn release(&mut self, now: SimTime) -> Vec<Release> {
        let mut plan = Vec::new();
        while let Some((ev, at)) = self.control.pop_front() {
            self.note_released(PriorityClass::Control, at, now);
            plan.push(Release::Event(ev));
        }
        while let Some((ev, at)) = self.actuation.pop_front() {
            let class = PriorityClass::of(&ev);
            self.note_released(class, at, now);
            plan.push(Release::Event(ev));
        }
        if !self.data.is_empty() {
            let mut frames = Vec::with_capacity(self.data.len());
            while let Some(staged) = self.data.pop_front() {
                self.note_released(PriorityClass::Data, staged.offered_at, now);
                frames.push(staged.frame);
            }
            plan.push(Release::Frames(frames));
        }
        plan
    }

    fn note_released(&mut self, class: PriorityClass, offered_at: SimTime, now: SimTime) {
        self.ledgers.class_mut(class).delivered += 1;
        self.waits[class.index()].record(now.saturating_since(offered_at).as_micros());
    }

    /// Retunes the data-tier capacity from the depth histogram's p99 —
    /// called at quiescence, the one point both engines reach
    /// deterministically. Target is `2 × p99` clamped to the
    /// configured band; a collapsed band (the default) makes this a
    /// no-op, preserving the legacy fixed bound.
    pub fn note_quiescent(&mut self) {
        if self.floor == self.ceiling {
            return;
        }
        let p99 = self.depth_hist.p99();
        let target = (p99.saturating_mul(2).max(1) as usize).clamp(self.floor, self.ceiling);
        if target != self.capacity {
            self.capacity = target;
            self.retunes += 1;
        }
    }

    /// The Data tier's ledger, shaped as the legacy overload totals
    /// (what `overload.*` metrics report when the scheduler governs
    /// admission).
    pub fn totals(&self) -> OverloadTotals {
        let d = self.ledgers.class(PriorityClass::Data);
        OverloadTotals {
            offered: d.offered,
            shed: d.shed,
            coalesced: d.coalesced,
            delivered: d.delivered,
        }
    }

    /// All three class ledgers.
    pub fn ledgers(&self) -> &ClassLedgers {
        &self.ledgers
    }

    /// Current (possibly retuned) data-tier bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many times `note_quiescent` moved the bound.
    pub fn retune_count(&self) -> u64 {
        self.retunes
    }

    /// High-water mark of the staged Data tier.
    pub fn peak_depth(&self) -> u64 {
        self.peak_depth
    }

    /// p99 of tier-depth-at-offer samples.
    pub fn depth_p99(&self) -> u64 {
        self.depth_hist.p99()
    }

    /// One class's offer→release wait histogram (µs, sim time).
    pub fn wait_hist(&self, class: PriorityClass) -> &Histogram {
        &self.waits[class.index()]
    }
}

/// Per-consumer delivery scheduling: coalescing keyed by
/// (`SubscriberId` × stream). Consumers without a drain limit are
/// untouched — their deliveries never enter this structure's queues —
/// so enabling QoS changes nothing until a consumer is actually
/// declared slow.
#[derive(Debug, Default)]
pub struct DeliverySchedule {
    /// Per-consumer staged-queue bound (from
    /// [`QosConfig::consumer_queue_capacity`]).
    capacity: usize,
    /// Max deliveries drained per facade call, per limited consumer.
    limits: HashMap<SubscriberId, usize>,
    /// Staged deliveries per limited consumer, oldest first. BTreeMap:
    /// drain order is deterministic across runs and engines.
    queues: BTreeMap<SubscriberId, VecDeque<(Delivery, u32)>>,
    ledger: ClassLedger,
    peak_backlog: u64,
}

impl DeliverySchedule {
    /// An empty schedule whose per-consumer queues hold at most
    /// `capacity` staged deliveries (0 treated as 1).
    pub fn new(capacity: usize) -> Self {
        DeliverySchedule { capacity: capacity.max(1), ..Default::default() }
    }

    /// Declares `id` a slow consumer draining at most `limit`
    /// deliveries per facade call (`None` removes the limit; its
    /// backlog flushes on the next drain).
    pub fn set_limit(&mut self, id: SubscriberId, limit: Option<usize>) {
        match limit {
            Some(l) => {
                self.limits.insert(id, l.max(1));
            }
            None => {
                self.limits.remove(&id);
            }
        }
    }

    /// Whether `id` currently has a drain limit.
    pub fn is_limited(&self, id: SubscriberId) -> bool {
        self.limits.contains_key(&id)
    }

    /// Offers a delivery to `id`. Unlimited consumers get it straight
    /// back (`Some`) for immediate delivery; limited consumers stage it
    /// (`None`), coalescing against a staged delivery of the same
    /// stream (newest sequence wins, survivor keeps its queue position)
    /// and shedding the oldest staged delivery at overflow.
    pub fn offer(
        &mut self,
        id: SubscriberId,
        delivery: Delivery,
        depth: u32,
    ) -> Option<(Delivery, u32)> {
        if !self.limits.contains_key(&id) {
            return Some((delivery, depth));
        }
        self.ledger.offered += 1;
        let queue = self.queues.entry(id).or_default();
        let stream = delivery.msg.stream();
        if let Some(idx) = queue.iter().position(|(d, _)| d.msg.stream() == stream) {
            // Per-subscription coalescing: this consumer is behind on
            // this stream, so only the newest sequence is worth keeping
            // — other consumers' queues are not consulted.
            if delivery.msg.seq().is_after(queue[idx].0.msg.seq()) {
                queue[idx] = (delivery, depth);
            }
            self.ledger.shed += 1;
            self.ledger.coalesced += 1;
            return None;
        }
        if queue.len() >= self.capacity {
            queue.pop_front();
            self.ledger.shed += 1;
        }
        queue.push_back((delivery, depth));
        let backlog: u64 = self.queues.values().map(|q| q.len() as u64).sum();
        self.peak_backlog = self.peak_backlog.max(backlog);
        None
    }

    /// Drains each consumer's staged queue up to its limit (all of it
    /// for consumers whose limit was removed), in subscriber-id order.
    /// Call once per facade entry point.
    pub fn drain(&mut self) -> Vec<(SubscriberId, Delivery, u32)> {
        let mut due = Vec::new();
        for (&id, queue) in &mut self.queues {
            let take = self.limits.get(&id).copied().unwrap_or(usize::MAX).min(queue.len());
            for _ in 0..take {
                let (delivery, depth) = queue.pop_front().expect("take <= len");
                self.ledger.delivered += 1;
                due.push((id, delivery, depth));
            }
        }
        self.queues.retain(|_, q| !q.is_empty());
        due
    }

    /// Drains everything regardless of limits (shutdown: nothing may be
    /// stranded, so the ledger closes balanced).
    pub fn drain_all(&mut self) -> Vec<(SubscriberId, Delivery, u32)> {
        self.limits.clear();
        self.drain()
    }

    /// Deliveries currently staged across all consumers.
    pub fn backlog(&self) -> u64 {
        self.queues.values().map(|q| q.len() as u64).sum()
    }

    /// High-water mark of the total staged backlog.
    pub fn peak_backlog(&self) -> u64 {
        self.peak_backlog
    }

    /// The delivery-plane ledger. Balanced as
    /// `offered == shed + delivered + backlog` mid-flight and
    /// `offered == shed + delivered` once drained.
    pub fn ledger(&self) -> &ClassLedger {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garnet_radio::ReceiverId;
    use garnet_wire::{DataMessage, FrameBytes, SensorId, SequenceNumber, StreamId, StreamIndex};

    fn frame_bytes(sensor: u32, idx: u8, seq: u16) -> FrameBytes {
        let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(idx));
        DataMessage::builder(stream)
            .seq(SequenceNumber::new(seq))
            .payload(vec![7])
            .build()
            .unwrap()
            .encode_to_vec()
            .into()
    }

    fn batched(sensor: u32, idx: u8, seq: u16) -> BatchedFrame {
        BatchedFrame {
            receiver: ReceiverId::new(0),
            rssi_dbm: -50.0,
            frame: frame_bytes(sensor, idx, seq),
        }
    }

    fn sched(policy: OverloadPolicy, capacity: usize) -> QosScheduler {
        QosScheduler::new(OverloadConfig { capacity, policy }, &QosConfig::default())
    }

    #[test]
    fn classes_cover_every_event_and_order_strictly() {
        assert!(PriorityClass::Control < PriorityClass::Actuation);
        assert!(PriorityClass::Actuation < PriorityClass::Data);
        assert_eq!(PriorityClass::of(&ServiceEvent::FlushReorder), PriorityClass::Control);
        assert_eq!(PriorityClass::of(&ServiceEvent::ActuationTick), PriorityClass::Actuation);
    }

    #[test]
    fn release_drains_control_before_data() {
        let mut s = sched(OverloadPolicy::Shed, 4);
        let t = SimTime::ZERO;
        assert!(matches!(s.offer_frame(batched(1, 0, 0), t), FrameOffer::Staged));
        s.offer_event(ServiceEvent::FlushReorder, t);
        s.offer_event(ServiceEvent::ActuationTick, t);
        let plan = s.release(t);
        assert!(matches!(plan[0], Release::Event(ServiceEvent::FlushReorder)));
        assert!(matches!(plan[1], Release::Event(ServiceEvent::ActuationTick)));
        assert!(matches!(&plan[2], Release::Frames(f) if f.len() == 1));
        for c in PriorityClass::ALL {
            assert!(s.ledgers().class(c).balanced(), "{c:?} unbalanced");
        }
    }

    #[test]
    fn shed_keeps_newest_and_balances() {
        let mut s = sched(OverloadPolicy::Shed, 2);
        let t = SimTime::ZERO;
        for seq in 0..5u16 {
            s.offer_frame(batched(1, 0, seq), t);
        }
        let plan = s.release(t);
        let Release::Frames(frames) = &plan[0] else { panic!("expected frames") };
        let seqs: Vec<u16> = frames.iter().map(|f| peek_seq(&f.frame).unwrap().as_u16()).collect();
        assert_eq!(seqs, vec![3, 4]);
        let d = s.ledgers().class(PriorityClass::Data);
        assert_eq!((d.offered, d.shed, d.delivered), (5, 3, 2));
    }

    #[test]
    fn coalesce_then_shed_counts_the_survivor_once() {
        // A coalesce survivor that is later shed must appear in the
        // ledger exactly once: offered at arrival, shed at its single
        // terminal, never both coalesced-away and shed.
        let mut s = sched(OverloadPolicy::CoalesceFrames, 2);
        let t = SimTime::ZERO;
        s.offer_frame(batched(1, 0, 0), t); // A0 staged
        s.offer_frame(batched(2, 0, 0), t); // B0 staged — tier full
                                            // A1 replaces A0 in place.
        assert!(matches!(s.offer_frame(batched(1, 0, 1), t), FrameOffer::Coalesced));
        // Stream C has nothing staged: fall back to shedding the oldest
        // staged frame — which is A1, the coalesce survivor.
        assert!(matches!(s.offer_frame(batched(3, 0, 0), t), FrameOffer::StagedAfterShed));
        s.release(t);
        let d = *s.ledgers().class(PriorityClass::Data);
        assert_eq!((d.offered, d.shed, d.coalesced, d.delivered), (4, 2, 1, 2));
        assert!(d.balanced());
    }

    #[test]
    fn adaptive_capacity_tracks_p99_within_band() {
        let cfg = QosConfig { data_floor: Some(2), data_ceiling: Some(64), ..QosConfig::default() };
        let mut s =
            QosScheduler::new(OverloadConfig { capacity: 8, policy: OverloadPolicy::Shed }, &cfg);
        let t = SimTime::ZERO;
        // Shallow bursts: depth samples stay tiny, so the bound adapts
        // down toward the floor.
        for _ in 0..10 {
            s.offer_frame(batched(1, 0, 0), t);
            s.release(t);
        }
        s.note_quiescent();
        assert_eq!(s.capacity(), 2, "2×p99(=1) clamps to the floor of 2");
        // Deep bursts drive it back up, still within the ceiling.
        for round in 0..20 {
            for seq in 0..8u16 {
                s.offer_frame(batched(1, 0, round * 8 + seq), t);
            }
            s.release(t);
        }
        s.note_quiescent();
        assert!(s.capacity() > 2 && s.capacity() <= 64, "capacity {}", s.capacity());
        assert!(s.retune_count() >= 2);
    }

    fn delivery(sensor: u32, idx: u8, seq: u16) -> Delivery {
        let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(idx));
        let msg = DataMessage::builder(stream)
            .seq(SequenceNumber::new(seq))
            .payload(vec![1])
            .build()
            .unwrap();
        Delivery { msg, first_received_at: SimTime::ZERO, delivered_at: SimTime::ZERO }
    }

    #[test]
    fn slow_consumer_coalesces_without_touching_fast() {
        let mut d = DeliverySchedule::new(8);
        let fast = SubscriberId::new(1);
        let slow = SubscriberId::new(2);
        d.set_limit(slow, Some(1));
        // Fast consumer: pass-through, never staged.
        assert!(d.offer(fast, delivery(1, 0, 0), 0).is_some());
        // Slow consumer: five same-stream deliveries collapse to the
        // newest…
        for seq in 0..5u16 {
            assert!(d.offer(slow, delivery(1, 0, seq), 0).is_none());
        }
        // …plus one on another stream, untouched.
        assert!(d.offer(slow, delivery(2, 0, 9), 0).is_none());
        assert_eq!(d.backlog(), 2);
        let first = d.drain();
        assert_eq!(first.len(), 1, "limit 1 drains one delivery per call");
        assert_eq!(first[0].1.msg.seq().as_u16(), 4, "newest sequence survived");
        let rest = d.drain_all();
        assert_eq!(rest.len(), 1);
        let l = d.ledger();
        assert_eq!(l.offered, l.shed + l.delivered, "{l:?}");
        assert_eq!(l.coalesced, 4);
    }

    #[test]
    fn overflow_sheds_oldest_staged_delivery() {
        let mut d = DeliverySchedule::new(2);
        let slow = SubscriberId::new(5);
        d.set_limit(slow, Some(1));
        for sensor in 1..=3u32 {
            d.offer(slow, delivery(sensor, 0, 0), 0);
        }
        assert_eq!(d.backlog(), 2);
        assert_eq!(d.ledger().shed, 1);
        let all = d.drain_all();
        let sensors: Vec<u32> =
            all.iter().map(|(_, dl, _)| dl.msg.stream().sensor().as_u32()).collect();
        assert_eq!(sensors, vec![2, 3], "sensor 1's delivery was the oldest, shed");
        assert!(d.ledger().balanced());
    }
}
