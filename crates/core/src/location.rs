//! The Location Service: inferred sensor positions.
//!
//! Two design choices from §5 shape this service. *Inferred location
//! data*: positions are estimated "without the active involvement of the
//! sensors" from which receivers heard them and how loudly, so simple
//! sensors need no GPS. *Generality of location information processing*:
//! consumers that happen to know where a sensor is "may supply location
//! hints instead" — and those hints fuse with the inferred estimate.
//!
//! The estimator is an RSSI-weighted centroid over recent observations:
//! each sighting contributes the receiver's position weighted by
//! 1/estimated-distance (nearer receivers know more), hints contribute
//! their own position at the supplied confidence. Uncertainty is
//! reported as the weighted RMS spread plus the strongest sighting's
//! estimated range, giving the Message Replicator a disk to cover.
//!
//! Location data is sensitive (§2): reads are gated by the
//! `ReadLocation` capability at the middleware facade.

use std::collections::{HashMap, VecDeque};

use garnet_radio::geometry::{weighted_centroid, Point};
use garnet_radio::{Propagation, Receiver, ReceiverId};
use garnet_simkit::{SimDuration, SimTime};
use garnet_wire::SensorId;

use crate::filtering::Observation;

/// Location Service tuning.
#[derive(Clone, Debug)]
pub struct LocationConfig {
    /// Sightings/hints older than this are ignored.
    pub max_age: SimDuration,
    /// Sightings retained per sensor.
    pub max_observations: usize,
    /// Only the loudest (nearest-estimated) sightings contribute to an
    /// estimate; far receivers carry little information and would drag
    /// the centroid toward the grid centre.
    pub max_sightings_used: usize,
    /// Propagation model used to turn RSSI into distance.
    pub propagation: Propagation,
}

impl Default for LocationConfig {
    fn default() -> Self {
        LocationConfig {
            max_age: SimDuration::from_secs(60),
            max_observations: 32,
            max_sightings_used: 8,
            propagation: Propagation::wifi_outdoor(),
        }
    }
}

/// A position estimate with uncertainty.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LocationEstimate {
    /// Best-guess position.
    pub position: Point,
    /// Radius (m) within which the sensor is believed to be.
    pub radius_m: f64,
    /// Instant of the most recent evidence.
    pub freshest_evidence: SimTime,
    /// Number of sightings/hints that contributed.
    pub evidence_count: usize,
}

#[derive(Clone, Debug)]
enum Evidence {
    Sighting { receiver_pos: Point, est_distance_m: f64, at: SimTime },
    Hint { position: Point, confidence: f64, at: SimTime },
}

impl Evidence {
    fn at(&self) -> SimTime {
        match self {
            Evidence::Sighting { at, .. } | Evidence::Hint { at, .. } => *at,
        }
    }
}

/// The Location Service.
///
/// # Example
///
/// ```
/// use garnet_core::location::{LocationConfig, LocationService};
/// use garnet_core::filtering::Observation;
/// use garnet_radio::{geometry::Point, Receiver, ReceiverId};
/// use garnet_simkit::SimTime;
/// use garnet_wire::SensorId;
///
/// let receivers = vec![
///     Receiver::new(ReceiverId::new(0), Point::new(0.0, 0.0), 200.0),
///     Receiver::new(ReceiverId::new(1), Point::new(100.0, 0.0), 200.0),
/// ];
/// let mut loc = LocationService::new(LocationConfig::default(), &receivers);
/// let sensor = SensorId::new(4)?;
/// loc.observe(&Observation {
///     sensor,
///     receiver: ReceiverId::new(0),
///     rssi_dbm: -60.0,
///     at: SimTime::ZERO,
/// });
/// let est = loc.estimate(sensor, SimTime::ZERO).unwrap();
/// assert_eq!(est.evidence_count, 1);
/// # Ok::<(), garnet_wire::WireError>(())
/// ```
#[derive(Debug)]
pub struct LocationService {
    config: LocationConfig,
    receiver_positions: HashMap<ReceiverId, Point>,
    evidence: HashMap<SensorId, VecDeque<Evidence>>,
    observations_taken: u64,
    hints_taken: u64,
}

impl LocationService {
    /// Creates the service with the fixed receiver installation plan.
    pub fn new(config: LocationConfig, receivers: &[Receiver]) -> Self {
        LocationService {
            config,
            receiver_positions: receivers.iter().map(|r| (r.id(), r.position())).collect(),
            evidence: HashMap::new(),
            observations_taken: 0,
            hints_taken: 0,
        }
    }

    fn push(&mut self, sensor: SensorId, e: Evidence) {
        let q = self.evidence.entry(sensor).or_default();
        if q.len() == self.config.max_observations {
            q.pop_front();
        }
        q.push_back(e);
    }

    /// Ingests a sighting from the Filtering Service.
    ///
    /// Sightings from receivers missing from the installation plan are
    /// ignored (they cannot contribute a position).
    pub fn observe(&mut self, obs: &Observation) {
        let Some(&receiver_pos) = self.receiver_positions.get(&obs.receiver) else {
            return;
        };
        let est_distance_m = self.config.propagation.estimate_distance(obs.rssi_dbm);
        self.push(obs.sensor, Evidence::Sighting { receiver_pos, est_distance_m, at: obs.at });
        self.observations_taken += 1;
    }

    /// Ingests a consumer-supplied hint. `confidence` is the weight of
    /// this hint relative to one sighting at ~1 m estimated distance;
    /// values in `(0, 10]` are sensible, and it is clamped to that range.
    pub fn hint(&mut self, sensor: SensorId, position: Point, confidence: f64, at: SimTime) {
        let confidence = confidence.clamp(f64::MIN_POSITIVE, 10.0);
        self.push(sensor, Evidence::Hint { position, confidence, at });
        self.hints_taken += 1;
    }

    /// Estimates the position of `sensor` from evidence no older than
    /// `config.max_age` before `now`. `None` when there is no fresh
    /// evidence at all.
    pub fn estimate(&self, sensor: SensorId, now: SimTime) -> Option<LocationEstimate> {
        let q = self.evidence.get(&sensor)?;
        let oldest_allowed = if now.as_micros() > self.config.max_age.as_micros() {
            SimTime::from_micros(now.as_micros() - self.config.max_age.as_micros())
        } else {
            SimTime::ZERO
        };

        let mut sightings: Vec<(Point, f64)> = Vec::new(); // (pos, est distance)
        let mut weighted: Vec<(Point, f64)> = Vec::new();
        let mut freshest = SimTime::ZERO;
        let mut best_range = f64::INFINITY;
        for e in q.iter().filter(|e| e.at() >= oldest_allowed) {
            freshest = freshest.max(e.at());
            match *e {
                Evidence::Sighting { receiver_pos, est_distance_m, .. } => {
                    sightings.push((receiver_pos, est_distance_m));
                    best_range = best_range.min(est_distance_m);
                }
                Evidence::Hint { position, confidence, .. } => {
                    weighted.push((position, confidence));
                    best_range = best_range.min(5.0); // a hint is precise
                }
            }
        }
        // Keep only the loudest sightings; weight by inverse-square
        // estimated distance so near receivers dominate.
        sightings.sort_by(|a, b| a.1.total_cmp(&b.1));
        sightings.truncate(self.config.max_sightings_used);
        for (pos, d) in sightings {
            weighted.push((pos, 1.0 / (d * d).max(1.0)));
        }
        let position = weighted_centroid(&weighted)?;
        // Weighted RMS spread of the evidence around the centroid.
        let total_w: f64 = weighted.iter().map(|(_, w)| w).sum();
        let spread = (weighted.iter().map(|(p, w)| w * p.distance_sq(position)).sum::<f64>()
            / total_w)
            .sqrt();
        Some(LocationEstimate {
            position,
            radius_m: (spread + best_range).max(1.0),
            freshest_evidence: freshest,
            evidence_count: weighted.len(),
        })
    }

    /// Sightings ingested so far.
    pub fn observation_count(&self) -> u64 {
        self.observations_taken
    }

    /// Hints ingested so far.
    pub fn hint_count(&self) -> u64 {
        self.hints_taken
    }

    /// Number of sensors with any retained evidence.
    pub fn tracked_sensors(&self) -> usize {
        self.evidence.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn receivers() -> Vec<Receiver> {
        vec![
            Receiver::new(ReceiverId::new(0), Point::new(0.0, 0.0), 300.0),
            Receiver::new(ReceiverId::new(1), Point::new(100.0, 0.0), 300.0),
            Receiver::new(ReceiverId::new(2), Point::new(50.0, 100.0), 300.0),
        ]
    }

    fn svc() -> LocationService {
        LocationService::new(LocationConfig::default(), &receivers())
    }

    fn sensor() -> SensorId {
        SensorId::new(9).unwrap()
    }

    fn obs(rx: u32, rssi: f64, at_s: u64) -> Observation {
        Observation {
            sensor: sensor(),
            receiver: ReceiverId::new(rx),
            rssi_dbm: rssi,
            at: SimTime::from_secs(at_s),
        }
    }

    #[test]
    fn no_evidence_no_estimate() {
        let loc = svc();
        assert!(loc.estimate(sensor(), SimTime::ZERO).is_none());
    }

    #[test]
    fn single_sighting_estimates_near_receiver() {
        let mut loc = svc();
        loc.observe(&obs(1, -45.0, 0));
        let est = loc.estimate(sensor(), SimTime::ZERO).unwrap();
        assert!(est.position.distance_to(Point::new(100.0, 0.0)) < 1e-6);
        assert_eq!(est.evidence_count, 1);
        assert!(est.radius_m > 0.0);
    }

    #[test]
    fn multiple_sightings_pull_toward_loudest() {
        let mut loc = svc();
        // Much louder at receiver 0 → estimate nearer (0,0) than (100,0).
        loc.observe(&obs(0, -40.0, 0));
        loc.observe(&obs(1, -80.0, 0));
        let est = loc.estimate(sensor(), SimTime::ZERO).unwrap();
        assert!(est.position.x < 50.0, "estimate {:?} should lean toward rx0", est.position);
    }

    #[test]
    fn centroid_inside_receiver_hull() {
        let mut loc = svc();
        loc.observe(&obs(0, -60.0, 0));
        loc.observe(&obs(1, -60.0, 0));
        loc.observe(&obs(2, -60.0, 0));
        let est = loc.estimate(sensor(), SimTime::ZERO).unwrap();
        assert!(est.position.x > 0.0 && est.position.x < 100.0);
        assert!(est.position.y > 0.0 && est.position.y < 100.0);
        assert_eq!(est.evidence_count, 3);
    }

    #[test]
    fn hints_sharpen_the_estimate() {
        let mut loc = svc();
        loc.observe(&obs(0, -70.0, 0));
        let before = loc.estimate(sensor(), SimTime::ZERO).unwrap();
        // A confident consumer hint at the true position.
        loc.hint(sensor(), Point::new(20.0, 5.0), 5.0, SimTime::ZERO);
        let after = loc.estimate(sensor(), SimTime::ZERO).unwrap();
        assert!(
            after.position.distance_to(Point::new(20.0, 5.0))
                < before.position.distance_to(Point::new(20.0, 5.0))
        );
        assert_eq!(loc.hint_count(), 1);
    }

    #[test]
    fn stale_evidence_expires() {
        let mut loc = svc();
        loc.observe(&obs(0, -50.0, 0));
        assert!(loc.estimate(sensor(), SimTime::from_secs(59)).is_some());
        assert!(loc.estimate(sensor(), SimTime::from_secs(61)).is_none());
    }

    #[test]
    fn fresh_evidence_outlives_stale() {
        let mut loc = svc();
        loc.observe(&obs(0, -50.0, 0));
        loc.observe(&obs(1, -50.0, 100));
        let est = loc.estimate(sensor(), SimTime::from_secs(120)).unwrap();
        assert_eq!(est.evidence_count, 1, "only the fresh sighting counts");
        assert!(est.position.distance_to(Point::new(100.0, 0.0)) < 1e-6);
        assert_eq!(est.freshest_evidence, SimTime::from_secs(100));
    }

    #[test]
    fn unknown_receiver_ignored() {
        let mut loc = svc();
        loc.observe(&Observation {
            sensor: sensor(),
            receiver: ReceiverId::new(99),
            rssi_dbm: -40.0,
            at: SimTime::ZERO,
        });
        assert_eq!(loc.observation_count(), 0);
        assert!(loc.estimate(sensor(), SimTime::ZERO).is_none());
    }

    #[test]
    fn evidence_ring_is_bounded() {
        let mut loc = LocationService::new(
            LocationConfig { max_observations: 4, ..LocationConfig::default() },
            &receivers(),
        );
        for i in 0..20 {
            loc.observe(&obs((i % 3) as u32, -50.0, i));
        }
        let est = loc.estimate(sensor(), SimTime::from_secs(20)).unwrap();
        assert!(est.evidence_count <= 4);
    }

    #[test]
    fn hint_confidence_is_clamped() {
        let mut loc = svc();
        loc.hint(sensor(), Point::new(1.0, 1.0), -5.0, SimTime::ZERO);
        loc.hint(sensor(), Point::new(1.0, 1.0), 1e9, SimTime::ZERO);
        let est = loc.estimate(sensor(), SimTime::ZERO).unwrap();
        assert_eq!(est.position, Point::new(1.0, 1.0));
    }

    #[test]
    fn sensors_tracked_independently() {
        let mut loc = svc();
        loc.observe(&obs(0, -50.0, 0));
        let other = SensorId::new(77).unwrap();
        loc.hint(other, Point::new(9.0, 9.0), 1.0, SimTime::ZERO);
        assert_eq!(loc.tracked_sensors(), 2);
        assert_eq!(loc.estimate(other, SimTime::ZERO).unwrap().position, Point::new(9.0, 9.0));
    }

    #[test]
    fn localization_error_shrinks_with_receiver_density() {
        // The E9 effect in miniature: more receivers hearing the sensor
        // → estimate closer to ground truth.
        use garnet_simkit::SimRng;
        let truth = Point::new(42.0, 33.0);
        let prop = Propagation::wifi_outdoor();
        let mut rng = SimRng::seed(5);

        let error_with = |grid: Vec<Receiver>, rng: &mut SimRng| -> f64 {
            // Ring large enough to hold every receiver's sightings —
            // otherwise the densest grid evicts its own early evidence.
            let config = LocationConfig { max_observations: 512, ..LocationConfig::default() };
            let mut loc = LocationService::new(config, &grid);
            for r in &grid {
                let d = truth.distance_to(r.position());
                for _ in 0..4 {
                    if let Some(rssi) = prop.deliver(d, rng) {
                        loc.observe(&Observation {
                            sensor: sensor(),
                            receiver: r.id(),
                            rssi_dbm: rssi,
                            at: SimTime::ZERO,
                        });
                    }
                }
            }
            loc.estimate(sensor(), SimTime::ZERO)
                .map(|e| e.position.distance_to(truth))
                .unwrap_or(1e9)
        };

        let sparse = Receiver::grid(Point::ORIGIN, 2, 2, 100.0, 300.0);
        let dense = Receiver::grid(Point::ORIGIN, 5, 5, 25.0, 300.0);
        let e_sparse = error_with(sparse, &mut rng);
        let e_dense = error_with(dense, &mut rng);
        assert!(
            e_dense < e_sparse,
            "dense grid should localise better: dense={e_dense:.1} sparse={e_sparse:.1}"
        );
    }
}
