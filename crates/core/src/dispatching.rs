//! The Dispatching Service: delivery of filtered data to subscribers.
//!
//! "Filtered data is then forwarded to the Dispatching Service for
//! delivery to subscribed consumer processes" (§4.2). Consumers are
//! mutually unaware, so the dispatcher is the *only* place that knows who
//! receives what; a message matching no subscription is *unclaimed* and
//! is handed to the Orphanage by the middleware facade.
//!
//! The service wraps the fixed network's [`SubscriptionTable`] with
//! subscriber-id allocation and dispatch accounting (fan-out and
//! unclaimed-rate are the E5 metrics). Match sets come out of a
//! per-service [`MatchCache`], so steady-state routing of a
//! cache-resident stream is allocation-free: one hash lookup plus one
//! `Arc` refcount bump (E23 prices the difference).

use std::sync::Arc;

use garnet_net::{DispatchCacheConfig, MatchCache, MatchCacheStats, SubscriberId};
use garnet_net::{SubscriptionTable, TopicFilter};
use garnet_simkit::Histogram;
use garnet_wire::StreamId;

/// The result of routing one message.
#[derive(Clone, Debug, PartialEq)]
pub struct DispatchOutcome {
    /// Matching subscribers, ascending id order, shared with the match
    /// cache (cloning the outcome is a refcount bump).
    pub recipients: Arc<[SubscriberId]>,
    /// True if nobody matched (→ Orphanage).
    pub unclaimed: bool,
    /// True if the match cache (re)built this set — a cold stream or a
    /// subscription mutation since the last route. Always false when
    /// the cache is disabled.
    pub rebuilt: bool,
}

/// The Dispatching Service.
///
/// # Example
///
/// ```
/// use garnet_core::dispatching::DispatchingService;
/// use garnet_net::TopicFilter;
/// use garnet_wire::StreamId;
///
/// let mut dispatch = DispatchingService::new();
/// let alice = dispatch.register_subscriber();
/// dispatch.subscribe(alice, TopicFilter::All);
/// let outcome = dispatch.route(StreamId::from_raw(0x0100));
/// assert_eq!(&*outcome.recipients, &[alice]);
/// assert!(!outcome.unclaimed);
/// ```
#[derive(Debug, Default)]
pub struct DispatchingService {
    table: SubscriptionTable,
    cache: MatchCache,
    next_subscriber: u32,
    dispatched: u64,
    deliveries: u64,
    unclaimed: u64,
    fanout: Histogram,
}

impl DispatchingService {
    /// Creates the service with the default match-cache configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the service with an explicit match-cache configuration.
    pub fn with_cache(cache: DispatchCacheConfig) -> Self {
        DispatchingService { cache: MatchCache::new(cache), ..Self::default() }
    }

    /// Builds the service over a pre-populated subscription table — the
    /// per-worker snapshot constructor used by threaded dispatch shards,
    /// which route against a frozen copy of the table instead of sharing
    /// the live one.
    pub fn with_table(table: SubscriptionTable) -> Self {
        DispatchingService { table, ..Self::default() }
    }

    /// Allocates a fresh subscriber identity.
    pub fn register_subscriber(&mut self) -> SubscriberId {
        let id = SubscriberId::new(self.next_subscriber);
        self.next_subscriber += 1;
        id
    }

    /// Adds a subscription. Returns true if new.
    pub fn subscribe(&mut self, subscriber: SubscriberId, filter: TopicFilter) -> bool {
        self.table.subscribe(subscriber, filter)
    }

    /// Removes one subscription.
    pub fn unsubscribe(&mut self, subscriber: SubscriberId, filter: TopicFilter) -> bool {
        self.table.unsubscribe(subscriber, filter)
    }

    /// Removes every subscription of a departing consumer.
    pub fn unsubscribe_all(&mut self, subscriber: SubscriberId) -> usize {
        self.table.unsubscribe_all(subscriber)
    }

    /// Routes one message, recording fan-out statistics.
    pub fn route(&mut self, stream: StreamId) -> DispatchOutcome {
        let (recipients, rebuilt) = self.cache.resolve(&self.table, stream);
        self.dispatched += 1;
        self.deliveries += recipients.len() as u64;
        self.fanout.record(recipients.len() as u64);
        let unclaimed = recipients.is_empty();
        if unclaimed {
            self.unclaimed += 1;
        }
        DispatchOutcome { recipients, unclaimed, rebuilt }
    }

    /// Peeks the match set without accounting (used by claim logic).
    pub fn would_deliver(&self, stream: StreamId) -> bool {
        !self.table.is_unclaimed(stream)
    }

    /// Messages routed.
    pub fn dispatched_count(&self) -> u64 {
        self.dispatched
    }

    /// Total (message, subscriber) deliveries.
    pub fn delivery_count(&self) -> u64 {
        self.deliveries
    }

    /// Messages that matched nobody.
    pub fn unclaimed_count(&self) -> u64 {
        self.unclaimed
    }

    /// Distribution of per-message fan-out.
    pub fn fanout(&self) -> &Histogram {
        &self.fanout
    }

    /// Counters of this service's match cache.
    pub fn cache_stats(&self) -> MatchCacheStats {
        self.cache.stats()
    }

    /// Distinct subscribers with live subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.table.subscriber_count()
    }

    /// Live subscriptions in this service's table.
    pub fn subscription_count(&self) -> usize {
        self.table.subscription_count()
    }

    /// The filters `subscriber` holds in this service's table.
    pub fn filters_of(&self, subscriber: SubscriberId) -> impl Iterator<Item = TopicFilter> + '_ {
        self.table.filters_of(subscriber)
    }

    /// Every subscriber present in this service's table.
    pub fn subscriber_ids(&self) -> impl Iterator<Item = SubscriberId> + '_ {
        self.table.subscriber_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garnet_wire::{SensorId, StreamIndex};

    fn stream(sensor: u32) -> StreamId {
        StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0))
    }

    #[test]
    fn register_allocates_distinct_ids() {
        let mut d = DispatchingService::new();
        let a = d.register_subscriber();
        let b = d.register_subscriber();
        assert_ne!(a, b);
    }

    #[test]
    fn route_to_matching_subscribers() {
        let mut d = DispatchingService::new();
        let a = d.register_subscriber();
        let b = d.register_subscriber();
        d.subscribe(a, TopicFilter::Sensor(SensorId::new(1).unwrap()));
        d.subscribe(b, TopicFilter::All);
        let out = d.route(stream(1));
        assert_eq!(&*out.recipients, &[a, b]);
        let out = d.route(stream(2));
        assert_eq!(&*out.recipients, &[b]);
    }

    #[test]
    fn unclaimed_counted() {
        let mut d = DispatchingService::new();
        let out = d.route(stream(9));
        assert!(out.unclaimed);
        assert_eq!(d.unclaimed_count(), 1);
        assert_eq!(d.dispatched_count(), 1);
        assert_eq!(d.delivery_count(), 0);
    }

    #[test]
    fn fanout_statistics() {
        let mut d = DispatchingService::new();
        for _ in 0..10 {
            let s = d.register_subscriber();
            d.subscribe(s, TopicFilter::Stream(stream(1)));
        }
        d.route(stream(1));
        d.route(stream(2));
        assert_eq!(d.fanout().max(), 10);
        assert_eq!(d.fanout().min(), 0);
        assert_eq!(d.delivery_count(), 10);
    }

    #[test]
    fn unsubscribe_all_cleans_up() {
        let mut d = DispatchingService::new();
        let a = d.register_subscriber();
        d.subscribe(a, TopicFilter::All);
        d.subscribe(a, TopicFilter::Stream(stream(1)));
        assert_eq!(d.unsubscribe_all(a), 2);
        assert!(d.route(stream(1)).unclaimed);
        assert_eq!(d.subscriber_count(), 0);
    }

    #[test]
    fn would_deliver_does_not_account() {
        let mut d = DispatchingService::new();
        let a = d.register_subscriber();
        d.subscribe(a, TopicFilter::Stream(stream(1)));
        assert!(d.would_deliver(stream(1)));
        assert!(!d.would_deliver(stream(2)));
        assert_eq!(d.dispatched_count(), 0);
    }

    #[test]
    fn repeat_routes_hit_the_cache_and_stay_correct() {
        let mut d = DispatchingService::new();
        let a = d.register_subscriber();
        d.subscribe(a, TopicFilter::Stream(stream(1)));
        assert!(d.route(stream(1)).rebuilt, "first route builds cold");
        assert!(!d.route(stream(1)).rebuilt, "second route hits");
        // A mutation stales the entry; the next route rebuilds and sees
        // the new subscriber.
        let b = d.register_subscriber();
        d.subscribe(b, TopicFilter::Sensor(SensorId::new(1).unwrap()));
        let out = d.route(stream(1));
        assert!(out.rebuilt);
        assert_eq!(&*out.recipients, &[a, b]);
        let s = d.cache_stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 1, 1));
    }
}
