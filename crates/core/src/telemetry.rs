//! The telemetry plane: latency spans, windowed snapshots, health
//! scoring, and the JSONL/Prometheus exporters behind `garnetctl`.
//!
//! The paper pitches Garnet as the operational backbone between sensor
//! fields and city-scale consumers; an operator of such a backbone needs
//! latency truth (how long does a reading take to reach its consumers?),
//! rates over time (is this node keeping up?), and a health verdict (is
//! it safe to walk away?). This module supplies all three without
//! touching wall clock: every measurement is driven by [`SimTime`], so
//! the numbers are bit-identical across the FIFO and threaded engines —
//! the same invariant the routers themselves are held to.
//!
//! Three layers:
//!
//! * **Spans** — [`PipelineSpans`] histograms ([`keys::FILTERING_LATENCY_US`],
//!   [`keys::DISPATCHING_LATENCY_US`], [`keys::PIPELINE_E2E_LATENCY_US`])
//!   recorded once per dispatched delivery by both routers, plus
//!   [`QueueDepthGauges`] sampling per-ingest-shard admission depth.
//! * **Snapshots** — [`TelemetrySnapshot`] captures a sim-time window:
//!   cumulative counters, window deltas (rates), histogram quantile
//!   summaries, gauge watermarks, the match-cache hit rate, and a
//!   [`HealthReport`]. Deterministic serializers render one JSONL line
//!   ([`TelemetrySnapshot::to_jsonl`]) or Prometheus text exposition
//!   ([`TelemetrySnapshot::to_prometheus`]).
//! * **Export** — [`TelemetryService`] owns the window state machine and
//!   an optional rotating `telemetry-*.jsonl` file sink
//!   ([`TelemetrySink`]) that `garnetctl` tails.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use garnet_simkit::metrics::keys;
use garnet_simkit::{Gauge, Histogram, MetricsRegistry, SimDuration, SimTime};

/// Always-on latency histograms for the frame pipeline, recorded at the
/// dispatch fan-out point of both routers.
///
/// All three spans derive from the two sim-time stamps a delivery
/// already carries (`first_received_at`, `delivered_at`) plus the
/// dispatch-time `now`, so recording costs three histogram increments
/// and no allocation:
///
/// * `filtering` — first boundary admission → filtering emission
///   (duplicate-window and reorder-buffer residency included).
/// * `dispatching` — filtering emission → dispatch fan-out.
/// * `e2e` — first boundary admission → dispatch fan-out.
///
/// Durations saturate at zero, so replayed or reordered stamps can never
/// panic the hot path.
#[derive(Clone, Debug, Default)]
pub struct PipelineSpans {
    enabled: bool,
    filtering: Histogram,
    dispatching: Histogram,
    e2e: Histogram,
}

impl PipelineSpans {
    /// Creates empty, enabled spans.
    pub fn new() -> Self {
        PipelineSpans {
            enabled: true,
            filtering: Histogram::new(),
            dispatching: Histogram::new(),
            e2e: Histogram::new(),
        }
    }

    /// Turns recording on or off (E24 prices the difference).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one dispatched delivery.
    #[inline]
    pub fn record(&mut self, first_received_at: SimTime, delivered_at: SimTime, now: SimTime) {
        if !self.enabled {
            return;
        }
        self.filtering.record(delivered_at.saturating_since(first_received_at).as_micros());
        self.dispatching.record(now.saturating_since(delivered_at).as_micros());
        self.e2e.record(now.saturating_since(first_received_at).as_micros());
    }

    /// First admission → filtering emission.
    pub fn filtering(&self) -> &Histogram {
        &self.filtering
    }

    /// Filtering emission → dispatch fan-out.
    pub fn dispatching(&self) -> &Histogram {
        &self.dispatching
    }

    /// First admission → dispatch fan-out.
    pub fn e2e(&self) -> &Histogram {
        &self.e2e
    }

    /// Folds the three histograms into `m` under their interned names.
    pub fn fold_into(&self, m: &mut MetricsRegistry) {
        m.histogram(keys::FILTERING_LATENCY_US).merge(&self.filtering);
        m.histogram(keys::DISPATCHING_LATENCY_US).merge(&self.dispatching);
        m.histogram(keys::PIPELINE_E2E_LATENCY_US).merge(&self.e2e);
    }
}

/// Per-ingest-shard queue-depth gauges, sampled at frame admission.
///
/// Depth here is "frames admitted since the router last went quiescent"
/// — the same quantity `overload.peak_queue_depth` tracks as a single
/// peak, but kept per shard and with min/last watermarks, and identical
/// across engines because admission order and quiescence points are.
/// Counts reset at quiescence; the gauges keep their watermarks.
#[derive(Clone, Debug, Default)]
pub struct QueueDepthGauges {
    enabled: bool,
    total: Gauge,
    shards: Vec<Gauge>,
    counts: Vec<u64>,
    queued: u64,
}

impl QueueDepthGauges {
    /// Creates enabled gauges for `shards` ingest shards.
    pub fn new(shards: usize) -> Self {
        QueueDepthGauges {
            enabled: true,
            total: Gauge::new(),
            shards: vec![Gauge::new(); shards],
            counts: vec![0; shards],
            queued: 0,
        }
    }

    /// Turns sampling on or off alongside the latency spans.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether sampling is active (callers can skip shard attribution
    /// work when off).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one admitted frame attributed to `shard`.
    #[inline]
    pub fn note_admitted(&mut self, shard: usize) {
        if !self.enabled {
            return;
        }
        self.queued += 1;
        self.total.record(self.queued);
        if let Some(count) = self.counts.get_mut(shard) {
            *count += 1;
            self.shards[shard].record(*count);
        }
    }

    /// Resets the depth counts at a quiescence point; watermarks survive.
    pub fn note_quiescent(&mut self) {
        self.queued = 0;
        self.counts.iter_mut().for_each(|c| *c = 0);
    }

    /// The all-shards depth gauge.
    pub fn total(&self) -> &Gauge {
        &self.total
    }

    /// Per-shard depth gauges, indexed by ingest shard.
    pub fn per_shard(&self) -> &[Gauge] {
        &self.shards
    }

    /// Folds the total and per-shard gauges into `m`. Only the total
    /// rides under the interned [`keys::QUEUE_DEPTH`] name (shard-count
    /// invariant); per-shard gauges get `overload.queue_depth.shardN`
    /// names, which snapshot consumers strip when comparing across
    /// layouts.
    pub fn fold_into(&self, m: &mut MetricsRegistry) {
        m.gauge(keys::QUEUE_DEPTH).merge(&self.total);
        for (i, g) in self.shards.iter().enumerate() {
            m.gauge(&keys::shard_queue_depth(i)).merge(g);
        }
    }
}

/// Thresholds the health scorer applies to each snapshot window.
///
/// Ratios are expressed in parts-per-million so scoring never touches
/// floating point (reasons must be byte-stable across engines).
#[derive(Clone, Debug)]
pub struct HealthThresholds {
    /// Window shed ratio (shed/offered, ppm) that degrades the node.
    pub shed_degraded_ppm: u64,
    /// Window shed ratio (ppm) that marks the node critical.
    pub shed_critical_ppm: u64,
    /// Jobs stranded by shard failures in the window that degrade.
    pub stranded_degraded: u64,
    /// Supervision restarts in the window that degrade (budget burn).
    pub restarts_degraded: u64,
    /// Supervision restarts in the window that mark critical.
    pub restarts_critical: u64,
    /// Archive records dropped in the window that mark critical (each
    /// one is lost boundary input).
    pub archive_dropped_critical: u64,
    /// Archive flush backlog (pending records) that degrades.
    pub archive_pending_degraded: u64,
    /// e2e p99 growth vs the previous window that degrades, in percent
    /// (200 = doubled).
    pub p99_regression_pct: u64,
    /// e2e p99 below this floor never counts as a regression (µs).
    pub p99_floor_us: u64,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        HealthThresholds {
            shed_degraded_ppm: 1_000,   // 0.1 %
            shed_critical_ppm: 100_000, // 10 %
            stranded_degraded: 1,
            restarts_degraded: 1,
            restarts_critical: 4,
            archive_dropped_critical: 1,
            archive_pending_degraded: 1_024,
            p99_regression_pct: 200,
            p99_floor_us: 1_000,
        }
    }
}

/// The verdict a snapshot window earns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Everything within thresholds.
    Healthy,
    /// Service continues but an operator should look.
    Degraded {
        /// Deterministic, human-readable causes.
        reasons: Vec<String>,
    },
    /// Data is being lost or the node is burning its failure budget.
    Critical {
        /// Deterministic, human-readable causes.
        reasons: Vec<String>,
    },
}

/// A typed health verdict derived from one snapshot window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HealthReport {
    /// The scored state.
    pub state: HealthState,
}

impl HealthReport {
    /// `"healthy"`, `"degraded"` or `"critical"`.
    pub fn label(&self) -> &'static str {
        match self.state {
            HealthState::Healthy => "healthy",
            HealthState::Degraded { .. } => "degraded",
            HealthState::Critical { .. } => "critical",
        }
    }

    /// Numeric severity: 0 healthy, 1 degraded, 2 critical.
    pub fn severity(&self) -> u64 {
        match self.state {
            HealthState::Healthy => 0,
            HealthState::Degraded { .. } => 1,
            HealthState::Critical { .. } => 2,
        }
    }

    /// The reasons behind a non-healthy verdict (empty when healthy).
    pub fn reasons(&self) -> &[String] {
        match &self.state {
            HealthState::Healthy => &[],
            HealthState::Degraded { reasons } | HealthState::Critical { reasons } => reasons,
        }
    }
}

/// The per-window quantities health scoring reads.
#[derive(Clone, Debug, Default)]
pub struct WindowStats {
    /// Frames offered to admission in the window.
    pub offered: u64,
    /// Frames shed by overload policy in the window.
    pub shed: u64,
    /// Jobs stranded by shard failures in the window.
    pub stranded: u64,
    /// Supervision restarts in the window.
    pub restarts: u64,
    /// Archive records dropped in the window.
    pub archive_dropped: u64,
    /// Archive records currently pending flush (a level, not a delta).
    pub archive_pending: u64,
    /// e2e p99 of the previous window, if one exists (µs).
    pub prev_e2e_p99: Option<u64>,
    /// e2e p99 of this window (µs, cumulative histogram).
    pub e2e_p99: u64,
    /// Per-class QoS offers in the window
    /// (`qos.{control,actuation,data}.offered` deltas, in
    /// [`crate::qos::PriorityClass::ALL`] order; zeros when the QoS
    /// scheduler is inactive).
    pub class_offered: [u64; 3],
    /// Per-class QoS releases in the window
    /// (`qos.{control,actuation,data}.delivered` deltas).
    pub class_delivered: [u64; 3],
}

/// Scores one window against `t`. Critical reasons trump degraded ones;
/// both lists are assembled in a fixed rule order so the report is
/// byte-stable.
pub fn evaluate_health(t: &HealthThresholds, w: &WindowStats) -> HealthReport {
    let mut degraded = Vec::new();
    let mut critical = Vec::new();
    if let Some(shed_ppm) = w.shed.saturating_mul(1_000_000).checked_div(w.offered) {
        if shed_ppm >= t.shed_critical_ppm {
            critical.push(format!("shed {shed_ppm}ppm of {} offered frames", w.offered));
        } else if shed_ppm >= t.shed_degraded_ppm {
            degraded.push(format!("shed {shed_ppm}ppm of {} offered frames", w.offered));
        }
    }
    if w.stranded >= t.stranded_degraded {
        degraded.push(format!("{} jobs stranded by shard failures", w.stranded));
    }
    if w.restarts >= t.restarts_critical {
        critical.push(format!("{} supervision restarts in one window", w.restarts));
    } else if w.restarts >= t.restarts_degraded {
        degraded.push(format!("{} supervision restarts in one window", w.restarts));
    }
    if w.archive_dropped >= t.archive_dropped_critical {
        critical.push(format!("{} archive records dropped", w.archive_dropped));
    }
    if w.archive_pending >= t.archive_pending_degraded {
        degraded.push(format!("{} archive records pending flush", w.archive_pending));
    }
    for class in crate::qos::PriorityClass::ALL {
        let offered = w.class_offered[class.index()];
        if offered > 0 && w.class_delivered[class.index()] == 0 {
            critical.push(format!(
                "qos: {} class starved ({offered} offered, 0 delivered)",
                class.name()
            ));
        }
    }
    if let Some(prev) = w.prev_e2e_p99 {
        if prev > 0
            && w.e2e_p99 >= t.p99_floor_us
            && w.e2e_p99.saturating_mul(100) >= prev.saturating_mul(t.p99_regression_pct)
        {
            degraded.push(format!("e2e p99 regressed {prev}us -> {}us", w.e2e_p99));
        }
    }
    let state = if !critical.is_empty() {
        critical.extend(degraded);
        HealthState::Critical { reasons: critical }
    } else if !degraded.is_empty() {
        HealthState::Degraded { reasons: degraded }
    } else {
        HealthState::Healthy
    };
    HealthReport { state }
}

/// Quantile summary of one histogram at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Observation count.
    pub count: u64,
    /// Arithmetic mean (µs).
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
}

impl HistogramSummary {
    /// Summarises `h`.
    pub fn of(h: &Histogram) -> Self {
        HistogramSummary {
            count: h.count(),
            mean: h.mean(),
            p50: h.p50(),
            p90: h.quantile(0.90),
            p99: h.p99(),
            min: h.min(),
            max: h.max(),
        }
    }
}

/// Watermark summary of one gauge at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeSummary {
    /// Most recent level.
    pub last: u64,
    /// Lowest level observed.
    pub min: u64,
    /// Highest level observed.
    pub max: u64,
    /// Recordings folded in.
    pub samples: u64,
}

impl GaugeSummary {
    /// Summarises `g`.
    pub fn of(g: &Gauge) -> Self {
        GaugeSummary { last: g.last(), min: g.min(), max: g.max(), samples: g.samples() }
    }
}

/// One exported telemetry window.
///
/// `counters` are cumulative since node start (Prometheus-style);
/// `deltas` are this window's increments, from which
/// [`TelemetrySnapshot::rate_per_sec`] derives rates. Histogram and
/// gauge summaries are cumulative (histograms in this codebase are
/// never reset mid-run, so quantiles describe the whole run — exactly
/// what `merge`-folded per-shard state supports deterministically).
#[derive(Clone, Debug)]
pub struct TelemetrySnapshot {
    /// Monotonic snapshot number, starting at 1.
    pub seq: u64,
    /// Window start (µs of sim time).
    pub window_start_us: u64,
    /// Window end (µs of sim time).
    pub window_end_us: u64,
    /// Cumulative counters, including `telemetry.*`/`health.*` meta.
    pub counters: BTreeMap<String, u64>,
    /// Counter increments within this window.
    pub deltas: BTreeMap<String, u64>,
    /// Histogram quantile summaries.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Gauge watermark summaries.
    pub gauges: BTreeMap<String, GaugeSummary>,
    /// Dispatch match-cache hit rate, parts per million.
    pub match_cache_hit_ppm: u64,
    /// The scored health verdict for this window.
    pub health: HealthReport,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `metric.name` → `garnet_metric_name` (Prometheus charset).
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("garnet_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

impl TelemetrySnapshot {
    /// The window length in seconds.
    pub fn window_secs(&self) -> f64 {
        (self.window_end_us.saturating_sub(self.window_start_us)) as f64 / 1e6
    }

    /// This window's rate for counter `name`, in events per sim-second
    /// (0.0 for an unknown counter or an empty window).
    pub fn rate_per_sec(&self, name: &str) -> f64 {
        let secs = self.window_secs();
        if secs <= 0.0 {
            return 0.0;
        }
        self.deltas.get(name).copied().unwrap_or(0) as f64 / secs
    }

    /// Renders the snapshot as one JSONL line (no trailing newline).
    /// Field and key order are fixed, so identical snapshots render to
    /// identical bytes.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"seq\":{},\"window_start_us\":{},\"window_end_us\":{},\"health\":\"{}\",\"reasons\":[",
            self.seq,
            self.window_start_us,
            self.window_end_us,
            self.health.label()
        );
        for (i, reason) in self.health.reasons().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(reason));
        }
        let _ =
            write!(out, "],\"match_cache_hit_ppm\":{},\"counters\":{{", self.match_cache_hit_ppm);
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), value);
        }
        out.push_str("},\"deltas\":{");
        for (i, (name, value)) in self.deltas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), value);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{},\"min\":{},\"max\":{}}}",
                json_escape(name),
                h.count,
                h.mean,
                h.p50,
                h.p90,
                h.p99,
                h.min,
                h.max
            );
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, g)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"last\":{},\"min\":{},\"max\":{},\"samples\":{}}}",
                json_escape(name),
                g.last,
                g.min,
                g.max,
                g.samples
            );
        }
        out.push_str("}}");
        out
    }

    /// Renders Prometheus text exposition format. Counters export
    /// cumulatively, histograms as summaries with quantile labels,
    /// gauges as the last level plus `_min`/`_max` watermarks. Names
    /// render in BTreeMap order, so the output is byte-stable.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        let _ = writeln!(out, "# TYPE garnet_telemetry_seq counter");
        let _ = writeln!(out, "garnet_telemetry_seq {}", self.seq);
        let _ = writeln!(out, "# TYPE garnet_telemetry_window_end_us gauge");
        let _ = writeln!(out, "garnet_telemetry_window_end_us {}", self.window_end_us);
        let _ = writeln!(out, "# TYPE garnet_health_state gauge");
        let _ = writeln!(out, "garnet_health_state {}", self.health.severity());
        let _ = writeln!(out, "# TYPE garnet_dispatch_match_cache_hit_ppm gauge");
        let _ = writeln!(out, "garnet_dispatch_match_cache_hit_ppm {}", self.match_cache_hit_ppm);
        for (name, value) in &self.counters {
            let p = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {p} counter");
            let _ = writeln!(out, "{p} {value}");
        }
        for (name, h) in &self.histograms {
            let p = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {p} summary");
            let _ = writeln!(out, "{p}{{quantile=\"0.5\"}} {}", h.p50);
            let _ = writeln!(out, "{p}{{quantile=\"0.9\"}} {}", h.p90);
            let _ = writeln!(out, "{p}{{quantile=\"0.99\"}} {}", h.p99);
            let _ = writeln!(out, "{p}_count {}", h.count);
            let _ = writeln!(out, "{p}_min {}", h.min);
            let _ = writeln!(out, "{p}_max {}", h.max);
        }
        for (name, g) in &self.gauges {
            let p = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {p} gauge");
            let _ = writeln!(out, "{p} {}", g.last);
            let _ = writeln!(out, "{p}_min {}", g.min);
            let _ = writeln!(out, "{p}_max {}", g.max);
        }
        out
    }
}

/// Telemetry plane configuration, carried on `GarnetConfig.telemetry`.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Record latency spans and queue-depth gauges (default on; E24
    /// prices the cost at <5% of batch-64 throughput).
    pub spans: bool,
    /// Auto-emit a snapshot every `interval` of sim time as the facade
    /// observes ticks and frame bursts. `None` (default) emits only on
    /// explicit `Garnet::telemetry()` calls.
    pub interval: Option<SimDuration>,
    /// Directory for the rotating `telemetry-*.jsonl` sink (created on
    /// first emission). `None` keeps snapshots in memory only.
    pub sink_dir: Option<PathBuf>,
    /// Snapshot lines per sink file before rotating to the next.
    pub rotate_lines: usize,
    /// Health scoring thresholds.
    pub thresholds: HealthThresholds,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            spans: true,
            interval: None,
            sink_dir: None,
            rotate_lines: 4_096,
            thresholds: HealthThresholds::default(),
        }
    }
}

/// A rotating JSONL file sink: `telemetry-000000.jsonl`,
/// `telemetry-000001.jsonl`, … under one directory, rotating every
/// `rotate_lines` lines. Construction resumes after the highest
/// existing index so a restarted node never clobbers history.
#[derive(Debug)]
pub struct TelemetrySink {
    dir: PathBuf,
    rotate_lines: usize,
    file_index: u64,
    lines_in_file: usize,
}

impl TelemetrySink {
    /// Opens (and creates) the sink directory.
    pub fn new(dir: &Path, rotate_lines: usize) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut next_index = 0u64;
        for entry in std::fs::read_dir(dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) =
                name.strip_prefix("telemetry-").and_then(|s| s.strip_suffix(".jsonl"))
            {
                if let Ok(index) = stem.parse::<u64>() {
                    next_index = next_index.max(index + 1);
                }
            }
        }
        Ok(TelemetrySink {
            dir: dir.to_path_buf(),
            rotate_lines: rotate_lines.max(1),
            file_index: next_index,
            lines_in_file: 0,
        })
    }

    /// The file the next line will land in.
    pub fn current_path(&self) -> PathBuf {
        self.dir.join(format!("telemetry-{:06}.jsonl", self.file_index))
    }

    /// Appends one line (newline added here), rotating afterwards if the
    /// file reached its line budget.
    pub fn append(&mut self, line: &str) -> std::io::Result<()> {
        let path = self.current_path();
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        self.lines_in_file += 1;
        if self.lines_in_file >= self.rotate_lines {
            self.file_index += 1;
            self.lines_in_file = 0;
        }
        Ok(())
    }
}

/// The facade-side window state machine: tracks previous-window counter
/// values for deltas, the previous e2e p99 for regression scoring, the
/// snapshot sequence, and the optional file sink.
#[derive(Debug)]
pub struct TelemetryService {
    config: TelemetryConfig,
    seq: u64,
    window_start: SimTime,
    next_due: Option<SimTime>,
    prev_counters: BTreeMap<String, u64>,
    prev_e2e_p99: Option<u64>,
    sink: Option<TelemetrySink>,
    sink_error: Option<String>,
    last: Option<TelemetrySnapshot>,
}

impl TelemetryService {
    /// Builds the service; the sink directory is not touched until the
    /// first emission.
    pub fn new(config: TelemetryConfig) -> Self {
        TelemetryService {
            config,
            seq: 0,
            window_start: SimTime::ZERO,
            next_due: None,
            prev_counters: BTreeMap::new(),
            prev_e2e_p99: None,
            sink: None,
            sink_error: None,
            last: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// True when the auto-emit interval has elapsed at `now`.
    pub fn due(&self, now: SimTime) -> bool {
        match (self.config.interval, self.next_due) {
            (None, _) => false,
            (Some(interval), None) => now >= self.window_start.saturating_add(interval),
            (Some(_), Some(due)) => now >= due,
        }
    }

    /// The most recently emitted snapshot.
    pub fn last(&self) -> Option<&TelemetrySnapshot> {
        self.last.as_ref()
    }

    /// The first sink I/O error, if any (telemetry never panics the
    /// data path; a broken sink turns into a sticky diagnostic).
    pub fn sink_error(&self) -> Option<&str> {
        self.sink_error.as_deref()
    }

    /// Assembles, records and (when a sink is configured) exports the
    /// snapshot for the window ending at `now` over the already-folded
    /// registry `m`.
    pub fn emit(&mut self, m: &MetricsRegistry, now: SimTime) -> TelemetrySnapshot {
        let mut counters: BTreeMap<String, u64> =
            m.counters().map(|(name, value)| (name.to_owned(), value)).collect();
        let deltas: BTreeMap<String, u64> = counters
            .iter()
            .map(|(name, &value)| {
                let prev = self.prev_counters.get(name).copied().unwrap_or(0);
                (name.clone(), value.saturating_sub(prev))
            })
            .collect();
        let histograms: BTreeMap<String, HistogramSummary> =
            m.histograms().map(|(name, h)| (name.to_owned(), HistogramSummary::of(h))).collect();
        let gauges: BTreeMap<String, GaugeSummary> =
            m.gauges().map(|(name, g)| (name.to_owned(), GaugeSummary::of(g))).collect();
        let hits = counters.get("dispatch.match_cache.hits").copied().unwrap_or(0);
        let misses = counters.get("dispatch.match_cache.misses").copied().unwrap_or(0);
        let match_cache_hit_ppm =
            hits.saturating_mul(1_000_000).checked_div(hits + misses).unwrap_or(0);
        let delta = |name: &str| deltas.get(name).copied().unwrap_or(0);
        let e2e_p99 = histograms.get(keys::PIPELINE_E2E_LATENCY_US).map_or(0, |h| h.p99);
        let mut class_offered = [0u64; 3];
        let mut class_delivered = [0u64; 3];
        for class in crate::qos::PriorityClass::ALL {
            class_offered[class.index()] = delta(&format!("qos.{}.offered", class.name()));
            class_delivered[class.index()] = delta(&format!("qos.{}.delivered", class.name()));
        }
        let stats = WindowStats {
            offered: delta("overload.offered"),
            shed: delta("overload.shed"),
            stranded: delta(keys::SHARD_FAILURES),
            restarts: delta("overload.shard_restarts"),
            archive_dropped: delta("archive.dropped"),
            archive_pending: counters.get("archive.pending").copied().unwrap_or(0),
            prev_e2e_p99: self.prev_e2e_p99,
            e2e_p99,
            class_offered,
            class_delivered,
        };
        let health = evaluate_health(&self.config.thresholds, &stats);
        self.seq += 1;
        counters.insert("telemetry.windows".to_owned(), self.seq);
        counters.insert("health.state".to_owned(), health.severity());
        let snapshot = TelemetrySnapshot {
            seq: self.seq,
            window_start_us: self.window_start.as_micros(),
            window_end_us: now.as_micros(),
            counters,
            deltas,
            histograms,
            gauges,
            match_cache_hit_ppm,
            health,
        };
        self.prev_counters =
            snapshot.deltas.keys().map(|k| (k.clone(), snapshot.counters[k])).collect();
        self.prev_e2e_p99 = Some(e2e_p99);
        self.window_start = now;
        if let Some(interval) = self.config.interval {
            self.next_due = Some(now.saturating_add(interval));
        }
        self.export(&snapshot);
        self.last = Some(snapshot.clone());
        snapshot
    }

    fn export(&mut self, snapshot: &TelemetrySnapshot) {
        let Some(dir) = self.config.sink_dir.clone() else {
            return;
        };
        if self.sink_error.is_some() {
            return;
        }
        if self.sink.is_none() {
            match TelemetrySink::new(&dir, self.config.rotate_lines) {
                Ok(sink) => self.sink = Some(sink),
                Err(e) => {
                    self.sink_error = Some(format!("open telemetry sink {}: {e}", dir.display()));
                    return;
                }
            }
        }
        if let Some(sink) = &mut self.sink {
            if let Err(e) = sink.append(&snapshot.to_jsonl()) {
                self.sink_error = Some(format!("append telemetry sink {}: {e}", dir.display()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_the_three_latency_legs() {
        let mut spans = PipelineSpans::new();
        let t0 = SimTime::from_micros(100);
        let t1 = SimTime::from_micros(140);
        let t2 = SimTime::from_micros(150);
        spans.record(t0, t1, t2);
        assert_eq!(spans.filtering().max(), 40);
        assert_eq!(spans.dispatching().max(), 10);
        assert_eq!(spans.e2e().max(), 50);
        spans.set_enabled(false);
        spans.record(t0, t1, t2);
        assert_eq!(spans.e2e().count(), 1);
    }

    #[test]
    fn spans_saturate_on_reordered_stamps() {
        let mut spans = PipelineSpans::new();
        spans.record(SimTime::from_micros(50), SimTime::from_micros(40), SimTime::from_micros(30));
        assert_eq!(spans.filtering().max(), 0);
        assert_eq!(spans.e2e().max(), 0);
    }

    #[test]
    fn depth_gauges_track_per_shard_and_total_watermarks() {
        let mut d = QueueDepthGauges::new(2);
        d.note_admitted(0);
        d.note_admitted(1);
        d.note_admitted(0);
        assert_eq!(d.total().max(), 3);
        assert_eq!(d.per_shard()[0].max(), 2);
        assert_eq!(d.per_shard()[1].max(), 1);
        d.note_quiescent();
        d.note_admitted(0);
        assert_eq!(d.total().last(), 1);
        assert_eq!(d.total().max(), 3, "watermarks survive quiescence");
        // Out-of-range shards fold into the total only.
        d.note_admitted(9);
        assert_eq!(d.total().last(), 2);
    }

    #[test]
    fn health_rules_escalate_in_order() {
        let t = HealthThresholds::default();
        let healthy = evaluate_health(&t, &WindowStats::default());
        assert_eq!(healthy.label(), "healthy");
        assert_eq!(healthy.severity(), 0);
        let degraded =
            evaluate_health(&t, &WindowStats { offered: 1_000, shed: 1, ..WindowStats::default() });
        assert_eq!(degraded.label(), "degraded");
        assert!(degraded.reasons()[0].contains("shed"));
        let critical = evaluate_health(
            &t,
            &WindowStats { offered: 10, shed: 5, restarts: 1, ..WindowStats::default() },
        );
        assert_eq!(critical.label(), "critical");
        // Critical verdicts carry the degraded reasons too.
        assert_eq!(critical.reasons().len(), 2);
        let dropped =
            evaluate_health(&t, &WindowStats { archive_dropped: 1, ..WindowStats::default() });
        assert_eq!(dropped.label(), "critical");
    }

    #[test]
    fn health_flags_a_starved_qos_class_as_critical() {
        let t = HealthThresholds::default();
        let starved = evaluate_health(
            &t,
            &WindowStats { class_offered: [0, 0, 7], ..WindowStats::default() },
        );
        assert_eq!(starved.label(), "critical");
        assert_eq!(starved.reasons(), ["qos: data class starved (7 offered, 0 delivered)"]);
        // One delivery in the window clears the verdict.
        let fed = evaluate_health(
            &t,
            &WindowStats {
                class_offered: [0, 0, 7],
                class_delivered: [0, 0, 1],
                ..WindowStats::default()
            },
        );
        assert_eq!(fed.label(), "healthy");
    }

    #[test]
    fn health_p99_regression_needs_a_floor() {
        let t = HealthThresholds::default();
        let quiet = evaluate_health(
            &t,
            &WindowStats { prev_e2e_p99: Some(10), e2e_p99: 900, ..WindowStats::default() },
        );
        assert_eq!(quiet.label(), "healthy", "sub-floor p99 never regresses");
        let regressed = evaluate_health(
            &t,
            &WindowStats { prev_e2e_p99: Some(1_000), e2e_p99: 2_000, ..WindowStats::default() },
        );
        assert_eq!(regressed.label(), "degraded");
    }

    #[test]
    fn snapshot_serializers_are_deterministic() {
        let mut m = MetricsRegistry::new();
        m.counter("overload.offered").add(10);
        m.counter("overload.delivered").add(10);
        m.histogram(keys::PIPELINE_E2E_LATENCY_US).record(120);
        m.gauge(keys::QUEUE_DEPTH).record(4);
        let mut svc = TelemetryService::new(TelemetryConfig::default());
        let snap = svc.emit(&m, SimTime::from_secs(1));
        assert_eq!(snap.seq, 1);
        assert_eq!(snap.counters["telemetry.windows"], 1);
        assert_eq!(snap.counters["health.state"], 0);
        let line = snap.to_jsonl();
        assert!(line.starts_with("{\"seq\":1,"));
        assert!(line.contains("\"overload.offered\":10"));
        assert!(line.contains("\"pipeline.e2e_latency_us\":{\"count\":1"));
        assert_eq!(line, snap.to_jsonl(), "rendering is pure");
        let prom = snap.to_prometheus();
        assert!(prom.contains("garnet_overload_offered 10"));
        assert!(prom.contains("garnet_pipeline_e2e_latency_us{quantile=\"0.99\"} 120"));
        assert!(prom.contains("garnet_overload_queue_depth 4"));
        assert_eq!(prom, snap.to_prometheus());
        assert!((snap.rate_per_sec("overload.offered") - 10.0).abs() < 1e-9);
    }

    #[test]
    fn windows_report_deltas_not_totals() {
        let mut m = MetricsRegistry::new();
        m.counter("overload.offered").add(10);
        let mut svc = TelemetryService::new(TelemetryConfig {
            interval: Some(SimDuration::from_secs(1)),
            ..TelemetryConfig::default()
        });
        assert!(!svc.due(SimTime::from_millis(500)));
        assert!(svc.due(SimTime::from_secs(1)));
        let first = svc.emit(&m, SimTime::from_secs(1));
        assert_eq!(first.deltas["overload.offered"], 10);
        assert!(!svc.due(SimTime::from_secs(1)));
        m.counter("overload.offered").add(5);
        let second = svc.emit(&m, SimTime::from_secs(2));
        assert_eq!(second.seq, 2);
        assert_eq!(second.counters["overload.offered"], 15);
        assert_eq!(second.deltas["overload.offered"], 5);
        assert_eq!(second.window_start_us, 1_000_000);
    }

    #[test]
    fn sink_rotates_and_resumes_after_existing_files() {
        let dir = std::env::temp_dir().join(format!(
            "garnet-telemetry-sink-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sink = TelemetrySink::new(&dir, 2).unwrap();
        for i in 0..5 {
            sink.append(&format!("{{\"seq\":{i}}}")).unwrap();
        }
        assert!(dir.join("telemetry-000000.jsonl").exists());
        assert!(dir.join("telemetry-000001.jsonl").exists());
        assert!(dir.join("telemetry-000002.jsonl").exists());
        // A new sink in the same directory continues past old files.
        let resumed = TelemetrySink::new(&dir, 2).unwrap();
        assert_eq!(resumed.current_path(), dir.join("telemetry-000003.jsonl"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
