//! The stream registry: discovery metadata for every live stream.
//!
//! The pub/sub mechanism "permits un-configured data streams to be
//! detected" (§4.2). The registry records, for every StreamID that has
//! ever flowed through the middleware, when it appeared, how fast it
//! runs and whether anyone currently claims it — the catalogue a new
//! consumer browses before subscribing.

use std::collections::HashMap;

use garnet_simkit::{SimDuration, SimTime};
use garnet_wire::StreamId;

/// Discovery metadata for one stream.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamInfo {
    /// The stream.
    pub stream: StreamId,
    /// First message observed.
    pub first_seen: SimTime,
    /// Most recent message observed.
    pub last_seen: SimTime,
    /// Messages observed.
    pub messages: u64,
    /// Bytes of payload observed.
    pub payload_bytes: u64,
    /// Whether a subscriber currently claims it.
    pub claimed: bool,
    /// Whether this is a consumer-derived (virtual) stream.
    pub derived: bool,
}

impl StreamInfo {
    /// Mean inter-message interval, if at least two messages arrived.
    pub fn estimated_interval(&self) -> Option<SimDuration> {
        (self.messages >= 2)
            .then(|| self.last_seen.saturating_since(self.first_seen) / (self.messages - 1))
    }
}

/// The registry.
///
/// # Example
///
/// ```
/// use garnet_core::stream::StreamRegistry;
/// use garnet_simkit::SimTime;
/// use garnet_wire::StreamId;
///
/// let mut reg = StreamRegistry::new();
/// reg.note_message(StreamId::from_raw(7), 16, SimTime::ZERO, false);
/// assert_eq!(reg.discover().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct StreamRegistry {
    streams: HashMap<u32, StreamInfo>,
}

impl StreamRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message on `stream`.
    pub fn note_message(
        &mut self,
        stream: StreamId,
        payload_len: usize,
        at: SimTime,
        derived: bool,
    ) {
        let info = self.streams.entry(stream.to_raw()).or_insert_with(|| StreamInfo {
            stream,
            first_seen: at,
            last_seen: at,
            messages: 0,
            payload_bytes: 0,
            claimed: false,
            derived,
        });
        info.messages += 1;
        info.payload_bytes += payload_len as u64;
        info.last_seen = at;
    }

    /// Marks a stream claimed/unclaimed as subscriptions come and go.
    pub fn set_claimed(&mut self, stream: StreamId, claimed: bool) {
        if let Some(info) = self.streams.get_mut(&stream.to_raw()) {
            info.claimed = claimed;
        }
    }

    /// Metadata for one stream.
    pub fn info(&self, stream: StreamId) -> Option<&StreamInfo> {
        self.streams.get(&stream.to_raw())
    }

    /// Every known stream, ordered by raw id.
    pub fn discover(&self) -> Vec<&StreamInfo> {
        let mut out: Vec<&StreamInfo> = self.streams.values().collect();
        out.sort_by_key(|i| i.stream.to_raw());
        out
    }

    /// Every stream nobody claims (candidates for the Orphanage view).
    pub fn discover_unclaimed(&self) -> Vec<&StreamInfo> {
        self.discover().into_iter().filter(|i| !i.claimed).collect()
    }

    /// Number of known streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True if no stream has been seen.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_accumulates() {
        let mut r = StreamRegistry::new();
        let s = StreamId::from_raw(0x0100);
        r.note_message(s, 10, SimTime::ZERO, false);
        r.note_message(s, 20, SimTime::from_secs(2), false);
        let info = r.info(s).unwrap();
        assert_eq!(info.messages, 2);
        assert_eq!(info.payload_bytes, 30);
        assert_eq!(info.estimated_interval(), Some(SimDuration::from_secs(2)));
        assert!(!info.claimed);
        assert!(!info.derived);
    }

    #[test]
    fn single_message_no_interval() {
        let mut r = StreamRegistry::new();
        r.note_message(StreamId::from_raw(1), 1, SimTime::ZERO, false);
        assert_eq!(r.info(StreamId::from_raw(1)).unwrap().estimated_interval(), None);
    }

    #[test]
    fn claimed_flag_toggles() {
        let mut r = StreamRegistry::new();
        let s = StreamId::from_raw(5);
        r.note_message(s, 1, SimTime::ZERO, false);
        r.set_claimed(s, true);
        assert!(r.info(s).unwrap().claimed);
        assert!(r.discover_unclaimed().is_empty());
        r.set_claimed(s, false);
        assert_eq!(r.discover_unclaimed().len(), 1);
    }

    #[test]
    fn set_claimed_on_unknown_stream_is_noop() {
        let mut r = StreamRegistry::new();
        r.set_claimed(StreamId::from_raw(9), true);
        assert!(r.is_empty());
    }

    #[test]
    fn discover_is_sorted() {
        let mut r = StreamRegistry::new();
        for raw in [30u32, 10, 20] {
            r.note_message(StreamId::from_raw(raw), 1, SimTime::ZERO, false);
        }
        let raws: Vec<u32> = r.discover().iter().map(|i| i.stream.to_raw()).collect();
        assert_eq!(raws, vec![10, 20, 30]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn derived_flag_sticks() {
        let mut r = StreamRegistry::new();
        let s = StreamId::from_raw(0x00FF_0000);
        r.note_message(s, 1, SimTime::ZERO, true);
        assert!(r.info(s).unwrap().derived);
    }
}
