//! The stream registry: discovery metadata for every live stream.
//!
//! The pub/sub mechanism "permits un-configured data streams to be
//! detected" (§4.2). The registry records, for every StreamID that has
//! ever flowed through the middleware, when it appeared, how fast it
//! runs and whether anyone currently claims it — the catalogue a new
//! consumer browses before subscribing.

use std::collections::HashMap;

use garnet_simkit::{SimDuration, SimTime};
use garnet_wire::StreamId;

/// Spreads a 24-bit sensor id across `shards` buckets (Fibonacci
/// hashing: dense sensor ids from grid deployments stay balanced).
///
/// Every sharded stage — ingest, dispatch, and the registry behind it —
/// uses this one function, so all of a sensor's streams land on the
/// same shard index at every stage.
pub fn shard_of_sensor(sensor: u32, shards: usize) -> usize {
    (sensor.wrapping_mul(0x9E37_79B1) >> 16) as usize % shards.max(1)
}

/// Discovery metadata for one stream.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamInfo {
    /// The stream.
    pub stream: StreamId,
    /// First message observed.
    pub first_seen: SimTime,
    /// Most recent message observed.
    pub last_seen: SimTime,
    /// Messages observed.
    pub messages: u64,
    /// Bytes of payload observed.
    pub payload_bytes: u64,
    /// Whether a subscriber currently claims it.
    pub claimed: bool,
    /// Whether this is a consumer-derived (virtual) stream.
    pub derived: bool,
}

impl StreamInfo {
    /// Mean inter-message interval, if at least two messages arrived.
    pub fn estimated_interval(&self) -> Option<SimDuration> {
        (self.messages >= 2)
            .then(|| self.last_seen.saturating_since(self.first_seen) / (self.messages - 1))
    }
}

/// The registry.
///
/// # Example
///
/// ```
/// use garnet_core::stream::StreamRegistry;
/// use garnet_simkit::SimTime;
/// use garnet_wire::StreamId;
///
/// let mut reg = StreamRegistry::new();
/// reg.note_message(StreamId::from_raw(7), 16, SimTime::ZERO, false);
/// assert_eq!(reg.discover().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct StreamRegistry {
    streams: HashMap<u32, StreamInfo>,
}

impl StreamRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message on `stream`.
    pub fn note_message(
        &mut self,
        stream: StreamId,
        payload_len: usize,
        at: SimTime,
        derived: bool,
    ) {
        let info = self.streams.entry(stream.to_raw()).or_insert_with(|| StreamInfo {
            stream,
            first_seen: at,
            last_seen: at,
            messages: 0,
            payload_bytes: 0,
            claimed: false,
            derived,
        });
        info.messages += 1;
        info.payload_bytes += payload_len as u64;
        info.last_seen = at;
    }

    /// Marks a stream claimed/unclaimed as subscriptions come and go.
    pub fn set_claimed(&mut self, stream: StreamId, claimed: bool) {
        if let Some(info) = self.streams.get_mut(&stream.to_raw()) {
            info.claimed = claimed;
        }
    }

    /// Metadata for one stream.
    pub fn info(&self, stream: StreamId) -> Option<&StreamInfo> {
        self.streams.get(&stream.to_raw())
    }

    /// Every known stream, ordered by raw id.
    pub fn discover(&self) -> Vec<&StreamInfo> {
        let mut out: Vec<&StreamInfo> = self.streams.values().collect();
        out.sort_by_key(|i| i.stream.to_raw());
        out
    }

    /// Every stream nobody claims (candidates for the Orphanage view).
    pub fn discover_unclaimed(&self) -> Vec<&StreamInfo> {
        self.discover().into_iter().filter(|i| !i.claimed).collect()
    }

    /// Number of known streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True if no stream has been seen.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }
}

/// A stream registry partitioned by sensor id: the catalogue behind the
/// sharded dispatch stage.
///
/// Streams are pinned to shards with [`shard_of_sensor`] — the same
/// hash the ingest and dispatch stages use — so all registry state for
/// a stream lives on exactly one shard and writes never contend across
/// shards. Reads that span shards ([`ShardedStreamRegistry::discover`],
/// [`ShardedStreamRegistry::discover_unclaimed`]) merge the per-shard
/// walks back into ascending raw-stream-id order, which is the order a
/// single unsharded [`StreamRegistry`] produces — every observable is
/// bit-identical for any shard count.
#[derive(Debug)]
pub struct ShardedStreamRegistry {
    shards: Vec<StreamRegistry>,
}

impl ShardedStreamRegistry {
    /// Creates a registry with `shards` partitions (0 is treated as 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1);
        ShardedStreamRegistry { shards: (0..n).map(|_| StreamRegistry::new()).collect() }
    }

    /// Number of partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, stream: StreamId) -> usize {
        shard_of_sensor(stream.sensor().as_u32(), self.shards.len())
    }

    /// Records one message on `stream` (its owning shard only).
    pub fn note_message(
        &mut self,
        stream: StreamId,
        payload_len: usize,
        at: SimTime,
        derived: bool,
    ) {
        let shard = self.shard_of(stream);
        self.shards[shard].note_message(stream, payload_len, at, derived);
    }

    /// Marks a stream claimed/unclaimed as subscriptions come and go.
    pub fn set_claimed(&mut self, stream: StreamId, claimed: bool) {
        let shard = self.shard_of(stream);
        self.shards[shard].set_claimed(stream, claimed);
    }

    /// Metadata for one stream.
    pub fn info(&self, stream: StreamId) -> Option<&StreamInfo> {
        self.shards[self.shard_of(stream)].info(stream)
    }

    /// Every known stream, merged across shards into ascending raw-id
    /// order (streams are partitioned, so this reproduces exactly the
    /// walk a single registry's sorted map would make).
    pub fn discover(&self) -> Vec<&StreamInfo> {
        let mut out: Vec<&StreamInfo> =
            self.shards.iter().flat_map(StreamRegistry::discover).collect();
        out.sort_by_key(|i| i.stream.to_raw());
        out
    }

    /// Every stream nobody claims, in ascending raw-id order — the
    /// deterministic merge the quiescence sweep depends on.
    pub fn discover_unclaimed(&self) -> Vec<&StreamInfo> {
        self.discover().into_iter().filter(|i| !i.claimed).collect()
    }

    /// Number of known streams (partitioned, so the sum is exact).
    pub fn len(&self) -> usize {
        self.shards.iter().map(StreamRegistry::len).sum()
    }

    /// True if no stream has been seen on any shard.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(StreamRegistry::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_accumulates() {
        let mut r = StreamRegistry::new();
        let s = StreamId::from_raw(0x0100);
        r.note_message(s, 10, SimTime::ZERO, false);
        r.note_message(s, 20, SimTime::from_secs(2), false);
        let info = r.info(s).unwrap();
        assert_eq!(info.messages, 2);
        assert_eq!(info.payload_bytes, 30);
        assert_eq!(info.estimated_interval(), Some(SimDuration::from_secs(2)));
        assert!(!info.claimed);
        assert!(!info.derived);
    }

    #[test]
    fn single_message_no_interval() {
        let mut r = StreamRegistry::new();
        r.note_message(StreamId::from_raw(1), 1, SimTime::ZERO, false);
        assert_eq!(r.info(StreamId::from_raw(1)).unwrap().estimated_interval(), None);
    }

    #[test]
    fn claimed_flag_toggles() {
        let mut r = StreamRegistry::new();
        let s = StreamId::from_raw(5);
        r.note_message(s, 1, SimTime::ZERO, false);
        r.set_claimed(s, true);
        assert!(r.info(s).unwrap().claimed);
        assert!(r.discover_unclaimed().is_empty());
        r.set_claimed(s, false);
        assert_eq!(r.discover_unclaimed().len(), 1);
    }

    #[test]
    fn set_claimed_on_unknown_stream_is_noop() {
        let mut r = StreamRegistry::new();
        r.set_claimed(StreamId::from_raw(9), true);
        assert!(r.is_empty());
    }

    #[test]
    fn discover_is_sorted() {
        let mut r = StreamRegistry::new();
        for raw in [30u32, 10, 20] {
            r.note_message(StreamId::from_raw(raw), 1, SimTime::ZERO, false);
        }
        let raws: Vec<u32> = r.discover().iter().map(|i| i.stream.to_raw()).collect();
        assert_eq!(raws, vec![10, 20, 30]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn derived_flag_sticks() {
        let mut r = StreamRegistry::new();
        let s = StreamId::from_raw(0x00FF_0000);
        r.note_message(s, 1, SimTime::ZERO, true);
        assert!(r.info(s).unwrap().derived);
    }

    #[test]
    fn sharded_registry_matches_unsharded() {
        use garnet_wire::{SensorId, StreamIndex};
        let stream = |sensor: u32, idx: u8| {
            StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(idx))
        };
        for shards in [1usize, 2, 4, 8] {
            let mut single = StreamRegistry::new();
            let mut sharded = ShardedStreamRegistry::new(shards);
            for (i, sensor) in [9u32, 3, 14, 3, 7, 11, 9].iter().enumerate() {
                let s = stream(*sensor, (i % 2) as u8);
                single.note_message(s, 8 + i, SimTime::from_millis(i as u64), false);
                sharded.note_message(s, 8 + i, SimTime::from_millis(i as u64), false);
            }
            single.set_claimed(stream(3, 1), true);
            sharded.set_claimed(stream(3, 1), true);
            assert_eq!(sharded.len(), single.len(), "shards={shards}");
            assert_eq!(
                sharded.discover().into_iter().cloned().collect::<Vec<_>>(),
                single.discover().into_iter().cloned().collect::<Vec<_>>(),
                "shards={shards}"
            );
            assert_eq!(
                sharded.discover_unclaimed().into_iter().cloned().collect::<Vec<_>>(),
                single.discover_unclaimed().into_iter().cloned().collect::<Vec<_>>(),
                "shards={shards}"
            );
            assert_eq!(sharded.info(stream(9, 0)), single.info(stream(9, 0)));
        }
    }

    #[test]
    fn shard_of_sensor_is_stable_and_in_range() {
        for sensor in 0..500u32 {
            for shards in [1usize, 2, 4, 8] {
                let a = shard_of_sensor(sensor, shards);
                assert!(a < shards);
                assert_eq!(a, shard_of_sensor(sensor, shards), "deterministic");
            }
        }
        assert_eq!(shard_of_sensor(7, 0), 0, "0 shards treated as 1");
    }
}
