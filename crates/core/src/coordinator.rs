//! The Super Coordinator: global consumer-state awareness and
//! predictive actuation.
//!
//! "Suitably sophisticated consumer processes may forward state-change
//! details to the Super Coordinator, which eventually amasses a global
//! view of these consumers. In response to (or in anticipation of) global
//! consumer states, the Super Coordinator may invoke policy changes in
//! the strategy used by the Resource Manager" (§4.2). §6.1 singles out
//! the predictive capability as the ongoing-work centrepiece: for a
//! complex water course, "the ability of the super coordinator to
//! anticipate changes to water bodies and preempt actuation requests is
//! expected to be significant".
//!
//! The predictor is a first-order Markov model per consumer: transition
//! counts between reported states. When a consumer enters state `s` and
//! the model gives a sufficiently likely next state `s'` that has a
//! registered policy action, the coordinator emits that action *now* —
//! before the consumer asks — hiding the request/approval/transmission
//! latency from the eventual need. Experiment E10 measures the saving
//! against the reactive baseline.

use std::collections::{BTreeMap, HashMap};

use garnet_simkit::SimTime;
use garnet_wire::{ActuationTarget, SensorCommand};

/// An application-defined consumer state (opaque to the coordinator).
pub type ConsumerStateId = u32;

/// Whether the coordinator anticipates or merely reacts (the E10 ablation
/// switch).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CoordinationMode {
    /// Emit policy actions only for states actually entered.
    Reactive,
    /// Additionally emit actions for likely *next* states.
    Predictive {
        /// Minimum observed transition probability before anticipating.
        min_confidence: f64,
    },
}

/// A pre-registered response to a consumer state: what the middleware
/// should do to the sensor field when (or just before) the state holds.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyAction {
    /// Where to send the command.
    pub target: ActuationTarget,
    /// The command.
    pub command: SensorCommand,
    /// Priority to submit with.
    pub priority: u8,
    /// Whether this action may be fired *in anticipation* of the state.
    /// Escalations (sample faster) are safe to pre-fire; demotions
    /// (relax, sleep) are not — predicting "the flood will end" must not
    /// slow the stations while it is still running.
    pub anticipatable: bool,
}

/// An action emitted by the coordinator, labelled with why.
#[derive(Clone, Debug, PartialEq)]
pub struct CoordinatorAction {
    /// The action to execute via Resource Manager + Actuation Service.
    pub action: PolicyAction,
    /// True if this was issued in *anticipation* of a predicted state.
    pub anticipatory: bool,
    /// The state that triggered it (actual, or predicted).
    pub state: ConsumerStateId,
}

#[derive(Debug, Default)]
struct ConsumerModel {
    current: Option<ConsumerStateId>,
    /// transitions[(from, to)] = count.
    transitions: BTreeMap<(ConsumerStateId, ConsumerStateId), u64>,
    /// outgoing totals per from-state.
    totals: BTreeMap<ConsumerStateId, u64>,
    last_change: SimTime,
}

impl ConsumerModel {
    fn record(&mut self, to: ConsumerStateId, at: SimTime) {
        if let Some(from) = self.current {
            *self.transitions.entry((from, to)).or_insert(0) += 1;
            *self.totals.entry(from).or_insert(0) += 1;
        }
        self.current = Some(to);
        self.last_change = at;
    }

    fn predict(&self, from: ConsumerStateId) -> Option<(ConsumerStateId, f64)> {
        let total = *self.totals.get(&from)?;
        if total == 0 {
            return None;
        }
        self.transitions
            .range((from, ConsumerStateId::MIN)..=(from, ConsumerStateId::MAX))
            .max_by_key(|(_, &count)| count)
            .map(|(&(_, to), &count)| (to, count as f64 / total as f64))
    }
}

/// The Super Coordinator.
///
/// # Example
///
/// ```
/// use garnet_core::coordinator::{CoordinationMode, PolicyAction, SuperCoordinator};
/// use garnet_simkit::SimTime;
/// use garnet_wire::{ActuationTarget, SensorCommand, SensorId, StreamIndex};
///
/// let mut coord = SuperCoordinator::new(CoordinationMode::Predictive { min_confidence: 0.5 });
/// coord.register_policy(2, PolicyAction {
///     target: ActuationTarget::Sensor(SensorId::new(1)?),
///     command: SensorCommand::SetReportInterval { stream: StreamIndex::new(0), interval_ms: 100 },
///     priority: 5,
///     anticipatable: true,
/// });
/// // Teach the model that state 1 is always followed by state 2 …
/// for i in 0..3u64 {
///     coord.report_state(7, 1, SimTime::from_secs(i * 2));
///     coord.report_state(7, 2, SimTime::from_secs(i * 2 + 1));
/// }
/// // … so re-entering state 1 anticipates state 2's action immediately.
/// let actions = coord.report_state(7, 1, SimTime::from_secs(100));
/// assert!(actions.iter().any(|a| a.anticipatory));
/// # Ok::<(), garnet_wire::WireError>(())
/// ```
#[derive(Debug)]
pub struct SuperCoordinator {
    mode: CoordinationMode,
    models: HashMap<u32, ConsumerModel>,
    policies: BTreeMap<ConsumerStateId, PolicyAction>,
    reports: u64,
    reactive_actions: u64,
    anticipatory_actions: u64,
}

impl SuperCoordinator {
    /// Creates a coordinator.
    pub fn new(mode: CoordinationMode) -> Self {
        SuperCoordinator {
            mode,
            models: HashMap::new(),
            policies: BTreeMap::new(),
            reports: 0,
            reactive_actions: 0,
            anticipatory_actions: 0,
        }
    }

    /// The active mode.
    pub fn mode(&self) -> CoordinationMode {
        self.mode
    }

    /// Registers (replacing) the policy action for a state.
    pub fn register_policy(&mut self, state: ConsumerStateId, action: PolicyAction) {
        self.policies.insert(state, action);
    }

    /// A consumer (identified by its subscriber id raw value) reports a
    /// state change. Returns the actions the middleware should execute.
    pub fn report_state(
        &mut self,
        consumer: u32,
        state: ConsumerStateId,
        now: SimTime,
    ) -> Vec<CoordinatorAction> {
        self.reports += 1;
        let model = self.models.entry(consumer).or_default();
        let unchanged = model.current == Some(state);
        model.record(state, now);
        let mut out = Vec::new();

        // Reactive part: the entered state's own policy (suppress
        // repeats while the state is unchanged).
        if !unchanged {
            if let Some(action) = self.policies.get(&state) {
                self.reactive_actions += 1;
                out.push(CoordinatorAction { action: action.clone(), anticipatory: false, state });
            }
        }

        // Predictive part: look one transition ahead.
        if let CoordinationMode::Predictive { min_confidence } = self.mode {
            if !unchanged {
                let model = self.models.get(&consumer).expect("just inserted");
                if let Some((next, confidence)) = model.predict(state) {
                    if confidence >= min_confidence && next != state {
                        if let Some(action) = self.policies.get(&next) {
                            if action.anticipatable {
                                self.anticipatory_actions += 1;
                                out.push(CoordinatorAction {
                                    action: action.clone(),
                                    anticipatory: true,
                                    state: next,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The model's most likely successor of `state` for `consumer`.
    pub fn predict_next(
        &self,
        consumer: u32,
        state: ConsumerStateId,
    ) -> Option<(ConsumerStateId, f64)> {
        self.models.get(&consumer)?.predict(state)
    }

    /// The current state of every known consumer — the coordinator's
    /// "global view" (§4.2), nearly correct by construction (§6).
    pub fn global_view(&self) -> BTreeMap<u32, ConsumerStateId> {
        self.models.iter().filter_map(|(&c, m)| m.current.map(|s| (c, s))).collect()
    }

    /// State-change reports received.
    pub fn report_count(&self) -> u64 {
        self.reports
    }

    /// Reactive actions emitted.
    pub fn reactive_action_count(&self) -> u64 {
        self.reactive_actions
    }

    /// Anticipatory actions emitted.
    pub fn anticipatory_action_count(&self) -> u64 {
        self.anticipatory_actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garnet_wire::{SensorId, StreamIndex};

    fn action(interval_ms: u32) -> PolicyAction {
        PolicyAction {
            target: ActuationTarget::Sensor(SensorId::new(1).unwrap()),
            command: SensorCommand::SetReportInterval { stream: StreamIndex::new(0), interval_ms },
            priority: 3,
            anticipatable: true,
        }
    }

    #[test]
    fn reactive_action_on_state_entry() {
        let mut c = SuperCoordinator::new(CoordinationMode::Reactive);
        c.register_policy(5, action(100));
        let out = c.report_state(1, 5, SimTime::ZERO);
        assert_eq!(out.len(), 1);
        assert!(!out[0].anticipatory);
        assert_eq!(out[0].state, 5);
        assert_eq!(c.reactive_action_count(), 1);
    }

    #[test]
    fn repeated_same_state_does_not_refire() {
        let mut c = SuperCoordinator::new(CoordinationMode::Reactive);
        c.register_policy(5, action(100));
        assert_eq!(c.report_state(1, 5, SimTime::ZERO).len(), 1);
        assert!(c.report_state(1, 5, SimTime::from_secs(1)).is_empty());
        assert_eq!(c.report_state(1, 6, SimTime::from_secs(2)).len(), 0, "no policy for 6");
        assert_eq!(c.report_state(1, 5, SimTime::from_secs(3)).len(), 1, "re-entry fires again");
    }

    #[test]
    fn state_without_policy_is_silent() {
        let mut c = SuperCoordinator::new(CoordinationMode::Reactive);
        assert!(c.report_state(1, 42, SimTime::ZERO).is_empty());
        assert_eq!(c.report_count(), 1);
    }

    #[test]
    fn markov_model_learns_transitions() {
        let mut c = SuperCoordinator::new(CoordinationMode::Reactive);
        // 1→2 twice, 1→3 once.
        for to in [2u32, 3, 2] {
            c.report_state(9, 1, SimTime::ZERO);
            c.report_state(9, to, SimTime::ZERO);
        }
        let (next, conf) = c.predict_next(9, 1).unwrap();
        assert_eq!(next, 2);
        assert!((conf - 2.0 / 3.0).abs() < 1e-9);
        assert!(c.predict_next(9, 99).is_none());
        assert!(c.predict_next(42, 1).is_none(), "unknown consumer");
    }

    #[test]
    fn predictive_mode_anticipates_confident_transition() {
        let mut c = SuperCoordinator::new(CoordinationMode::Predictive { min_confidence: 0.6 });
        c.register_policy(2, action(50));
        // Train 1→2 three times.
        for _ in 0..3 {
            c.report_state(1, 1, SimTime::ZERO);
            c.report_state(1, 2, SimTime::ZERO);
        }
        // Entering 1 now pre-fires state 2's policy.
        let out = c.report_state(1, 1, SimTime::from_secs(9));
        assert_eq!(out.len(), 1);
        assert!(out[0].anticipatory);
        assert_eq!(out[0].state, 2);
        // Anticipation also fired during the later training entries of
        // state 1 (the model was already confident by then).
        assert!(c.anticipatory_action_count() >= 1);
    }

    #[test]
    fn low_confidence_does_not_anticipate() {
        let mut c = SuperCoordinator::new(CoordinationMode::Predictive { min_confidence: 0.9 });
        c.register_policy(2, action(50));
        c.register_policy(3, action(75));
        // 1→2 once, 1→3 once: 50% each, below the bar.
        c.report_state(1, 1, SimTime::ZERO);
        c.report_state(1, 2, SimTime::ZERO);
        c.report_state(1, 1, SimTime::ZERO);
        c.report_state(1, 3, SimTime::ZERO);
        let out = c.report_state(1, 1, SimTime::ZERO);
        assert!(out.iter().all(|a| !a.anticipatory), "got {out:?}");
    }

    #[test]
    fn reactive_and_anticipatory_can_combine() {
        let mut c = SuperCoordinator::new(CoordinationMode::Predictive { min_confidence: 0.5 });
        c.register_policy(1, action(500));
        c.register_policy(2, action(50));
        c.report_state(1, 1, SimTime::ZERO);
        c.report_state(1, 2, SimTime::ZERO);
        let out = c.report_state(1, 1, SimTime::from_secs(5));
        // Reactive for state 1 + anticipatory for predicted state 2.
        assert_eq!(out.len(), 2);
        assert!(!out[0].anticipatory);
        assert!(out[1].anticipatory);
    }

    #[test]
    fn self_loop_prediction_not_anticipated() {
        let mut c = SuperCoordinator::new(CoordinationMode::Predictive { min_confidence: 0.1 });
        c.register_policy(1, action(100));
        // Teach 1→1 by alternating (1, then 1 again counts as unchanged,
        // so use 1→2→1→… to build 2→1 and 1→2; then force 1→1 via 2).
        c.report_state(1, 1, SimTime::ZERO);
        c.report_state(1, 2, SimTime::ZERO);
        c.report_state(1, 1, SimTime::ZERO);
        // Prediction from 2 is state 1, fine; prediction from 1 is 2 with
        // no policy... register policy for 1 only and enter 2:
        let out = c.report_state(1, 2, SimTime::ZERO);
        // Predicted next from 2 is 1 (100%), which has a policy → anticipatory.
        assert!(out.iter().any(|a| a.anticipatory && a.state == 1));
    }

    #[test]
    fn global_view_tracks_every_consumer() {
        let mut c = SuperCoordinator::new(CoordinationMode::Reactive);
        c.report_state(1, 10, SimTime::ZERO);
        c.report_state(2, 20, SimTime::ZERO);
        c.report_state(1, 11, SimTime::ZERO);
        let view = c.global_view();
        assert_eq!(view.get(&1), Some(&11));
        assert_eq!(view.get(&2), Some(&20));
        assert_eq!(view.len(), 2);
    }
}
